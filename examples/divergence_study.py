#!/usr/bin/env python3
"""Branch divergence vs register compression (paper Section 5.2).

Compares the three ways warped-compression could handle divergent writes
on the divergent half of the benchmark suite:

* ``warped``          — store divergent writes uncompressed; a dummy MOV
                        decompresses a compressed destination first (the
                        paper's chosen design),
* ``warped-buffered`` — merge divergent writes into a buffer and
                        recompress (the rejected higher-cost alternative),
* ``per-thread``      — shrink the compression window to a single thread
                        register (the rejected narrow-width alternative).

Run: python examples/divergence_study.py
"""

from repro import run_functional
from repro.kernels import get_benchmark

#: The divergent half of the suite, plus lib/backprop whose float data
#: exposes the per-thread policy's weakness.
BENCHMARK_NAMES = ["bfs", "spmv", "nw", "pathfinder", "gaussian", "lib", "backprop"]
POLICIES = ["warped", "warped-buffered", "per-thread"]


def main():
    print(
        f"{'benchmark':>11s} {'policy':>16s} {'ratio':>6s} "
        f"{'movs':>5s} {'mov%':>6s} {'nondiv':>7s}"
    )
    for name in BENCHMARK_NAMES:
        bench = get_benchmark(name)
        spec = bench.launch("small")
        for policy in POLICIES:
            gmem = spec.fresh_memory()
            stats = run_functional(
                spec.kernel,
                spec.grid_dim,
                spec.cta_dim,
                spec.params,
                gmem,
                policy=policy,
            ).value
            bench.verify(gmem, spec)
            print(
                f"{name:>11s} {policy:>16s} "
                f"{stats.overall_compression_ratio():6.2f} "
                f"{stats.movs_injected:5d} "
                f"{stats.mov_fraction * 100:5.2f}% "
                f"{stats.nondivergent_fraction * 100:6.1f}%"
            )
        print()

    print(
        "Reading guide: the buffered variant compresses best (it never\n"
        "gives up on a divergent write) but needs the merge buffers the\n"
        "paper rejects.  Per-thread narrow-width can win on small-integer\n"
        "DP workloads (pathfinder, gaussian) yet collapses to 1x on float\n"
        "data like lib and backprop, where values are wide but identical\n"
        "across threads — the inter-thread similarity only the warp-level\n"
        "window can exploit.  The chosen design keeps MOV overhead well\n"
        "under the paper's 2% bound."
    )


if __name__ == "__main__":
    main()

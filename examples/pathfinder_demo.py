#!/usr/bin/env python3
"""The paper's running example: pathfinder (Figure 4).

Reproduces the Section 3 characterisation for the kernel the paper walks
through: runs the pathfinder benchmark, verifies the DP result, and
prints (a) the arithmetic-distance histogram of its register writes split
by divergence phase, (b) the best-<base,delta> breakdown, and (c) the
energy outcome under warped-compression.

Run: python examples/pathfinder_demo.py
"""

from repro import run_functional, run_kernel
from repro.analysis.similarity import SimilarityBin
from repro.kernels import get_benchmark


def main():
    bench = get_benchmark("pathfinder")
    spec = bench.launch("default")
    print(f"pathfinder: grid={spec.grid_dim} cta={spec.cta_dim} "
          f"({spec.total_threads} threads), walls in 0..9")
    print()

    # Characterisation pass (functional, with the full-BDI search on).
    gmem = spec.fresh_memory()
    stats = run_functional(
        spec.kernel, spec.grid_dim, spec.cta_dim, spec.params, gmem,
        collect_bdi=True,
    ).value
    bench.verify(gmem, spec)
    print("DP output verified against the numpy reference.")
    print()

    print("register-write similarity (paper Figure 2 bars):")
    for phase, divergent in (("non-divergent", False), ("divergent", True)):
        fractions = stats.similarity_fractions(divergent)
        cells = "  ".join(
            f"{b.label}={fractions[b] * 100:5.1f}%" for b in SimilarityBin
        )
        print(f"  {phase:>14s}: {cells}")
    print(f"  non-divergent instruction share: "
          f"{stats.nondivergent_fraction * 100:.1f}%")
    print()

    print("best <base,delta> per write (paper Figure 5):")
    for choice, fraction in stats.bdi_fractions().items():
        print(f"  {choice:>13s}: {fraction * 100:5.1f}%")
    print()

    print(f"compression ratio: "
          f"{stats.compression_ratio(False):.2f}x non-divergent, "
          f"{stats.compression_ratio(True):.2f}x divergent "
          f"(paper Figure 8)")
    print(f"dummy MOVs injected: {stats.movs_injected} "
          f"({stats.mov_fraction * 100:.2f}% of instructions)")
    print()

    # Energy pass (cycle-level).
    base = run_kernel(
        spec.kernel, spec.grid_dim, spec.cta_dim, spec.params,
        spec.fresh_memory(), policy="baseline",
    )
    wc = run_kernel(
        spec.kernel, spec.grid_dim, spec.cta_dim, spec.params,
        spec.fresh_memory(), policy="warped",
    )
    norm = wc.energy.normalized_to(base.energy)
    print(f"register-file energy vs baseline: {norm['total']:.3f} "
          f"(dynamic {norm['dynamic']:.3f}, leakage {norm['leakage']:.3f}, "
          f"comp {norm['compression']:.3f}, decomp {norm['decompression']:.3f})")
    print(f"execution time vs baseline: {wc.cycles / base.cycles:.3f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Design-space exploration on a benchmark subset.

Walks the paper's Section 6.6-6.8 knobs on three representative
workloads (best case, worst case, divergent case):

* static vs dynamic compression parameter choice (Figures 15/16),
* compression/decompression latency scaling (Figures 20/21),
* energy-constant sensitivity via re-pricing (Figures 17-19).

Run: python examples/design_space.py
"""

from repro.harness.experiments import (
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
    fig21,
)
from repro.sim import Session

SUBSET = ["lib", "aes", "spmv"]


def main():
    # Results persist in the content-addressed on-disk cache, so a second
    # invocation of this script re-renders every table simulation-free.
    session = Session(scale="small", subset=SUBSET, verbose=True)
    print(f"benchmarks: {', '.join(SUBSET)} (small scale)\n")

    for spec in (fig15, fig16, fig20, fig21, fig17, fig18, fig19):
        print(spec(session).render())
        print()

    print(
        "Reading guide: the dynamic scheme ('warped') should dominate the\n"
        "static parameter columns; energy savings should shrink as the\n"
        "compression units get more expensive (fig17) and grow as bank\n"
        "accesses or wire activity get more expensive (fig18/fig19);\n"
        "execution time should rise with either latency knob (fig20/21)."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: write a kernel, run it with and without compression.

Builds a small SAXPY kernel with the kernel-builder DSL, executes it on
the cycle-level GPU model under the baseline and the warped-compression
register file, verifies both produce the right answer, and prints the
energy comparison the paper's Figure 9 makes per benchmark.

Run: python examples/quickstart.py
"""

import numpy as np

from repro import GlobalMemory, KernelBuilder, run_kernel
from repro.gpu.builder import float_bits
from repro.gpu.isa import Cmp

N = 512
A = 2.5


def build_saxpy():
    """y[i] = a * x[i] + y[i] for i < n."""
    b = KernelBuilder("saxpy", params=("n", "a", "x", "y"))
    tid = b.global_tid_x()
    n = b.param("n")
    with b.if_(b.isetp(Cmp.LT, tid, n)):
        x_addr = b.imad(tid, 4, b.param("x"))
        y_addr = b.imad(tid, 4, b.param("y"))
        value = b.ffma(b.ldg(x_addr), b.param("a"), b.ldg(y_addr))
        b.stg(y_addr, value)
    return b.build()


def fresh_memory():
    gmem = GlobalMemory()
    x = gmem.alloc_array(np.arange(N, dtype=np.float32), "x")
    y = gmem.alloc_array(np.ones(N, dtype=np.float32), "y")
    return gmem, x, y


def main():
    kernel = build_saxpy()
    print(kernel.listing())
    print()

    results = {}
    for policy in ("baseline", "warped"):
        gmem, x, y = fresh_memory()
        result = run_kernel(
            kernel,
            grid_dim=(N // 128, 1),
            cta_dim=(128, 1),
            params=[N, float_bits(A), x, y],
            gmem=gmem,
            policy=policy,
        )
        got = gmem.read_array(y, N, np.float32)
        expected = A * np.arange(N, dtype=np.float32) + 1.0
        assert np.allclose(got, expected), policy
        results[policy] = result
        print(
            f"{policy:>9s}: {result.cycles:6d} cycles, "
            f"RF energy {result.energy.total_pj / 1e3:8.1f} nJ "
            f"(dynamic {result.energy.dynamic_pj / 1e3:7.1f}, "
            f"leakage {result.energy.leakage_pj / 1e3:7.1f})"
        )

    base, wc = results["baseline"], results["warped"]
    norm = wc.energy.normalized_to(base.energy)
    value = wc.stats.value
    print()
    print(f"compression ratio (stored): "
          f"{value.overall_compression_ratio():.2f}x")
    print(f"register-file energy vs baseline: {norm['total']:.3f} "
          f"({(1 - norm['total']) * 100:.1f}% saved)")
    print(f"execution time vs baseline: {wc.cycles / base.cycles:.3f}")


if __name__ == "__main__":
    main()

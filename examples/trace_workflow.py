#!/usr/bin/env python3
"""Trace-driven compression studies.

Captures a benchmark's register-write trace once, saves it to disk, and
replays it through every compression policy — the workflow for
evaluating a *new* encoding against recorded workloads without touching
the simulator.

Run: python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

from repro.gpu.trace import RegisterTrace, capture_trace, replay_trace
from repro.kernels import get_benchmark

POLICIES = ["warped", "static-4-0", "static-4-1", "static-4-2", "per-thread"]


def main():
    bench = get_benchmark("backprop")
    spec = bench.launch("small")

    print(f"capturing register trace of {bench.name} ...")
    gmem = spec.fresh_memory()
    trace = capture_trace(
        spec.kernel, spec.grid_dim, spec.cta_dim, spec.params, gmem
    )
    bench.verify(gmem, spec)
    print(
        f"  {len(trace)} register writes over {trace.instructions} "
        f"instructions ({trace.divergent_instructions} divergent)"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{bench.name}.npz"
        trace.save(str(path))
        print(f"  serialised to {path.name}: {path.stat().st_size} bytes")
        loaded = RegisterTrace.load(str(path))

    print()
    print(f"{'policy':>16s} {'ratio':>6s} {'movs':>5s} {'compressed%':>12s}")
    for policy in POLICIES:
        stats = replay_trace(loaded, policy=policy).value
        occupancy = stats.compressed_register_fraction(divergent=False)
        print(
            f"{policy:>16s} {stats.overall_compression_ratio():6.2f} "
            f"{stats.movs_injected:5d} "
            f"{(occupancy or 0.0) * 100:11.1f}%"
        )

    print()
    print(
        "One functional run produced the trace; every policy row above\n"
        "was computed by replay alone.  Plug a new CompressionPolicy into\n"
        "replay_trace() to evaluate a novel encoding against the same\n"
        "recorded workload."
    )


if __name__ == "__main__":
    main()

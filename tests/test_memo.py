"""Codec memo cache: bit-identity, LRU bounds, counters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codec import choose_mode, encode_register
from repro.core.memo import (
    DEFAULT_CAPACITY,
    MEMO_CACHE,
    CodecMemoCache,
    memo_disabled,
    set_memo_enabled,
)
from repro.obs.metrics import MetricRegistry


def lanes_from(values) -> np.ndarray:
    return np.asarray(values, dtype=np.uint32)


# Registers seen in practice are similar-valued (the paper's whole
# premise), so bias generation toward base-plus-small-delta images as
# well as fully random ones.
_random_lanes = st.lists(
    st.integers(0, 2**32 - 1), min_size=32, max_size=32
)
_similar_lanes = st.tuples(
    st.integers(0, 2**32 - 1),
    st.lists(st.integers(-128, 127), min_size=32, max_size=32),
).map(lambda t: [(t[0] + d) % 2**32 for d in t[1]])
_uniform_lanes = st.integers(0, 2**32 - 1).map(lambda v: [v] * 32)
_any_lanes = st.one_of(_similar_lanes, _uniform_lanes, _random_lanes)


class TestMemoizedEncodingIdentity:
    @settings(max_examples=200, deadline=None)
    @given(values=_any_lanes)
    def test_memoized_equals_direct(self, values):
        """Cache hit, cache miss, and direct encode all agree exactly."""
        lanes = lanes_from(values)
        with memo_disabled():
            direct = encode_register(lanes)
        first = encode_register(lanes)  # miss (or hit from a prior example)
        second = encode_register(lanes)  # guaranteed hit
        assert first == direct
        assert second == direct
        assert choose_mode(lanes) == direct[0]

    @settings(max_examples=50, deadline=None)
    @given(values=_any_lanes)
    def test_hit_does_not_mutate_outcome(self, values):
        """Repeated hits keep returning equal objects."""
        lanes = lanes_from(values)
        outcomes = {encode_register(lanes) for _ in range(4)}
        assert len(outcomes) == 1


class TestCacheBounds:
    def test_lru_eviction_order(self):
        cache = CodecMemoCache(capacity=2)
        cache.put(b"a", ("A",))
        cache.put(b"b", ("B",))
        assert cache.get(b"a") == ("A",)  # refresh "a": "b" is now LRU
        cache.put(b"c", ("C",))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(b"b") is None  # evicted
        assert cache.get(b"a") == ("A",)
        assert cache.get(b"c") == ("C",)

    def test_reinsert_refreshes_instead_of_evicting(self):
        cache = CodecMemoCache(capacity=2)
        cache.put(b"a", ("A",))
        cache.put(b"b", ("B",))
        cache.put(b"a", ("A2",))  # update in place, no eviction
        assert cache.evictions == 0
        assert cache.get(b"a") == ("A2",)

    def test_resize_evicts_lru_first(self):
        cache = CodecMemoCache(capacity=4)
        for key in (b"a", b"b", b"c", b"d"):
            cache.put(key, (key,))
        cache.get(b"a")
        cache.resize(2)
        assert len(cache) == 2
        assert cache.evictions == 2
        assert cache.get(b"a") == (b"a",)
        assert cache.get(b"d") == (b"d",)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CodecMemoCache(capacity=0)
        with pytest.raises(ValueError):
            CodecMemoCache(capacity=8).resize(-1)

    def test_global_cache_stays_bounded(self):
        assert MEMO_CACHE.capacity == DEFAULT_CAPACITY
        assert len(MEMO_CACHE) <= MEMO_CACHE.capacity


class TestCounters:
    def test_hit_miss_accounting_and_reset(self):
        cache = CodecMemoCache(capacity=8)
        assert cache.get(b"x") is None
        cache.put(b"x", ("X",))
        assert cache.get(b"x") == ("X",)
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.lookups == 2
        assert cache.hit_rate == 0.5
        cache.reset_counters()
        assert (cache.hits, cache.misses, cache.evictions) == (0, 0, 0)
        assert cache.hit_rate == 0.0
        # clear() drops entries but keeps counters.
        cache.put(b"y", ("Y",))
        cache.get(b"y")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_metrics_probes(self):
        cache = CodecMemoCache(capacity=8)
        registry = MetricRegistry(enabled=True)
        cache.attach_metrics(registry)
        cache.put(b"x", ("X",))
        cache.get(b"x")
        cache.get(b"miss")
        row = registry.read_all()
        assert row["codec.memo_hits"] == 1.0
        assert row["codec.memo_misses"] == 1.0
        assert row["codec.memo_entries"] == 1.0


class TestEnableDisable:
    def test_memo_disabled_restores_state(self):
        assert MEMO_CACHE.enabled
        with memo_disabled():
            assert not MEMO_CACHE.enabled
            with memo_disabled():
                assert not MEMO_CACHE.enabled
            # Inner exit restores the *outer* disabled state.
            assert not MEMO_CACHE.enabled
        assert MEMO_CACHE.enabled

    def test_memo_disabled_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with memo_disabled():
                raise RuntimeError("boom")
        assert MEMO_CACHE.enabled

    def test_set_memo_enabled(self):
        set_memo_enabled(False)
        try:
            lanes = lanes_from([7] * 32)
            before = MEMO_CACHE.lookups
            encode_register(lanes)
            assert MEMO_CACHE.lookups == before  # bypassed entirely
        finally:
            set_memo_enabled(True)

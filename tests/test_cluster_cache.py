"""Tiered-cache coverage: remote fill/backfill, degradation, write-through.

Three layers of proof:

* pure-logic tests against a scripted fake peer (fill, backfill,
  corruption rejection, trace-bearing entries pinned local);
* degradation tests against a *real closed port* (peer-unreachable
  falls back to local-only with a cooldown);
* HTTP-tier tests against an embedded coordinator, including the
  two-process concurrent hammer that extends the torn-entry test of
  ``test_serve_cache.py`` across the network tier.
"""

import json
import multiprocessing
import socket

import pytest

from cluster_helpers import EmbeddedCoordinator
from repro.cluster.cache import (
    PeerUnreachable,
    RemoteCacheTier,
    TieredResultCache,
)
from repro.obs.metrics import MetricRegistry
from repro.sim import ResultCache, SimRequest, simulate
from repro.sim.cache import fingerprint


def _entry(policy: str = "baseline"):
    request = SimRequest(
        benchmark="lib", policy=policy, timing=False, scale="small"
    )
    material = request.key_material()
    key = fingerprint(material)
    result = simulate(request)
    return key, material, result


def _payload(key, material, result) -> dict:
    return {"key": key, "material": material, "result": result.to_dict()}


class FakePeer:
    """Scripted in-memory peer tier."""

    def __init__(self):
        self.entries: dict[str, dict] = {}
        self.gets: list[str] = []
        self.puts: list[str] = []
        self.fail = False

    def get(self, key):
        if self.fail:
            raise PeerUnreachable("scripted outage")
        self.gets.append(key)
        return self.entries.get(key)

    def put(self, key, payload):
        if self.fail:
            raise PeerUnreachable("scripted outage")
        self.puts.append(key)
        novel = key not in self.entries
        self.entries[key] = payload
        return novel


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTieredGet:
    def test_remote_fill_backfills_local_tier(self, tmp_path):
        key, material, result = _entry()
        peer = FakePeer()
        peer.entries[key] = _payload(key, material, result)
        cache = TieredResultCache(tmp_path / "local", remote=peer)

        first = cache.get(key)
        assert first is not None and first.value.to_dict() == result.value.to_dict()
        assert cache.remote_hits == 1 and cache.remote_fills == 1
        # Backfilled: the second read never touches the peer.
        second = cache.get(key)
        assert second is not None
        assert peer.gets == [key]
        assert cache.local_hits == 1
        # And the backfill is a real, parseable local entry.
        assert ResultCache(tmp_path / "local").get(key) is not None

    def test_remote_miss_is_a_miss(self, tmp_path):
        key, _material, _result = _entry()
        peer = FakePeer()
        cache = TieredResultCache(tmp_path / "local", remote=peer)
        assert cache.get(key) is None
        assert cache.remote_misses == 1

    def test_corrupt_peer_entry_discarded(self, tmp_path):
        key, material, result = _entry()
        peer = FakePeer()
        peer.entries[key] = _payload(key, {"tampered": 1}, result)
        cache = TieredResultCache(tmp_path / "local", remote=peer)
        assert cache.get(key) is None
        assert cache.remote_errors == 1
        assert ResultCache(tmp_path / "local").get(key) is None

    def test_no_remote_behaves_like_plain_cache(self, tmp_path):
        key, material, result = _entry()
        cache = TieredResultCache(tmp_path / "local", remote=None)
        assert cache.get(key) is None
        cache.put(key, material, result)
        assert cache.get(key) is not None


class TestWriteThrough:
    def test_put_writes_local_then_remote(self, tmp_path):
        key, material, result = _entry()
        peer = FakePeer()
        cache = TieredResultCache(tmp_path / "local", remote=peer)
        cache.put(key, material, result)
        assert cache.local_get(key) is not None
        assert peer.puts == [key]
        assert cache.remote_puts == 1

    def test_trace_bearing_results_never_travel(self, tmp_path):
        trace_file = tmp_path / "t.npz"
        trace_file.write_bytes(b"fake")
        request = SimRequest(
            benchmark="lib", timing=False, scale="small", capture_trace=True
        )
        material = request.key_material()
        key = fingerprint(material)
        base = simulate(request, str(tmp_path / "cap" / "t.npz"))
        peer = FakePeer()
        cache = TieredResultCache(tmp_path / "local", remote=peer)
        cache.put(key, material, base)
        assert peer.puts == []  # pinned local
        assert cache.local_get(key) is not None

    def test_put_survives_peer_outage(self, tmp_path):
        key, material, result = _entry()
        peer = FakePeer()
        peer.fail = True
        cache = TieredResultCache(tmp_path / "local", remote=peer)
        cache.put(key, material, result)  # must not raise
        assert cache.local_get(key) is not None
        assert cache.remote_errors == 1


class TestDegradation:
    def _closed_port(self) -> int:
        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            return s.getsockname()[1]

    def test_unreachable_peer_falls_back_to_local_only(self, tmp_path):
        key, material, result = _entry()
        remote = RemoteCacheTier("127.0.0.1", self._closed_port(), timeout=2.0)
        clock = FakeClock()
        cache = TieredResultCache(
            tmp_path / "local", remote=remote, cooldown=15.0, clock=clock
        )
        cache.put(key, material, result)  # write-through fails quietly
        assert cache.local_get(key) is not None
        assert cache.remote_errors == 1
        assert not cache.remote_available()  # cooling down

        # During cooldown the peer is not consulted at all.
        other_key, _m, _r = _entry("warped")
        assert cache.get(other_key) is None
        assert cache.remote_errors == 1  # unchanged: no second attempt

        # After the cooldown the peer is retried (and fails again).
        clock.now = 20.0
        assert cache.remote_available()
        assert cache.get(other_key) is None
        assert cache.remote_errors == 2

    def test_raw_tier_raises_peer_unreachable(self):
        remote = RemoteCacheTier("127.0.0.1", self._closed_port(), timeout=2.0)
        with pytest.raises(PeerUnreachable):
            remote.get("deadbeef")


class TestMetricsExport:
    def test_tier_counters_exported(self, tmp_path):
        cache = TieredResultCache(tmp_path / "local", remote=FakePeer())
        registry = MetricRegistry(enabled=True)
        cache.register_metrics(registry)
        for name in (
            "cluster.cache.local_hits",
            "cluster.cache.remote_hits",
            "cluster.cache.remote_fills",
            "cluster.cache.remote_errors",
            "cluster.cache.remote_puts",
            "cluster.cache.remote_available",
        ):
            assert name in registry.names()
        assert registry.read("cluster.cache.remote_available") == 1.0
        assert registry.kind("cluster.cache.remote_fills") == "delta"


class TestHttpTier:
    def test_fill_and_write_through_over_http(self, tmp_path):
        key, material, result = _entry()
        with EmbeddedCoordinator(cache_dir=str(tmp_path / "shared")) as coord:
            local_a = TieredResultCache(
                tmp_path / "a", remote=RemoteCacheTier(coord.host, coord.port)
            )
            local_b = TieredResultCache(
                tmp_path / "b", remote=RemoteCacheTier(coord.host, coord.port)
            )
            # A publishes; the shared tier now holds the entry...
            local_a.put(key, material, result)
            assert ResultCache(tmp_path / "shared").get(key) is not None
            # ...and B fills from it without ever simulating.
            fetched = local_b.get(key)
            assert fetched is not None
            assert fetched.to_dict() == result.to_dict()
            assert local_b.remote_fills == 1
            assert local_b.local_get(key) is not None

    def test_server_rejects_corrupt_put(self, tmp_path):
        key, material, result = _entry()
        with EmbeddedCoordinator(cache_dir=str(tmp_path / "shared")) as coord:
            remote = RemoteCacheTier(coord.host, coord.port)
            bad = _payload(key, {"tampered": True}, result)
            with pytest.raises(PeerUnreachable):
                remote.put(key, bad)
            assert ResultCache(tmp_path / "shared").get(key) is None

    def test_concurrent_processes_hammer_http_tier(self, tmp_path):
        """Two processes write-through the same key concurrently while
        the parent reads: no torn entries on either tier, and the
        shared entry stays parseable throughout."""
        key, material, result = _entry()
        payload = result.to_dict()
        with EmbeddedCoordinator(cache_dir=str(tmp_path / "shared")) as coord:
            ctx = multiprocessing.get_context("spawn")
            writers = [
                ctx.Process(
                    target=_hammer_remote_put,
                    args=(
                        str(tmp_path / f"w{i}"),
                        coord.host,
                        coord.port,
                        key,
                        material,
                        payload,
                        25,
                    ),
                )
                for i in range(2)
            ]
            for proc in writers:
                proc.start()
            shared = ResultCache(tmp_path / "shared")
            entry_path = shared._entry_path(key)
            reads = 0
            while any(proc.is_alive() for proc in writers):
                if entry_path.exists():
                    raw = json.loads(entry_path.read_text())
                    assert raw["key"] == key
                    loaded = shared.get(key)
                    assert loaded is not None
                    assert loaded.to_dict() == payload
                    reads += 1
            for proc in writers:
                proc.join()
                assert proc.exitcode == 0
            assert reads > 0
            assert not list(entry_path.parent.glob("*.tmp"))
            # Every accepted PUT beyond the first was counted as a dup.
            st = coord.app.state
            assert st.put_new == 1
            assert st.put_new + st.put_dup == 50


def _hammer_remote_put(
    root: str, host: str, port: int, key: str, material: dict,
    payload: dict, rounds: int,
) -> None:
    """Child process: repeated tiered write-through of one entry."""
    from repro.sim.result import RunResult

    cache = TieredResultCache(root, remote=RemoteCacheTier(host, port))
    result = RunResult.from_dict(payload)
    for _ in range(rounds):
        cache.put(key, material, result)
    assert cache.remote_errors == 0

"""Tests for register-trace capture and trace-driven replay."""

import numpy as np
import pytest

from repro.gpu.functional import run_functional
from repro.gpu.trace import RegisterTrace, capture_trace, replay_trace
from repro.kernels import get_benchmark


@pytest.fixture(scope="module")
def pathfinder_trace():
    bench = get_benchmark("pathfinder")
    spec = bench.launch("small")
    gmem = spec.fresh_memory()
    trace = capture_trace(
        spec.kernel, spec.grid_dim, spec.cta_dim, spec.params, gmem
    )
    live = run_functional(
        spec.kernel,
        spec.grid_dim,
        spec.cta_dim,
        spec.params,
        spec.fresh_memory(),
    )
    return trace, live


class TestCapture:
    def test_trace_covers_every_write(self, pathfinder_trace):
        trace, live = pathfinder_trace
        assert len(trace) == int(live.value.writes.sum())
        assert trace.instructions == live.value.instructions
        assert (
            trace.divergent_instructions == live.value.divergent_instructions
        )

    def test_values_are_snapshots(self, pathfinder_trace):
        trace, _ = pathfinder_trace
        first = trace.values[0]
        assert first.dtype == np.uint32
        assert first.shape == (32,)
        # The same (warp, reg) written twice must keep distinct snapshots.
        seen = {}
        for wid, reg, vals in zip(
            trace.warp_ids, trace.registers, trace.values
        ):
            if (wid, reg) in seen and not np.array_equal(seen[(wid, reg)], vals):
                return
            seen[(wid, reg)] = vals
        pytest.fail("no register was ever rewritten with new values")


class TestReplay:
    def test_replay_matches_live_run(self, pathfinder_trace):
        trace, live = pathfinder_trace
        replayed = replay_trace(trace, policy="warped")
        np.testing.assert_array_equal(
            replayed.value.similarity, live.value.similarity
        )
        np.testing.assert_array_equal(
            replayed.value.stored_banks, live.value.stored_banks
        )
        assert replayed.value.movs_injected == live.value.movs_injected
        assert (
            replayed.value.nondivergent_fraction
            == live.value.nondivergent_fraction
        )

    def test_replay_under_different_policies(self, pathfinder_trace):
        trace, _ = pathfinder_trace
        warped = replay_trace(trace, policy="warped")
        static = replay_trace(trace, policy="static-4-0")
        assert (
            warped.value.overall_compression_ratio()
            >= static.value.overall_compression_ratio()
        )

    def test_replay_collects_bdi(self, pathfinder_trace):
        trace, _ = pathfinder_trace
        stats = replay_trace(trace, collect_bdi=True)
        assert stats.value.bdi_fractions()


class TestSerialisation:
    def test_roundtrip(self, pathfinder_trace, tmp_path):
        trace, _ = pathfinder_trace
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        loaded = RegisterTrace.load(path)
        assert loaded.kernel_name == trace.kernel_name
        assert len(loaded) == len(trace)
        assert loaded.instructions == trace.instructions
        np.testing.assert_array_equal(loaded.values[5], trace.values[5])
        replayed = replay_trace(loaded, policy="warped")
        direct = replay_trace(trace, policy="warped")
        np.testing.assert_array_equal(
            replayed.value.similarity, direct.value.similarity
        )

    def test_saved_trace_replays_identical_to_live_run(
        self, pathfinder_trace, tmp_path
    ):
        """capture -> .npz save -> load -> replay == the live run."""
        trace, live = pathfinder_trace
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        replayed = replay_trace(RegisterTrace.load(path), policy="warped")
        assert replayed.value.instructions == live.value.instructions
        assert (
            replayed.value.divergent_instructions
            == live.value.divergent_instructions
        )
        assert replayed.value.movs_injected == live.value.movs_injected
        assert replayed.value.mode_histogram == live.value.mode_histogram
        for name in (
            "similarity",
            "writes",
            "achievable_banks",
            "stored_banks",
        ):
            np.testing.assert_array_equal(
                getattr(replayed.value, name), getattr(live.value, name)
            )

    def test_empty_trace_roundtrip(self, tmp_path):
        trace = RegisterTrace(kernel_name="empty")
        path = str(tmp_path / "empty.npz")
        trace.save(path)
        loaded = RegisterTrace.load(path)
        assert len(loaded) == 0

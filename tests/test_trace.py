"""Tests for register-trace capture and trace-driven replay."""

import json

import numpy as np
import pytest

from repro.gpu.functional import run_functional
from repro.gpu.trace import RegisterTrace, capture_trace, replay_trace
from repro.kernels import get_benchmark


@pytest.fixture(scope="module")
def pathfinder_trace():
    bench = get_benchmark("pathfinder")
    spec = bench.launch("small")
    gmem = spec.fresh_memory()
    trace = capture_trace(
        spec.kernel, spec.grid_dim, spec.cta_dim, spec.params, gmem
    )
    live = run_functional(
        spec.kernel,
        spec.grid_dim,
        spec.cta_dim,
        spec.params,
        spec.fresh_memory(),
    )
    return trace, live


class TestCapture:
    def test_trace_covers_every_write(self, pathfinder_trace):
        trace, live = pathfinder_trace
        assert len(trace) == int(live.value.writes.sum())
        assert trace.instructions == live.value.instructions
        assert (
            trace.divergent_instructions == live.value.divergent_instructions
        )

    def test_values_are_snapshots(self, pathfinder_trace):
        trace, _ = pathfinder_trace
        first = trace.values[0]
        assert first.dtype == np.uint32
        assert first.shape == (32,)
        # The same (warp, reg) written twice must keep distinct snapshots.
        seen = {}
        for wid, reg, vals in zip(
            trace.warp_ids, trace.registers, trace.values
        ):
            if (wid, reg) in seen and not np.array_equal(seen[(wid, reg)], vals):
                return
            seen[(wid, reg)] = vals
        pytest.fail("no register was ever rewritten with new values")


class TestReplay:
    def test_replay_matches_live_run(self, pathfinder_trace):
        trace, live = pathfinder_trace
        replayed = replay_trace(trace, policy="warped")
        np.testing.assert_array_equal(
            replayed.value.similarity, live.value.similarity
        )
        np.testing.assert_array_equal(
            replayed.value.stored_banks, live.value.stored_banks
        )
        assert replayed.value.movs_injected == live.value.movs_injected
        assert (
            replayed.value.nondivergent_fraction
            == live.value.nondivergent_fraction
        )

    def test_replay_under_different_policies(self, pathfinder_trace):
        trace, _ = pathfinder_trace
        warped = replay_trace(trace, policy="warped")
        static = replay_trace(trace, policy="static-4-0")
        assert (
            warped.value.overall_compression_ratio()
            >= static.value.overall_compression_ratio()
        )

    def test_replay_collects_bdi(self, pathfinder_trace):
        trace, _ = pathfinder_trace
        stats = replay_trace(trace, collect_bdi=True)
        assert stats.value.bdi_fractions()


class TestSerialisation:
    def test_roundtrip(self, pathfinder_trace, tmp_path):
        trace, _ = pathfinder_trace
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        loaded = RegisterTrace.load(path)
        assert loaded.kernel_name == trace.kernel_name
        assert len(loaded) == len(trace)
        assert loaded.instructions == trace.instructions
        np.testing.assert_array_equal(loaded.values[5], trace.values[5])
        replayed = replay_trace(loaded, policy="warped")
        direct = replay_trace(trace, policy="warped")
        np.testing.assert_array_equal(
            replayed.value.similarity, direct.value.similarity
        )

    def test_saved_trace_replays_identical_to_live_run(
        self, pathfinder_trace, tmp_path
    ):
        """capture -> .npz save -> load -> replay == the live run."""
        trace, live = pathfinder_trace
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        replayed = replay_trace(RegisterTrace.load(path), policy="warped")
        assert replayed.value.instructions == live.value.instructions
        assert (
            replayed.value.divergent_instructions
            == live.value.divergent_instructions
        )
        assert replayed.value.movs_injected == live.value.movs_injected
        assert replayed.value.mode_histogram == live.value.mode_histogram
        for name in (
            "similarity",
            "writes",
            "achievable_banks",
            "stored_banks",
        ):
            np.testing.assert_array_equal(
                getattr(replayed.value, name), getattr(live.value, name)
            )

    def test_empty_trace_roundtrip(self, tmp_path):
        trace = RegisterTrace(kernel_name="empty")
        path = str(tmp_path / "empty.npz")
        trace.save(path)
        loaded = RegisterTrace.load(path)
        assert len(loaded) == 0
        assert loaded.kernel_name == "empty"
        assert loaded.warp_size == trace.warp_size
        assert loaded.num_registers == 0

    def test_empty_trace_replay_well_defined(self, tmp_path):
        """replay(load(save(empty))) yields clean zero statistics."""
        trace = RegisterTrace(kernel_name="empty")
        path = str(tmp_path / "empty.npz")
        trace.save(path)
        stats = replay_trace(RegisterTrace.load(path), policy="warped")
        assert stats.benchmark == "empty"
        assert int(stats.value.writes.sum()) == 0
        assert stats.value.instructions == 0
        assert stats.value.movs_injected == 0
        assert stats.value.compressed_register_fraction(divergent=False) is None

    def test_hand_built_trace_tracks_num_registers(self):
        """record() keeps the allocation bound consistent (load/save
        asymmetry fix): replay occupancy no longer degenerates to zero
        for traces that never set ``num_registers`` explicitly."""
        trace = RegisterTrace(kernel_name="hand")
        trace.record(0, 3, np.zeros(32, dtype=np.uint32), divergent=False)
        trace.record(1, 5, np.zeros(32, dtype=np.uint32), divergent=False)
        assert trace.num_registers == 6
        stats = replay_trace(trace, policy="warped")
        # Two warps x six registers allocated, both written registers
        # compress (all-zero values), so occupancy is strictly positive.
        fraction = stats.value.compressed_register_fraction(divergent=False)
        assert fraction is not None and fraction > 0.0

    def test_hand_built_trace_roundtrip(self, tmp_path):
        trace = RegisterTrace(kernel_name="hand")
        trace.record(0, 2, np.arange(32, dtype=np.uint32), divergent=True)
        path = str(tmp_path / "hand.npz")
        trace.save(path)
        loaded = RegisterTrace.load(path)
        assert loaded.num_registers == trace.num_registers == 3
        direct = replay_trace(trace, policy="warped")
        reloaded = replay_trace(loaded, policy="warped")
        assert json.dumps(direct.value.to_dict(), sort_keys=True) == json.dumps(
            reloaded.value.to_dict(), sort_keys=True
        )

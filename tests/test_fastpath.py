"""Fast-path equivalence suite: fast-on == fast-off, bit for bit.

The production configuration (event-driven cycle skipping plus the codec
memo cache) must be observationally identical to brute-force
cycle-by-cycle simulation.  These tests drive
:mod:`repro.verify.fastpath` over every registry kernel, over sampled
configurations (so the interval timeline is compared row by row), and
over a batch of fuzz-generated kernels.

Set ``REPRO_FASTPATH_SEEDS=100`` to widen the fuzz batch (the acceptance
run); the default keeps tier-1 fast.
"""

import os

import pytest

from repro.gpu.config import GPUConfig
from repro.kernels.suite import benchmark_names
from repro.verify.fastpath import (
    FastPathOutcome,
    verify_benchmark_fastpath,
    verify_launch_fastpath,
)
from repro.verify.generator import GenSpec, generate_launch

FUZZ_SEEDS = int(os.environ.get("REPRO_FASTPATH_SEEDS", "10"))


def test_fast_path_is_the_default():
    """The fast path is the production configuration, not an opt-in."""
    assert GPUConfig().fast_path is True


@pytest.mark.parametrize("name", benchmark_names())
def test_registry_kernel_equivalence(name):
    outcome = verify_benchmark_fastpath(name)
    assert isinstance(outcome, FastPathOutcome)
    assert outcome.cycles > 0
    assert outcome.fields_compared > 0


@pytest.mark.parametrize("name", ["aes", "nw"])
def test_sampled_timeline_equivalence(name):
    """With sampling on, the full interval timeline must match too."""
    config = GPUConfig(sample_interval=64)
    outcome = verify_benchmark_fastpath(name, config=config)
    assert outcome.cycles > 0


def test_equivalence_under_alternate_policy():
    outcome = verify_benchmark_fastpath("bfs", policy="baseline")
    assert outcome.cycles > 0


@pytest.mark.parametrize("seed", range(FUZZ_SEEDS))
def test_fuzzed_kernel_equivalence(seed):
    launch = generate_launch(GenSpec(seed=seed))
    outcome = verify_launch_fastpath(launch)
    assert outcome.cycles > 0
    assert outcome.fields_compared > 0

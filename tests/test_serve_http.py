"""Live-server tests: full client round trips over real TCP.

Each test boots an :class:`EmbeddedServer` on an ephemeral port with
in-process thread workers, then drives it exclusively through
:class:`~repro.serve.client.ServeClient` — the same path ``repro
loadgen`` uses — so the wire protocol, backpressure contract, and
graceful drain are exercised end to end.
"""

import concurrent.futures
import json
import time

import pytest
from serve_helpers import EmbeddedServer

from repro.serve.client import Backpressure, ServeClient, ServeError
from repro.sim.session import SIM_COUNTER, SimRequest, simulate


REQUEST = {"benchmark": "lib", "timing": False, "scale": "small"}


class TestRoundTrip:
    def test_submit_wait_fetch_matches_direct_simulation(self):
        with EmbeddedServer() as server:
            client = server.client()
            served = client.run(REQUEST)
        direct = simulate(
            SimRequest(benchmark="lib", timing=False, scale="small")
        )
        assert served.benchmark == "lib"
        assert not served.timing_mode
        assert json.dumps(served.value.to_dict(), sort_keys=True) == (
            json.dumps(direct.value.to_dict(), sort_keys=True)
        )

    def test_dataclass_request_and_cached_resubmission(self):
        with EmbeddedServer() as server:
            client = server.client()
            request = SimRequest(
                benchmark="pathfinder", timing=False, scale="small"
            )
            before = SIM_COUNTER.value
            client.run(request)
            client.run(request)  # second hit is answered from cache
            assert SIM_COUNTER.value - before == 1
            payload = client.submit(request)
            assert payload["job"]["state"] == "done"
            assert payload["job"]["source"] == "cache"

    def test_long_poll_status(self):
        with EmbeddedServer() as server:
            client = server.client()
            job = client.submit(REQUEST)["job"]
            status = client.status(job["id"], wait=10)
            assert status["state"] == "done"
            assert status["attempts"] in (0, 1)  # 0 when cache-served

    def test_event_stream_reaches_terminal_state(self):
        with EmbeddedServer() as server:
            client = server.client()
            job = client.submit(REQUEST)["job"]
            import http.client

            conn = http.client.HTTPConnection(
                server.host, server.port, timeout=30
            )
            conn.request("GET", f"/v1/jobs/{job['id']}/events")
            response = conn.getresponse()
            assert response.getheader("Content-Type") == "text/event-stream"
            states = []
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.decode().strip()
                if line.startswith("data: "):
                    states.append(json.loads(line[6:])["state"])
            conn.close()
            assert states[-1] == "done"


class TestErrors:
    def test_unknown_benchmark_is_400(self):
        with EmbeddedServer() as server:
            client = server.client()
            with pytest.raises(ServeError) as excinfo:
                client.submit({"benchmark": "not-a-kernel"})
            assert excinfo.value.status == 400
            assert "unknown benchmark" in excinfo.value.detail

    def test_unknown_fields_and_job_and_route(self):
        with EmbeddedServer() as server:
            client = server.client()
            with pytest.raises(ServeError) as excinfo:
                client.submit({"benchmark": "lib", "warp_speed": 9})
            assert excinfo.value.status == 400
            with pytest.raises(ServeError) as excinfo:
                client.status("job-999999")
            assert excinfo.value.status == 404
            status, _, _ = client._call("GET", "/v1/nope")
            assert status == 404

    def test_result_conflict_before_done(self):
        import threading

        release = threading.Event()
        slow = concurrent.futures.ThreadPoolExecutor(max_workers=1)
        original = {}

        def stall(request):
            def _wait():
                release.wait(10)
                return original["fn"](request).result(30)

            return slow.submit(_wait)

        with EmbeddedServer(workers=1) as server:
            original["fn"] = server.app.scheduler.submit_fn
            server.app.scheduler.submit_fn = stall
            client = server.client()
            job = client.submit(REQUEST)["job"]
            with pytest.raises(ServeError) as excinfo:
                client.result(job["id"])
            assert excinfo.value.status == 409
            release.set()  # unblock so drain-on-exit completes normally
            assert client.status(job["id"], wait=20)["state"] == "done"
        slow.shutdown(wait=True)


class TestBackpressure:
    def test_bounded_queue_returns_429_with_retry_after(self):
        """Overload provably sheds: 429 + Retry-After, no unbounded
        queueing."""
        import threading

        release = threading.Event()
        slow = concurrent.futures.ThreadPoolExecutor(max_workers=4)
        original = {}

        def stall(request):
            def _wait():
                release.wait(10)
                return original["fn"](request).result(30)

            return slow.submit(_wait)

        with EmbeddedServer(workers=1, max_queue=2) as server:
            original["fn"] = server.app.scheduler.submit_fn
            server.app.scheduler.submit_fn = stall
            client = server.client()
            benchmarks = ("lib", "pathfinder", "hotspot", "nw", "bfs")
            outcomes = []
            for name in benchmarks:
                try:
                    client.submit({"benchmark": name, "timing": False})
                    outcomes.append("accepted")
                except Backpressure as exc:
                    assert exc.retry_after >= 1.0
                    outcomes.append("rejected")
            # 1 running + 2 queued accepted; everything beyond shed.
            assert outcomes.count("accepted") == 3
            assert outcomes.count("rejected") == 2
            assert len(server.app.scheduler.queue) <= 2
            metrics = client.metrics()["metrics"]
            assert metrics["serve.rejected"] == 2
            assert metrics["serve.queue_depth"] <= 2
            release.set()  # let the backlog drain on exit
        slow.shutdown(wait=True)


class TestOps:
    def test_healthz_metrics_and_job_listing(self):
        with EmbeddedServer() as server:
            client = server.client()
            assert client.health()["status"] == "ok"
            client.run(REQUEST)
            jobs = client.jobs()
            assert len(jobs) == 1 and jobs[0]["state"] == "done"
            payload = client.metrics()
            metrics = payload["metrics"]
            assert metrics["serve.submitted"] >= 1
            assert metrics["serve.simulations"] == 1
            # Session cache probes ride along for dashboards.
            assert "session.cache.memo_hits" in metrics
            assert "serve.latency_seconds" in payload["histograms"]
            assert payload["histograms"]["serve.latency_seconds"]["total"] >= 1

    def test_drain_endpoint_stops_admissions(self):
        with EmbeddedServer() as server:
            client = server.client()
            client.run(REQUEST)
            assert client.drain()["status"] == "draining"
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                try:
                    client.submit(REQUEST)
                except ServeError as exc:
                    if exc.status == 503:
                        break
                except OSError:
                    break  # listener already closed — also a valid stop
                time.sleep(0.05)
            else:
                pytest.fail("drain never rejected new submissions")

"""Unit tests for the functional interpreter's instruction semantics."""

import numpy as np
import pytest

from repro.gpu.builder import KernelBuilder, float_bits
from repro.gpu.interpreter import Interpreter, make_warp_context
from repro.gpu.isa import Cmp, SReg
from repro.gpu.memory import GlobalMemory, SharedMemory


def run_kernel_functionally(builder: KernelBuilder, params=(), gmem=None):
    """Build and run one warp to completion; returns its context."""
    kernel = builder.build()
    gmem = gmem or GlobalMemory()
    ctx = make_warp_context(
        kernel=kernel,
        warp_id=0,
        cta_id=0,
        cta_dim=(32, 1),
        grid_dim=(1, 1),
        warp_in_cta=0,
        params=np.asarray(params, dtype=np.uint32),
        gmem=gmem,
        shared=SharedMemory(max(kernel.shared_bytes, 4)),
    )
    interp = Interpreter()
    for _ in range(10_000):
        result = interp.execute(ctx)
        if result is None:
            break
        interp.apply(ctx, result)
    else:
        raise AssertionError("kernel did not terminate")
    return ctx


def reg(ctx, r):
    return ctx.registers[r.index]


class TestIntegerOps:
    def test_add_sub_wraparound(self):
        b = KernelBuilder("k")
        r1 = b.iadd(0xFFFFFFFF, 2)
        r2 = b.isub(0, 1)
        ctx = run_kernel_functionally(b)
        assert reg(ctx, r1)[0] == 1
        assert reg(ctx, r2)[0] == 0xFFFFFFFF

    def test_mul_mad(self):
        b = KernelBuilder("k")
        t = b.tid_x()
        r1 = b.imul(t, 3)
        r2 = b.imad(t, 4, 100)
        ctx = run_kernel_functionally(b)
        lanes = np.arange(32)
        np.testing.assert_array_equal(reg(ctx, r1), 3 * lanes)
        np.testing.assert_array_equal(reg(ctx, r2), 4 * lanes + 100)

    def test_signed_min_max(self):
        b = KernelBuilder("k")
        neg = b.mov(-5)
        r1 = b.imin(neg, 3)
        r2 = b.imax(neg, 3)
        ctx = run_kernel_functionally(b)
        assert reg(ctx, r1)[0] == (-5) & 0xFFFFFFFF
        assert reg(ctx, r2)[0] == 3

    def test_shifts(self):
        b = KernelBuilder("k")
        r1 = b.shl(1, 4)
        r2 = b.shr(0x80000000, 4)
        r3 = b.sar(0x80000000, 4)
        ctx = run_kernel_functionally(b)
        assert reg(ctx, r1)[0] == 16
        assert reg(ctx, r2)[0] == 0x08000000
        assert reg(ctx, r3)[0] == 0xF8000000

    def test_bitwise(self):
        b = KernelBuilder("k")
        r1 = b.and_(0xF0F0, 0xFF00)
        r2 = b.or_(0xF0F0, 0x0F0F)
        r3 = b.xor(0xFFFF, 0xF0F0)
        r4 = b.not_(0)
        ctx = run_kernel_functionally(b)
        assert reg(ctx, r1)[0] == 0xF000
        assert reg(ctx, r2)[0] == 0xFFFF
        assert reg(ctx, r3)[0] == 0x0F0F
        assert reg(ctx, r4)[0] == 0xFFFFFFFF


class TestFloatOps:
    def test_arithmetic(self):
        b = KernelBuilder("k")
        r1 = b.fadd(1.5, 2.25)
        r2 = b.fmul(3.0, -2.0)
        r3 = b.ffma(2.0, 3.0, 1.0)
        ctx = run_kernel_functionally(b)
        assert reg(ctx, r1).view(np.float32)[0] == 3.75
        assert reg(ctx, r2).view(np.float32)[0] == -6.0
        assert reg(ctx, r3).view(np.float32)[0] == 7.0

    def test_sfu_ops(self):
        b = KernelBuilder("k")
        r1 = b.fsqrt(16.0)
        r2 = b.fexp(0.0)
        r3 = b.frcp(4.0)
        ctx = run_kernel_functionally(b)
        assert reg(ctx, r1).view(np.float32)[0] == 4.0
        assert reg(ctx, r2).view(np.float32)[0] == 1.0
        assert reg(ctx, r3).view(np.float32)[0] == 0.25

    def test_conversions(self):
        b = KernelBuilder("k")
        r1 = b.i2f(b.mov(-3))
        r2 = b.f2i(b.mov(2.9))
        r3 = b.f2i(b.mov(-2.9))
        ctx = run_kernel_functionally(b)
        assert reg(ctx, r1).view(np.float32)[0] == -3.0
        assert reg(ctx, r2).view(np.int32)[0] == 2  # truncation toward zero
        assert reg(ctx, r3).view(np.int32)[0] == -2

    def test_min_max_abs_neg(self):
        b = KernelBuilder("k")
        r1 = b.fmin(1.0, -2.0)
        r2 = b.fmax(1.0, -2.0)
        r3 = b.fabs(-3.5)
        r4 = b.fneg(4.0)
        ctx = run_kernel_functionally(b)
        vals = [reg(ctx, r).view(np.float32)[0] for r in (r1, r2, r3, r4)]
        assert vals == [-2.0, 1.0, 3.5, -4.0]


class TestPredicatesAndSelect:
    def test_isetp_lanewise(self):
        b = KernelBuilder("k")
        t = b.tid_x()
        p = b.isetp(Cmp.LT, t, 16)
        r = b.sel(p, 1, 0)
        ctx = run_kernel_functionally(b)
        np.testing.assert_array_equal(
            reg(ctx, r), (np.arange(32) < 16).astype(np.uint32)
        )

    def test_fsetp(self):
        b = KernelBuilder("k")
        p = b.fsetp(Cmp.GE, b.mov(2.0), 2.0)
        r = b.sel(p, 7, 9)
        ctx = run_kernel_functionally(b)
        assert reg(ctx, r)[0] == 7

    def test_negated_select(self):
        b = KernelBuilder("k")
        p = b.isetp(Cmp.EQ, b.mov(0), 0)
        r = b.sel(~p, 1, 2)
        ctx = run_kernel_functionally(b)
        assert reg(ctx, r)[0] == 2

    def test_guarded_mov_partial_write(self):
        b = KernelBuilder("k")
        t = b.tid_x()
        r = b.mov(100)
        p = b.isetp(Cmp.LT, t, 4)
        b.mov(200, dst=r, guard=p)
        ctx = run_kernel_functionally(b)
        expected = np.where(np.arange(32) < 4, 200, 100)
        np.testing.assert_array_equal(reg(ctx, r), expected)


class TestSpecialRegisters:
    def test_lane_and_tid(self):
        b = KernelBuilder("k")
        r1 = b.tid_x()
        r2 = b.s2r(SReg.LANEID)
        r3 = b.ntid_x()
        ctx = run_kernel_functionally(b)
        np.testing.assert_array_equal(reg(ctx, r1), np.arange(32))
        np.testing.assert_array_equal(reg(ctx, r2), np.arange(32))
        assert reg(ctx, r3)[0] == 32

    def test_params_broadcast(self):
        b = KernelBuilder("k", params=("a", "b"))
        r = b.param("b")
        ctx = run_kernel_functionally(b, params=[11, 22])
        assert (reg(ctx, r) == 22).all()


class TestMemoryOps:
    def test_global_load_store(self):
        b = KernelBuilder("k", params=("buf",))
        t = b.tid_x()
        addr = b.imad(t, 4, b.param("buf"))
        v = b.ldg(addr)
        b.stg(addr, b.iadd(v, 1000))
        gmem = GlobalMemory()
        base = gmem.alloc_array(np.arange(32), "buf")
        run_kernel_functionally(b, params=[base], gmem=gmem)
        np.testing.assert_array_equal(
            gmem.read_array(base, 32), np.arange(32) + 1000
        )

    def test_shared_roundtrip_with_offset(self):
        b = KernelBuilder("k", shared_bytes=256)
        t = b.tid_x()
        addr = b.imul(t, 4)
        b.sts(addr, b.iadd(t, 5))
        r = b.lds(addr, offset=0)
        ctx = run_kernel_functionally(b)
        np.testing.assert_array_equal(reg(ctx, r), np.arange(32) + 5)

    def test_load_offset(self):
        b = KernelBuilder("k", params=("buf",))
        base_reg = b.param("buf")
        r = b.ldg(base_reg, offset=8)
        gmem = GlobalMemory()
        base = gmem.alloc_array(np.array([10, 20, 30]), "buf")
        ctx = run_kernel_functionally(b, params=[base], gmem=gmem)
        assert reg(ctx, r)[0] == 30


class TestControlFlow:
    def test_if_else_lane_split(self):
        b = KernelBuilder("k")
        t = b.tid_x()
        r = b.mov(0)
        p = b.isetp(Cmp.LT, t, 10)
        with b.if_(p):
            b.mov(1, dst=r)
        with b.else_():
            b.mov(2, dst=r)
        ctx = run_kernel_functionally(b)
        expected = np.where(np.arange(32) < 10, 1, 2)
        np.testing.assert_array_equal(reg(ctx, r), expected)

    def test_divergent_loop_trip_counts(self):
        b = KernelBuilder("k")
        t = b.tid_x()
        count = b.mov(0)
        i = b.mov(0)
        with b.while_loop() as loop:
            loop.break_unless(b.isetp(Cmp.LT, i, t))
            b.iadd(count, 1, dst=count)
            b.iadd(i, 1, dst=i)
        ctx = run_kernel_functionally(b)
        np.testing.assert_array_equal(reg(ctx, count), np.arange(32))

    def test_guarded_exit_retires_lanes(self):
        b = KernelBuilder("k")
        t = b.tid_x()
        r = b.mov(0)
        p = b.isetp(Cmp.GE, t, 8)
        b.exit_(guard=p)
        b.mov(42, dst=r)
        ctx = run_kernel_functionally(b)
        expected = np.where(np.arange(32) < 8, 42, 0)
        np.testing.assert_array_equal(reg(ctx, r), expected)

    def test_partial_tail_warp(self):
        kernel_builder = KernelBuilder("k")
        r = kernel_builder.mov(9)
        kernel = kernel_builder.build()
        ctx = make_warp_context(
            kernel=kernel,
            warp_id=0,
            cta_id=0,
            cta_dim=(20, 1),  # fewer threads than warp lanes
            grid_dim=(1, 1),
            warp_in_cta=0,
            params=np.zeros(0, dtype=np.uint32),
            gmem=GlobalMemory(),
            shared=SharedMemory(4),
        )
        interp = Interpreter()
        result = interp.execute(ctx)
        assert result.base_divergent
        interp.apply(ctx, result)
        assert (ctx.registers[r.index][:20] == 9).all()
        assert (ctx.registers[r.index][20:] == 0).all()

    def test_divergence_flags(self):
        b = KernelBuilder("k")
        t = b.tid_x()
        p = b.isetp(Cmp.LT, t, 16)
        with b.if_(p):
            b.mov(1)
        kernel = b.build()
        ctx = make_warp_context(
            kernel=kernel,
            warp_id=0,
            cta_id=0,
            cta_dim=(32, 1),
            grid_dim=(1, 1),
            warp_in_cta=0,
            params=np.zeros(0, dtype=np.uint32),
            gmem=GlobalMemory(),
            shared=SharedMemory(4),
        )
        interp = Interpreter()
        flags = []
        while True:
            result = interp.execute(ctx)
            if result is None:
                break
            flags.append((str(result.instr.op.value), result.base_divergent))
            interp.apply(ctx, result)
        # The mov inside the if runs with half the lanes -> divergent.
        assert ("mov", True) in flags
        # The setp before the branch runs fully converged.
        assert ("isetp", False) in flags

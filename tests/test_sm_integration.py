"""Integration tests for the cycle-level SM / GPU timing model."""

import numpy as np
import pytest

from repro.core.codec import CompressionMode
from repro.gpu.builder import KernelBuilder
from repro.gpu.config import GPUConfig
from repro.gpu.functional import run_functional
from repro.gpu.gpu import GPU
from repro.gpu.isa import Cmp
from repro.gpu.launch import run_kernel
from repro.gpu.memory import GlobalMemory


def saxpy_builder():
    b = KernelBuilder("saxpy", params=("n", "x", "y"))
    tid = b.global_tid_x()
    n = b.param("n")
    with b.if_(b.isetp(Cmp.LT, tid, n)):
        ax = b.imad(tid, 4, b.param("x"))
        ay = b.imad(tid, 4, b.param("y"))
        v = b.ffma(b.ldg(ax), 2.0, b.ldg(ay))
        b.stg(ay, v)
    return b.build()


def saxpy_memory(n=96):
    gm = GlobalMemory()
    x = gm.alloc_array(np.arange(n, dtype=np.float32), "x")
    y = gm.alloc_array(np.ones(n, dtype=np.float32), "y")
    return gm, x, y


def divergent_accumulator():
    """A kernel engineered to hit the dummy-MOV path.

    A register is first written uniformly (compressible), then updated
    under divergence — the exact sequence Section 5.2's MOV handles.
    """
    b = KernelBuilder("movbait")
    tid = b.tid_x()
    acc = b.mov(5)  # uniform -> stored <4,0>
    p = b.isetp(Cmp.LT, tid, 7)
    with b.if_(p):
        b.iadd(acc, 1, dst=acc)  # divergent update to compressed register
    b.stg_addr = None
    return b.build(), acc


class TestCorrectness:
    @pytest.mark.parametrize("policy", ["baseline", "warped", "static-4-0",
                                        "per-thread", "warped-buffered"])
    def test_saxpy_output_matches_under_all_policies(self, policy):
        kernel = saxpy_builder()
        gm, x, y = saxpy_memory()
        run_kernel(kernel, (3, 1), (32, 1), [96, x, y], gm, policy=policy)
        got = gm.read_array(y, 96, np.float32)
        np.testing.assert_allclose(
            got, 2.0 * np.arange(96, dtype=np.float32) + 1.0
        )

    def test_timing_matches_functional_output(self):
        kernel = saxpy_builder()
        gm1, x1, y1 = saxpy_memory()
        run_kernel(kernel, (3, 1), (32, 1), [96, x1, y1], gm1, policy="warped")
        gm2, x2, y2 = saxpy_memory()
        run_functional(kernel, (3, 1), (32, 1), [96, x2, y2], gm2)
        np.testing.assert_array_equal(
            gm1.read_array(y1, 96), gm2.read_array(y2, 96)
        )

    def test_multi_sm_distributes_ctas(self):
        kernel = saxpy_builder()
        gm, x, y = saxpy_memory()
        gpu = GPU(config=GPUConfig(num_sms=2), policy="warped")
        gpu.run(kernel, (3, 1), (32, 1), [96, x, y], gm)
        got = gm.read_array(y, 96, np.float32)
        np.testing.assert_allclose(
            got, 2.0 * np.arange(96, dtype=np.float32) + 1.0
        )


class TestMovInjection:
    def test_divergent_update_of_compressed_register_injects_mov(self):
        kernel, acc = divergent_accumulator()
        gm = GlobalMemory()
        result = run_kernel(kernel, (1, 1), (32, 1), [], gm, policy="warped")
        assert result.stats.value.movs_injected == 1

    def test_baseline_never_injects(self):
        kernel, _ = divergent_accumulator()
        gm = GlobalMemory()
        result = run_kernel(kernel, (1, 1), (32, 1), [], gm, policy="baseline")
        assert result.stats.value.movs_injected == 0

    def test_buffered_policy_never_injects(self):
        kernel, _ = divergent_accumulator()
        gm = GlobalMemory()
        result = run_kernel(
            kernel, (1, 1), (32, 1), [], gm, policy="warped-buffered"
        )
        assert result.stats.value.movs_injected == 0

    def test_mov_preserves_values(self):
        b = KernelBuilder("movval", params=("out",))
        tid = b.tid_x()
        acc = b.imul(tid, 3)  # compressible <4,1>, lane-varying
        p = b.isetp(Cmp.LT, tid, 5)
        with b.if_(p):
            b.iadd(acc, 100, dst=acc)
        b.stg(b.imad(tid, 4, b.param("out")), acc)
        kernel = b.build()
        gm = GlobalMemory()
        out = gm.alloc(32, "out")
        result = run_kernel(kernel, (1, 1), (32, 1), [out], gm, policy="warped")
        assert result.stats.value.movs_injected >= 1
        lanes = np.arange(32)
        expected = np.where(lanes < 5, lanes * 3 + 100, lanes * 3)
        np.testing.assert_array_equal(gm.read_array(out, 32), expected)


class TestEnergyAccounting:
    def test_compression_reduces_dynamic_energy(self):
        kernel = saxpy_builder()
        gm1, x1, y1 = saxpy_memory()
        base = run_kernel(
            kernel, (3, 1), (32, 1), [96, x1, y1], gm1, policy="baseline"
        )
        gm2, x2, y2 = saxpy_memory()
        wc = run_kernel(
            kernel, (3, 1), (32, 1), [96, x2, y2], gm2, policy="warped"
        )
        assert wc.energy.dynamic_pj < base.energy.dynamic_pj
        assert base.energy.compression_pj == 0
        assert wc.energy.compression_pj > 0

    def test_baseline_has_no_gating(self):
        kernel = saxpy_builder()
        gm, x, y = saxpy_memory()
        base = run_kernel(
            kernel, (3, 1), (32, 1), [96, x, y], gm, policy="baseline"
        )
        assert base.stats.gated_fractions is None

    def test_warped_gates_high_banks_more(self):
        kernel = saxpy_builder()
        gm, x, y = saxpy_memory()
        wc = run_kernel(kernel, (3, 1), (32, 1), [96, x, y], gm, policy="warped")
        fractions = wc.stats.gated_fractions
        assert fractions is not None and len(fractions) == 32
        # Within each 8-bank cluster, the highest bank should be gated at
        # least as much as the lowest (compressed data packs low).
        for cluster in range(4):
            low = fractions[cluster * 8]
            high = fractions[cluster * 8 + 7]
            assert high >= low - 1e-9

    def test_mode_histogram_populated(self):
        kernel = saxpy_builder()
        gm, x, y = saxpy_memory()
        wc = run_kernel(kernel, (3, 1), (32, 1), [96, x, y], gm, policy="warped")
        hist = wc.stats.value.mode_histogram
        assert sum(hist.values()) == int(wc.stats.value.writes.sum())
        assert any(m.is_compressed for m in hist)


class TestBarriers:
    def test_shared_memory_reduction_with_barriers(self):
        b = KernelBuilder("reduce", params=("out",), shared_bytes=256)
        tid = b.tid_x()
        b.sts(b.imul(tid, 4), b.iadd(tid, 1))
        b.bar()
        # Tree reduction over 64 shared words by the first warp's lanes.
        for stride in (32, 16, 8, 4, 2, 1):
            p = b.isetp(Cmp.LT, tid, stride)
            with b.if_(p):
                mine = b.lds(b.imul(tid, 4))
                other = b.lds(b.imul(b.iadd(tid, stride), 4))
                b.sts(b.imul(tid, 4), b.iadd(mine, other))
            b.bar()
        p0 = b.isetp(Cmp.EQ, tid, 0)
        with b.if_(p0):
            b.stg(b.param("out"), b.lds(b.mov(0)))
        kernel = b.build()
        gm = GlobalMemory()
        out = gm.alloc(1, "out")
        result = run_kernel(kernel, (1, 1), (64, 1), [out], gm, policy="warped")
        assert gm.read_array(out, 1)[0] == 64 * 65 // 2
        assert result.cycles > 0


class TestLatencyKnobs:
    def test_longer_compression_latency_never_faster(self):
        kernel = saxpy_builder()
        cycles = []
        for lat in (2, 8):
            gm, x, y = saxpy_memory()
            cfg = GPUConfig(compression_latency=lat)
            res = run_kernel(
                kernel, (3, 1), (32, 1), [96, x, y], gm,
                config=cfg, policy="warped",
            )
            cycles.append(res.cycles)
        assert cycles[1] >= cycles[0]

    def test_lrr_scheduler_runs(self):
        kernel = saxpy_builder()
        gm, x, y = saxpy_memory()
        cfg = GPUConfig(scheduler_policy="lrr")
        res = run_kernel(
            kernel, (3, 1), (32, 1), [96, x, y], gm, config=cfg, policy="warped"
        )
        np.testing.assert_allclose(
            gm.read_array(y, 96, np.float32),
            2.0 * np.arange(96, dtype=np.float32) + 1.0,
        )
        assert res.cycles > 0

    def test_runaway_kernel_detected(self):
        b = KernelBuilder("spin")
        i = b.mov(0)
        with b.while_loop() as loop:
            loop.break_unless(b.isetp(Cmp.GE, i, 0))  # never exits
            b.iadd(i, 1, dst=i)
        kernel = b.build()
        gpu = GPU(policy="baseline", max_cycles=2000)
        with pytest.raises(RuntimeError, match="exceeded"):
            gpu.run(kernel, (1, 1), (32, 1), [], GlobalMemory())


class TestOccupancy:
    def test_register_pressure_limits_resident_warps(self):
        cfg = GPUConfig()
        # 8 regs/thread: 1024 slots / 8 = 128 > 48 -> warp-limited.
        assert cfg.max_resident_warps(8, cta_warps=4) == 48
        # 64 regs/thread: 1024 / 64 = 16 warps, whole CTAs of 4.
        assert cfg.max_resident_warps(64, cta_warps=4) == 16
        # 300 regs/thread: 3 warps, rounded down to zero CTAs of 4.
        assert cfg.max_resident_warps(300, cta_warps=4) == 0

    def test_oversized_cta_rejected(self):
        b = KernelBuilder("fat")
        regs = [b.mov(i) for i in range(300)]
        b.iadd(regs[0], regs[1])
        kernel = b.build()
        gpu = GPU(policy="baseline")
        with pytest.raises(ValueError, match="occupancy"):
            gpu.run(kernel, (1, 1), (128, 1), [], GlobalMemory())

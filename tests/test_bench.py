"""Pure-math tests for the perf-regression bench (no simulation)."""

import json

import pytest

from repro.harness.bench import (
    SCHEMA_VERSION,
    BenchReport,
    KernelBench,
    compare_reports,
)


def make_kernel(
    name="aes",
    cycles=1000,
    fast_seconds=0.5,
    slow_seconds=1.5,
    memo_hit_rate=0.9,
) -> KernelBench:
    return KernelBench(
        name=name,
        cycles=cycles,
        fast_seconds=fast_seconds,
        slow_seconds=slow_seconds,
        memo_hit_rate=memo_hit_rate,
    )


def make_report(*kernels: KernelBench) -> BenchReport:
    return BenchReport(
        scale="small", policy="warped", repeats=3, kernels=list(kernels)
    )


class TestKernelBench:
    def test_speedup_and_throughput(self):
        k = make_kernel(cycles=1000, fast_seconds=0.5, slow_seconds=1.5)
        assert k.speedup == pytest.approx(3.0)
        assert k.cycles_per_second == pytest.approx(2000.0)

    def test_zero_fast_seconds_is_infinite_not_crash(self):
        k = make_kernel(fast_seconds=0.0)
        assert k.speedup == float("inf")
        assert k.cycles_per_second == float("inf")

    def test_to_dict_fields(self):
        d = make_kernel().to_dict()
        assert d == {
            "cycles": 1000,
            "fast_seconds": 0.5,
            "slow_seconds": 1.5,
            "speedup": 3.0,
            "cycles_per_second": 2000.0,
            "memo_hit_rate": 0.9,
        }


class TestBenchReport:
    def test_totals(self):
        report = make_report(
            make_kernel("a", cycles=100, fast_seconds=1.0, slow_seconds=2.0),
            make_kernel("b", cycles=300, fast_seconds=1.0, slow_seconds=4.0),
        )
        assert report.total_cycles == 400
        assert report.total_fast_seconds == pytest.approx(2.0)
        assert report.total_slow_seconds == pytest.approx(6.0)
        assert report.total_speedup == pytest.approx(3.0)

    def test_to_dict_roundtrips_through_json(self, tmp_path):
        report = make_report(make_kernel())
        report.reference = {"seed_seconds": 2.5}
        path = tmp_path / "bench.json"
        report.write_json(str(path))
        data = json.loads(path.read_text())
        assert data == report.to_dict()
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["reference"] == {"seed_seconds": 2.5}
        assert data["kernels"]["aes"]["speedup"] == 3.0

    def test_reference_omitted_when_absent(self):
        assert "reference" not in make_report(make_kernel()).to_dict()

    def test_render_mentions_every_kernel_and_total(self):
        report = make_report(make_kernel("aes"), make_kernel("nw"))
        text = report.render()
        assert "aes" in text
        assert "nw" in text
        assert "TOTAL" in text


class TestCompareReports:
    def baseline(self) -> dict:
        return make_report(
            make_kernel("aes", cycles=1000, fast_seconds=1.0, slow_seconds=3.0)
        ).to_dict()

    def test_identical_reports_are_clean(self):
        base = self.baseline()
        assert compare_reports(base, base) == []

    def test_cycle_drift_warns(self):
        current = make_report(
            make_kernel("aes", cycles=1001, fast_seconds=1.0, slow_seconds=3.0)
        ).to_dict()
        warnings = compare_reports(current, self.baseline())
        assert any("cycles changed" in w for w in warnings)

    def test_speedup_regression_warns(self):
        current = make_report(
            make_kernel("aes", cycles=1000, fast_seconds=2.0, slow_seconds=3.0)
        ).to_dict()
        warnings = compare_reports(current, self.baseline())
        assert any("speedup regressed" in w for w in warnings)
        assert any("total fast-path speedup regressed" in w for w in warnings)

    def test_regression_within_tolerance_is_clean(self):
        # 3.0x -> 2.5x is a ~17% loss: inside the default 20% tolerance.
        current = make_report(
            make_kernel("aes", cycles=1000, fast_seconds=1.2, slow_seconds=3.0)
        ).to_dict()
        assert compare_reports(current, self.baseline()) == []

    def test_tighter_tolerance_catches_small_regressions(self):
        current = make_report(
            make_kernel("aes", cycles=1000, fast_seconds=1.2, slow_seconds=3.0)
        ).to_dict()
        warnings = compare_reports(current, self.baseline(), tolerance=0.10)
        assert any("speedup regressed" in w for w in warnings)

    def test_kernel_missing_from_baseline_is_ignored(self):
        current = make_report(
            make_kernel("aes", cycles=1000, fast_seconds=1.0, slow_seconds=3.0),
            make_kernel("new", cycles=50, fast_seconds=0.1, slow_seconds=0.1),
        ).to_dict()
        # The new kernel has no baseline entry; only totals could warn,
        # and its 1.0x contribution is too small to drag them under.
        assert compare_reports(current, self.baseline()) == []

    def test_wall_clock_alone_never_warns(self):
        # Same cycles and same speedup ratios on a 5x slower machine.
        current = make_report(
            make_kernel("aes", cycles=1000, fast_seconds=5.0, slow_seconds=15.0)
        ).to_dict()
        assert compare_reports(current, self.baseline()) == []

"""Tests for the event tracer and the Chrome-trace schema validator."""

import json

import pytest

from repro.obs.tracer import (
    COMPRESSOR_TID,
    COUNTER_TID,
    EventTracer,
    validate_chrome_trace,
)


def make_valid_tracer():
    tracer = EventTracer()
    tracer.name_process(0, "SM 0")
    tracer.name_track(0, 1, "warp 0")
    tracer.name_track(0, COMPRESSOR_TID, "compressors")
    tracer.span(0, 1, "ADD r3", 5, 9, pc=2)
    tracer.span(0, COMPRESSOR_TID, "compress r3", 9, 11)
    tracer.instant(0, 1, "retire", 11)
    tracer.counter(0, "bank accesses", 8, reads=3, writes=1)
    return tracer


class TestEmission:
    def test_span_shape(self):
        tracer = make_valid_tracer()
        payload = tracer.export()
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert spans[0] == {
            "ph": "X",
            "pid": 0,
            "tid": 1,
            "name": "ADD r3",
            "ts": 5,
            "dur": 4,
            "args": {"pc": 2},
        }

    def test_counter_events_attach_to_counter_tid(self):
        payload = make_valid_tracer().export()
        (counter,) = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        assert counter["tid"] == COUNTER_TID
        assert counter["args"] == {"reads": 3.0, "writes": 1.0}

    def test_negative_duration_clamped(self):
        tracer = EventTracer()
        tracer.span(0, 1, "x", 10, 5)
        assert list(tracer._events)[0]["dur"] == 0

    def test_ring_buffer_drops_oldest(self):
        tracer = EventTracer(capacity=3)
        for i in range(5):
            tracer.instant(0, 1, f"e{i}", i)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert tracer.emitted == 5
        names = [e["name"] for e in tracer._events]
        assert names == ["e2", "e3", "e4"]  # the tail survives

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            EventTracer(capacity=0)


class TestExport:
    def test_metadata_precedes_sorted_events(self):
        tracer = make_valid_tracer()
        events = tracer.export()["traceEvents"]
        phases = [e["ph"] for e in events]
        first_real = phases.index("X")
        assert all(p == "M" for p in phases[:first_real])
        real_ts = [e["ts"] for e in events[first_real:]]
        assert real_ts == sorted(real_ts)

    def test_longer_span_sorts_first_at_equal_ts(self):
        tracer = EventTracer()
        tracer.name_process(0, "SM 0")
        tracer.name_track(0, 1, "warp 0")
        tracer.span(0, 1, "collect", 5, 7)  # emitted first, shorter
        tracer.span(0, 1, "ADD r1", 5, 20)  # enclosing span
        spans = [e for e in tracer.export()["traceEvents"] if e["ph"] == "X"]
        assert [s["name"] for s in spans] == ["ADD r1", "collect"]

    def test_export_json_serializable_with_drop_accounting(self):
        tracer = make_valid_tracer()
        payload = json.loads(json.dumps(tracer.export()))
        assert payload["otherData"]["events_emitted"] == 4
        assert payload["otherData"]["events_dropped"] == 0


class TestValidation:
    def test_valid_trace_passes(self):
        assert validate_chrome_trace(make_valid_tracer().export()) == []

    def test_empty_payload_fails(self):
        assert "traceEvents missing or empty" in validate_chrome_trace({})

    def test_missing_keys_reported(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "ts": 0}]}
        )
        assert any("missing keys" in p for p in problems)

    def test_unnamed_pid_reported(self):
        tracer = EventTracer()
        tracer.name_track(0, 1, "warp 0")
        tracer.span(0, 1, "x", 0, 1)
        tracer.counter(0, "c", 0, v=1)
        problems = validate_chrome_trace(tracer.export())
        assert any("no process_name" in p for p in problems)

    def test_unnamed_span_track_reported(self):
        tracer = EventTracer()
        tracer.name_process(0, "SM 0")
        tracer.span(0, 7, "x", 0, 1)
        tracer.counter(0, "c", 0, v=1)
        problems = validate_chrome_trace(tracer.export())
        assert any("no thread_name" in p for p in problems)

    def test_missing_counter_tracks_reported(self):
        tracer = EventTracer()
        tracer.name_process(0, "SM 0")
        tracer.name_track(0, 1, "warp 0")
        tracer.span(0, 1, "x", 0, 1)
        problems = validate_chrome_trace(tracer.export())
        assert "no non-empty counter tracks" in problems

    def test_unsorted_timestamps_reported(self):
        payload = make_valid_tracer().export()
        payload["traceEvents"].append(
            {"ph": "i", "s": "t", "pid": 0, "tid": 1, "name": "late", "ts": 0,
             "args": {}}
        )
        problems = validate_chrome_trace(payload)
        assert any("not sorted" in p for p in problems)

    def test_strict_raises(self):
        with pytest.raises(ValueError, match="invalid Chrome trace"):
            validate_chrome_trace({}, strict=True)

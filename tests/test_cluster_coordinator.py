"""Unit coverage for the coordinator's scheduler core (ClusterState).

Everything here drives :class:`~repro.cluster.coordinator.ClusterState`
directly — no asyncio, no sockets — with a hand-cranked clock, which is
the point of keeping the scheduler synchronous: shard lifecycle,
heartbeat reaping, journal resume, and the cache-is-truth completion
rules are all provable without a running fleet.
"""

import pytest

from repro.cluster.coordinator import (
    ClusterState,
    StaleShard,
    StaleWorker,
    VersionMismatch,
)
from repro.obs.metrics import MetricRegistry
from repro.serve.http import BadRequest
from repro.sim import ResultCache, SimRequest, code_version, simulate
from repro.sim.cache import fingerprint


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _requests(n: int = 4) -> list[dict]:
    policies = ["baseline", "warped", "warped-buffered", "per-thread"]
    return [
        SimRequest(
            benchmark="lib", policy=policies[i % 4], timing=False, scale="small"
        ).to_payload()
        for i in range(n)
    ]


def _key(payload: dict) -> str:
    return fingerprint(SimRequest.from_payload(payload).key_material())


@pytest.fixture
def state(tmp_path):
    clock = FakeClock()
    cache = ResultCache(tmp_path / "cache")
    st = ClusterState(
        cache,
        tmp_path / "cache" / "cluster" / "journal.json",
        shard_size=2,
        heartbeat_timeout=5.0,
        clock=clock,
    )
    st.clock = clock  # convenience handle for tests
    return st


def _register(state) -> str:
    return state.register_worker(
        {"name": "t", "code_version": code_version()}
    ).worker_id


class TestSweepSubmission:
    def test_expand_dedupes_equivalent_requests(self, state):
        payloads = _requests(4) + _requests(4)  # exact duplicates
        sweep = state.submit_sweep(payloads)
        assert sweep["total"] == 4
        assert sweep["pending"] == 4
        assert len(state.shards) == 2  # shard_size=2

    def test_sweep_id_is_content_addressed(self, state):
        a = state.submit_sweep(_requests(3))
        b = state.submit_sweep(list(reversed(_requests(3))))
        assert a["sweep_id"] == b["sweep_id"]
        # Resubmission attached to existing state instead of resharding.
        assert state.shards_created == 2  # ceil(3/2)

    def test_cached_keys_skip_scheduling(self, state):
        payloads = _requests(4)
        request = SimRequest.from_payload(payloads[0])
        key = fingerprint(request.key_material())
        state.cache.put(key, request.key_material(), simulate(request))
        sweep = state.submit_sweep(payloads)
        assert sweep["done"] == 1
        assert sweep["pending"] == 3
        assert state.keys_skipped_cached == 1

    def test_malformed_payload_rejected(self, state):
        with pytest.raises(BadRequest):
            state.submit_sweep([{"benchmark": "lib", "bogus_field": 1}])
        with pytest.raises(BadRequest):
            state.submit_sweep([])


class TestWorkerLifecycle:
    def test_version_mismatch_rejected_at_registration(self, state):
        with pytest.raises(VersionMismatch):
            state.register_worker({"name": "x", "code_version": "wrong"})

    def test_lease_report_completes_sweep(self, state):
        sweep = state.submit_sweep(_requests(4))
        worker = _register(state)
        seen = []
        while True:
            shard = state.lease(worker)
            if shard is None:
                break
            keys = [unit["key"] for unit in shard["units"]]
            seen.extend(keys)
            state.report(shard["shard_id"], worker, keys, {}, {"simulated": 2})
        assert len(seen) == 4
        final = state.sweep_status(sweep["sweep_id"])
        assert final["complete"] and final["done"] == 4
        assert state.shard_counts() == {"pending": 0, "assigned": 0, "done": 2}
        assert state.simulations_reported() == 2

    def test_failed_keys_recorded_and_sweep_terminates(self, state):
        sweep = state.submit_sweep(_requests(2))
        worker = _register(state)
        shard = state.lease(worker)
        keys = [unit["key"] for unit in shard["units"]]
        state.report(
            shard["shard_id"], worker, keys[:1], {keys[1]: "boom"}, {}
        )
        final = state.sweep_status(sweep["sweep_id"])
        assert final["complete"]
        assert final["failed"] == {keys[1]: "boom"}
        assert state.keys_failed == 1

    def test_unknown_ids_raise_stale_errors(self, state):
        with pytest.raises(StaleWorker):
            state.lease("w9999-ghost")
        with pytest.raises(StaleShard):
            state.report("shard-9999", "w0001-t", [], {}, {})

    def test_lease_skips_shards_satisfied_while_queued(self, state):
        state.submit_sweep(_requests(2))
        worker = _register(state)
        for payload in _requests(2):
            key = _key(payload)
            state._mark_done(key)
            state.done.add(key)
        assert state.lease(worker) is None
        assert state.shard_counts()["done"] == 1


class TestReaping:
    def test_dead_worker_shards_requeued(self, state):
        state.submit_sweep(_requests(4))
        dead = _register(state)
        shard = state.lease(dead)
        assert shard is not None
        state.clock.advance(6.0)  # heartbeat_timeout is 5s
        assert state.reap() == [dead]
        assert state.workers_dead == 1
        assert state.shards_reassigned == 1
        # A live worker picks the orphaned shard back up.
        live = _register(state)
        reassigned_ids = set()
        while (lease := state.lease(live)) is not None:
            reassigned_ids.add(lease["shard_id"])
            state.report(
                lease["shard_id"],
                live,
                [u["key"] for u in lease["units"]],
                {},
                {},
            )
        assert shard["shard_id"] in reassigned_ids
        # The reaped worker must re-register, not resume its identity.
        with pytest.raises(StaleWorker):
            state.heartbeat(dead, {})

    def test_heartbeat_keeps_worker_alive(self, state):
        worker = _register(state)
        state.clock.advance(4.0)
        state.heartbeat(worker, {"simulated": 1})
        state.clock.advance(4.0)
        assert state.reap() == []
        state.clock.advance(6.0)
        assert state.reap() == [worker]


class TestCacheTruth:
    def _entry(self, payload: dict):
        request = SimRequest.from_payload(payload)
        material = request.key_material()
        key = fingerprint(material)
        result = simulate(request)
        return key, {
            "key": key,
            "material": material,
            "result": result.to_dict(),
        }

    def test_cache_put_marks_tracked_key_done(self, state):
        payloads = _requests(2)
        sweep = state.submit_sweep(payloads)
        key, entry = self._entry(payloads[0])
        assert state.cache_put(key, entry) is True
        assert key in state.done
        assert state.sweep_status(sweep["sweep_id"])["done"] == 1
        assert state.put_new == 1 and state.put_dup == 0

    def test_duplicate_put_counted_as_dup(self, state):
        key, entry = self._entry(_requests(1)[0])
        assert state.cache_put(key, entry) is True
        assert state.cache_put(key, entry) is False
        assert state.put_dup == 1

    def test_corrupt_put_rejected(self, state):
        key, entry = self._entry(_requests(1)[0])
        entry = dict(entry, material={"tampered": True})
        with pytest.raises(ValueError):
            state.cache_put(key, entry)
        assert state.cache.read_entry(key) is None

    def test_cache_get_counts_hits_and_misses(self, state):
        key, entry = self._entry(_requests(1)[0])
        assert state.cache_get(key) is None
        state.cache_put(key, entry)
        assert state.cache_get(key) == entry
        assert state.cache_get_hits == 1
        assert state.cache_get_misses == 1


class TestJournalResume:
    def test_restart_recovers_from_cache_not_notes(self, state, tmp_path):
        payloads = _requests(4)
        state.submit_sweep(payloads)
        # Two keys get filled (simulating worker write-through)...
        for payload in payloads[:2]:
            request = SimRequest.from_payload(payload)
            material = request.key_material()
            state.cache.put(
                fingerprint(material), material, simulate(request)
            )
        # ...then the coordinator dies and a new one boots on the same
        # cache directory.
        reborn = ClusterState(
            state.cache,
            state.journal_path,
            shard_size=2,
            heartbeat_timeout=5.0,
            clock=FakeClock(),
        )
        assert reborn.load_journal() is True
        assert len(reborn.units) == 4
        assert len(reborn.done) == 2  # probed from the cache, not notes
        assert reborn.failed == {}  # restart is the retry button
        pending_keys = {
            unit
            for shard in reborn.shards.values()
            for unit in shard.remaining(reborn.done, reborn.failed)
        }
        assert pending_keys == {_key(p) for p in payloads[2:]}

    def test_resubmission_after_restart_is_idempotent(self, state):
        payloads = _requests(4)
        first = state.submit_sweep(payloads)
        reborn = ClusterState(
            state.cache, state.journal_path, clock=FakeClock()
        )
        reborn.load_journal()
        again = reborn.submit_sweep(payloads)
        assert again["sweep_id"] == first["sweep_id"]
        assert len(reborn.units) == 4
        # No double-sharding of already-tracked keys.
        tracked = [k for s in reborn.shards.values() for k in s.keys]
        assert sorted(tracked) == sorted(set(tracked))

    def test_missing_or_stale_journal_starts_fresh(self, state, tmp_path):
        empty = ClusterState(
            state.cache, tmp_path / "nope" / "journal.json"
        )
        assert empty.load_journal() is False
        state.journal_path.parent.mkdir(parents=True, exist_ok=True)
        state.journal_path.write_text('{"version": 999}')
        assert state.load_journal() is False


class TestMetrics:
    def test_cluster_metrics_registered(self, state):
        registry = MetricRegistry(enabled=True)
        state.register_metrics(registry)
        names = registry.names()
        for expected in (
            "cluster.keys_total",
            "cluster.keys_done",
            "cluster.keys_pending",
            "cluster.shards_pending",
            "cluster.shards_assigned",
            "cluster.shards_done",
            "cluster.workers_alive",
            "cluster.worker_heartbeat_age_max",
            "cluster.put_new",
            "cluster.put_dup",
            "cluster.shards_reassigned",
            "cluster.simulations_reported",
        ):
            assert expected in names
        state.submit_sweep(_requests(4))
        assert registry.read("cluster.keys_total") == 4
        assert registry.read("cluster.shards_pending") == 2
        assert registry.kind("cluster.leases") == "delta"
        assert registry.kind("cluster.keys_total") == "gauge"

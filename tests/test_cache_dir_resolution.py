"""Regression: every entry point resolves the SAME cache directory.

One rule — explicit flag wins, else ``$REPRO_CACHE_DIR``, else
``.repro-cache`` — enforced by :func:`repro.sim.cache.resolve_cache_dir`
and honored by the runner session, ``repro serve``, the cluster
coordinator/worker/driver session, the fuzzer's artifact root, and the
``repro cache`` maintenance CLI.  A divergent entry point silently
splits the result universe; this module is the tripwire.
"""

from pathlib import Path

import pytest

from repro.sim.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    resolve_cache_dir,
)


@pytest.fixture
def env_root(tmp_path, monkeypatch) -> Path:
    root = tmp_path / "one-true-cache"
    monkeypatch.setenv(CACHE_DIR_ENV, str(root))
    return root


class TestResolutionRule:
    def test_explicit_beats_env(self, env_root, tmp_path):
        explicit = tmp_path / "explicit"
        assert resolve_cache_dir(explicit) == explicit
        assert resolve_cache_dir(str(explicit)) == explicit

    def test_env_beats_default(self, env_root):
        assert resolve_cache_dir(None) == env_root

    def test_default_when_nothing_set(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert resolve_cache_dir(None) == Path(DEFAULT_CACHE_DIR)

    def test_empty_string_means_unset(self, env_root):
        # argparse defaults and dataclass fields pass "" / None through.
        assert resolve_cache_dir("") == env_root


class TestEveryEntryPointAgrees:
    """Each entry point, configured with *no* explicit directory, must
    land on $REPRO_CACHE_DIR."""

    def test_session_default(self, env_root):
        from repro.sim import Session

        assert Session(scale="small")._disk.root == env_root

    def test_serve_app(self, env_root):
        from repro.serve.server import ServeApp, ServeConfig

        app = ServeApp(
            ServeConfig(port=0, executor="thread", workers=1)
        )
        try:
            assert app.session._disk.root == env_root
        finally:
            app.executor.shutdown(wait=False, cancel_futures=True)

    def test_cluster_coordinator(self, env_root):
        from repro.cluster.coordinator import CoordinatorApp, CoordinatorConfig

        app = CoordinatorApp(CoordinatorConfig(port=0))
        assert app.cache.root == env_root
        assert app.state.journal_path == env_root / "cluster" / "journal.json"

    def test_cluster_worker(self, env_root):
        from repro.cluster.worker import WorkerAgent, WorkerConfig

        agent = WorkerAgent(WorkerConfig())
        assert agent.cache.root == env_root
        assert agent.session._disk is agent.cache

    def test_cluster_session(self, env_root):
        from repro.cluster.session import ClusterSession

        session = ClusterSession()
        assert session._disk.root == env_root

    def test_fuzz_artifact_root(self, env_root):
        from repro.verify.fuzz import artifact_dir

        assert artifact_dir(None) == env_root / "verify"
        # The flag still wins there too.
        assert artifact_dir("elsewhere") == Path("elsewhere") / "verify"

    def test_maintenance_cli(self, env_root, capsys):
        from repro.verify.cli import main as repro_main

        assert repro_main(["cache", "stats"]) == 0
        assert str(env_root) in capsys.readouterr().out

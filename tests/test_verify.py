"""Tests for the :mod:`repro.verify` subsystem.

Covers the kernel generator (determinism, feature coverage), the
differential oracle (non-vacuous agreement across policies and configs),
fault injection (a deliberately corrupted codec table must be caught by
BOTH the invariant layer and the oracle's checked policy), the strict
scoreboard and state-scan invariants, the shrinker, artifact round-trips,
and the ``repro verify`` CLI.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.codec as codec
from repro.core.codec import CompressionMode
from repro.gpu.config import GPUConfig
from repro.gpu.launch import run_kernel
from repro.gpu.regfile import RegisterFile
from repro.gpu.scoreboard import Scoreboard, ScoreboardError
from repro.power.gating import BankGatingController
from repro.verify.cli import main as cli_main
from repro.verify.fuzz import (
    FuzzCase,
    FuzzFailure,
    case_for_seed,
    dump_artifact,
    fuzz_many,
    load_artifact,
    replay_artifact,
    shrink,
)
from repro.verify.generator import DUMP_STRIDE, GenSpec, generate_launch
from repro.verify.invariants import (
    CodecMismatch,
    InvariantViolation,
    check_decision,
    crosscheck_register,
)
from repro.verify.oracle import (
    DifferentialMismatch,
    compare_memory,
    run_differential,
    verify_benchmark,
)


@pytest.fixture
def broken_banks_table(monkeypatch):
    """Inject the ISSUE's example fault: <4,1> claims 4 banks, not 3."""
    patched = dict(codec._MODE_BANKS)
    patched[CompressionMode.B4D1] = 4
    monkeypatch.setattr(codec, "_MODE_BANKS", patched)


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------
class TestGenerator:
    def test_same_spec_same_kernel(self):
        spec = GenSpec(seed=7)
        a, b = generate_launch(spec), generate_launch(spec)
        assert [str(i) for i in a.kernel.instructions] == [
            str(i) for i in b.kernel.instructions
        ]
        assert a.params == b.params
        sa, sb = a.fresh_memory().snapshot(), b.fresh_memory().snapshot()
        assert sa.keys() == sb.keys()
        for name in sa:
            np.testing.assert_array_equal(sa[name], sb[name])

    def test_different_seeds_differ(self):
        a = generate_launch(GenSpec(seed=1))
        b = generate_launch(GenSpec(seed=2))
        assert [str(i) for i in a.kernel.instructions] != [
            str(i) for i in b.kernel.instructions
        ]

    def test_fresh_memory_is_independent(self):
        launch = generate_launch(GenSpec(seed=3))
        m1, m2 = launch.fresh_memory(), launch.fresh_memory()
        s1 = m1.snapshot()
        run_kernel(
            launch.kernel,
            launch.grid_dim,
            launch.cta_dim,
            launch.params,
            m1,
        )
        # m2 still holds the pristine image even after m1 was mutated.
        for name, arr in m2.snapshot().items():
            if name.startswith("inp"):
                np.testing.assert_array_equal(arr, s1[name])

    def test_feature_coverage(self):
        """The interesting constructs actually appear across a few seeds."""
        text = "\n".join(
            str(i)
            for s in range(8)
            for i in generate_launch(GenSpec(seed=s)).kernel.instructions
        )
        for op in ("sts", "lds", "bar", "@", "fadd", "ldg", "stg"):
            assert op in text, f"generator never emitted {op!r}"

    def test_register_budget_respected(self):
        spec = GenSpec(seed=11, reg_budget=16, blocks=10)
        launch = generate_launch(spec)
        assert launch.kernel.num_registers <= DUMP_STRIDE

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            GenSpec(seed=0, cta_threads=48)
        with pytest.raises(ValueError):
            GenSpec(seed=0, reg_budget=4)


# ----------------------------------------------------------------------
# Differential oracle
# ----------------------------------------------------------------------
class TestOracle:
    @pytest.mark.parametrize("policy", ["warped", "baseline", "per-thread"])
    def test_generated_kernel_agrees(self, policy):
        outcome = run_differential(generate_launch(GenSpec(seed=5)), policy)
        # The oracle must not be vacuous: both engines checked writes and
        # the invariant checker scanned every cycle.
        assert outcome.functional_writes_checked > 0
        assert outcome.cycle_writes_checked > 0
        assert outcome.invariant_commits > 0
        assert outcome.invariant_ticks == outcome.cycles
        assert outcome.buffers_compared >= 3

    def test_multi_sm_and_rfc_variants(self):
        launch = generate_launch(GenSpec(seed=6))
        run_differential(launch, config=GPUConfig(num_sms=2))
        run_differential(launch, config=GPUConfig(rfc_entries_per_warp=2))

    def test_benchmark_verifies(self):
        from repro.kernels.suite import get_benchmark

        outcome = verify_benchmark(get_benchmark("pathfinder"))
        assert outcome.invariant_ticks == outcome.cycles
        assert outcome.cycle_writes_checked > 0

    def test_compare_memory_reports_first_difference(self):
        base = {"buf": np.arange(8, dtype=np.uint32)}
        other = {"buf": np.arange(8, dtype=np.uint32)}
        other["buf"][5] ^= 1
        with pytest.raises(DifferentialMismatch, match="word 5"):
            compare_memory(base, other, "unit")
        with pytest.raises(DifferentialMismatch, match="buffer sets"):
            compare_memory(base, {}, "unit")


# ----------------------------------------------------------------------
# Fault injection: the same fault must be caught by both layers
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_invariant_layer_catches_bank_table_fault(
        self, broken_banks_table
    ):
        """Cycle-level run alone (no oracle): the level-2 invariant
        checker's codec cross-check flags the corrupt bank count."""
        launch = generate_launch(GenSpec(seed=2))
        with pytest.raises(CodecMismatch, match="B4D1"):
            run_kernel(
                launch.kernel,
                launch.grid_dim,
                launch.cta_dim,
                launch.params,
                launch.fresh_memory(),
                config=GPUConfig(verify_level=2),
                policy="warped",
            )

    def test_oracle_catches_bank_table_fault(self, broken_banks_table):
        """Differential oracle with the invariant checker OFF: the checked
        policy wrapper still cross-checks every write in both engines."""
        with pytest.raises(CodecMismatch, match="B4D1"):
            run_differential(
                generate_launch(GenSpec(seed=2)), verify_level=0
            )

    def test_crosscheck_register_direct(self, broken_banks_table):
        values = np.zeros(32, dtype=np.uint32)
        values[1] = 3  # one-byte delta -> B4D1
        with pytest.raises(CodecMismatch, match="claims 4 banks"):
            crosscheck_register(values)

    def test_clean_codec_crosschecks_clean(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            base = rng.integers(0, 1 << 32, dtype=np.uint32)
            spread = int(rng.choice([0, 1, 100, 40_000, 1 << 20]))
            lanes = (
                base
                + rng.integers(0, spread + 1, 32, dtype=np.uint32)
            ).astype(np.uint32)
            crosscheck_register(lanes)


# ----------------------------------------------------------------------
# Invariant layer units
# ----------------------------------------------------------------------
class TestInvariants:
    def test_strict_scoreboard_double_reserve(self):
        sb = Scoreboard(strict=True)
        sb.reserve(0, 1)
        with pytest.raises(ScoreboardError, match="double reserve"):
            sb.reserve(0, 1)

    def test_strict_scoreboard_double_release(self):
        sb = Scoreboard(strict=True)
        sb.reserve(0, 1)
        sb.release(0, 1)
        with pytest.raises(ScoreboardError, match="not pending"):
            sb.release(0, 1)

    def test_lenient_scoreboard_unchanged(self):
        sb = Scoreboard()
        sb.release(0, 1)  # no-op, as before

    def test_check_decision_rejects_missing_and_bad(self):
        values = np.zeros(32, dtype=np.uint32)
        with pytest.raises(
            InvariantViolation, match="without a compression decision"
        ):
            check_decision(None, values)

    def test_regfile_consistency_catches_corruption(self):
        config = GPUConfig()
        gating = BankGatingController(config.num_banks)
        rf = RegisterFile(config, gating)
        rf.configure_kernel(4)
        rf.allocate_warp(0)
        rf.write_commit(0, 1, CompressionMode.B4D1, 3, cycle=0)
        rf.check_consistency()  # clean state passes
        gating.check_consistency(rf.bank_occupancy())
        # Corrupt the incrementally-maintained counter.
        rf.compressed_slots += 1
        with pytest.raises(InvariantViolation, match="compressed_slots"):
            rf.check_consistency()
        rf.compressed_slots -= 1
        # Corrupt a bank count behind the gating controller's back.
        s = rf.slot(0, 1)
        rf._banks_used[s] = 5
        with pytest.raises(InvariantViolation):
            gating.check_consistency(rf.bank_occupancy())

    def test_verify_level_validation(self):
        with pytest.raises(ValueError, match="verify_level"):
            GPUConfig(verify_level=3)


# ----------------------------------------------------------------------
# Fuzz loop, shrinking, artifacts
# ----------------------------------------------------------------------
class TestFuzz:
    def test_sweep_is_clean(self):
        report = fuzz_many(range(25))
        assert report.seeds_run == 25
        assert report.ok, [f.error for f in report.failures]

    def test_case_derivation_is_deterministic(self):
        assert case_for_seed(123) == case_for_seed(123)

    def test_shrink_converges_to_trigger(self):
        """A synthetic predicate shrinks to the minimal spec keeping it."""
        case = case_for_seed(0)

        def still_fails(c: FuzzCase) -> bool:
            return c.spec.allow_shared  # "bug" depends only on shared mem

        spec = shrink(case, still_fails=still_fails)
        assert spec.allow_shared
        assert spec.num_ctas == 1
        assert spec.cta_threads == 32
        assert spec.blocks == 1
        assert not spec.allow_float

    def test_failure_artifact_round_trip(
        self, broken_banks_table, tmp_path
    ):
        report = fuzz_many(range(2, 3), artifact_root=tmp_path)
        assert not report.ok
        failure = report.failures[0]
        assert failure.artifact_path is not None
        assert failure.artifact_path.exists()
        assert "CodecMismatch" in failure.error
        # Shrinking the spec must not change policy/config derivation.
        case = load_artifact(failure.artifact_path)
        assert case.policy == failure.policy
        with pytest.raises(CodecMismatch):
            replay_artifact(failure.artifact_path)

    def test_replay_passes_once_fixed(self, tmp_path):
        failure = FuzzFailure(
            seed=2,
            error="CodecMismatch: injected",
            original_spec=GenSpec(seed=2),
            shrunk_spec=GenSpec(seed=2, blocks=1),
            policy="warped",
            config_overrides={},
        )
        path = dump_artifact(failure, tmp_path)
        replay_artifact(path)  # codec is healthy -> no exception

    def test_load_rejects_foreign_json(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text('{"kind": "something-else"}')
        with pytest.raises(ValueError, match="not a fuzz-failure"):
            load_artifact(bad)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_verify_ok(self, capsys, tmp_path):
        rc = cli_main(
            [
                "verify",
                "--seeds",
                "3",
                "--no-suite",
                "--quiet",
                "--artifact-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0
        assert "verification passed" in capsys.readouterr().out

    def test_verify_fails_nonzero(
        self, broken_banks_table, capsys, tmp_path
    ):
        rc = cli_main(
            [
                "verify",
                "--seeds",
                "1",
                "--start-seed",
                "2",
                "--no-suite",
                "--no-shrink",
                "--quiet",
                "--artifact-dir",
                str(tmp_path),
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "1 failed" in out
        assert "--replay" in out

    def test_replay_round_trip_via_cli(
        self, broken_banks_table, capsys, tmp_path
    ):
        assert (
            cli_main(
                [
                    "verify",
                    "--seeds",
                    "1",
                    "--start-seed",
                    "2",
                    "--no-suite",
                    "--no-shrink",
                    "--quiet",
                    "--artifact-dir",
                    str(tmp_path),
                ]
            )
            == 1
        )
        artifacts = list((tmp_path / "verify").glob("fail-*.json"))
        assert len(artifacts) == 1
        rc = cli_main(["verify", "--replay", str(artifacts[0])])
        assert rc == 1
        assert "still fails" in capsys.readouterr().out

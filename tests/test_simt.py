"""Unit and property tests for the SIMT reconvergence stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.simt import SimtStack, full_mask, popcount

FULL = full_mask(32)


class TestBasics:
    def test_initial_state(self):
        s = SimtStack(32)
        assert s.pc == 0
        assert s.active_mask == FULL
        assert not s.done
        assert s.depth == 1

    def test_partial_initial_mask(self):
        s = SimtStack(32, mask=0xFF)
        assert s.active_mask == 0xFF

    def test_empty_initial_mask_rejected(self):
        with pytest.raises(ValueError):
            SimtStack(32, mask=0)

    def test_advance(self):
        s = SimtStack(32)
        s.advance()
        assert s.pc == 1

    def test_helpers(self):
        assert popcount(0b1011) == 3
        assert full_mask(4) == 0b1111


class TestBranch:
    def test_uniform_taken(self):
        s = SimtStack(32)
        s.branch(taken_mask=FULL, target=10, reconv=20)
        assert s.pc == 10
        assert s.depth == 1

    def test_uniform_not_taken(self):
        s = SimtStack(32)
        s.branch(taken_mask=0, target=10, reconv=20)
        assert s.pc == 1
        assert s.depth == 1

    def test_divergence_executes_fallthrough_first(self):
        s = SimtStack(32)
        taken = 0xFFFF  # lanes 0-15 jump
        s.branch(taken_mask=taken, target=10, reconv=20)
        assert s.depth == 3
        assert s.pc == 1  # fall-through path (lanes 16-31)
        assert s.active_mask == FULL & ~taken

    def test_reconvergence_restores_full_mask(self):
        s = SimtStack(32)
        taken = 0x3
        s.branch(taken_mask=taken, target=10, reconv=20)
        # Fall-through path runs to the reconvergence point.
        s.top.pc = 20
        s.settle()
        assert s.pc == 10
        assert s.active_mask == taken
        # Taken path reaches the join too.
        s.top.pc = 20
        s.settle()
        assert s.pc == 20
        assert s.active_mask == FULL
        assert s.depth == 1

    def test_branch_to_reconv_skips_taken_entry(self):
        # A simple if: lanes failing the guard jump straight to the join.
        s = SimtStack(32)
        s.branch(taken_mask=0xF, target=20, reconv=20)
        assert s.depth == 2  # no taken-path entry pushed
        assert s.active_mask == FULL & ~0xF
        s.top.pc = 20
        s.settle()
        assert s.active_mask == FULL
        assert s.pc == 20

    def test_nested_divergence(self):
        s = SimtStack(32)
        s.branch(taken_mask=0xFFFF, target=10, reconv=30)  # outer
        inner_mask = s.active_mask & 0xFF0000
        s.branch(taken_mask=inner_mask, target=5, reconv=8)  # inner
        assert s.depth == 5
        # Unwind inner fall-through, inner taken, then outer paths.
        s.top.pc = 8
        s.settle()
        assert s.active_mask == inner_mask
        s.top.pc = 8
        s.settle()
        assert s.active_mask == 0xFFFF0000  # outer fall-through mask


class TestExit:
    def test_exit_all_lanes_finishes_warp(self):
        s = SimtStack(32)
        s.exit_lanes(FULL)
        assert s.done

    def test_partial_exit_keeps_running(self):
        s = SimtStack(32)
        s.exit_lanes(0xFFFF)
        assert not s.done
        assert s.active_mask == 0xFFFF0000

    def test_exit_in_divergent_path(self):
        s = SimtStack(32)
        s.branch(taken_mask=0xFF, target=10, reconv=20)
        # The fall-through lanes exit inside their path.
        s.exit_lanes(s.active_mask)
        assert s.pc == 10
        assert s.active_mask == 0xFF
        s.top.pc = 20
        s.settle()
        assert s.active_mask == 0xFF  # only survivors reconverge

    def test_top_raises_after_done(self):
        s = SimtStack(32)
        s.exit_lanes(FULL)
        with pytest.raises(RuntimeError):
            _ = s.top


# ----------------------------------------------------------------------
# Property: lane conservation — at every point, the union of live masks
# never gains lanes and entries at the same reconvergence nest correctly.
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_property_masks_never_gain_lanes(data):
    s = SimtStack(32)
    live = FULL
    for step in range(30):
        if s.done:
            break
        action = data.draw(
            st.sampled_from(["branch", "advance", "exit", "join"])
        )
        if action == "branch":
            taken = data.draw(st.integers(0, FULL)) & s.active_mask
            target = s.pc + data.draw(st.integers(1, 5))
            reconv = target + data.draw(st.integers(1, 5))
            s.branch(taken_mask=taken, target=target, reconv=reconv)
        elif action == "advance":
            s.advance()
        elif action == "exit":
            mask = data.draw(st.integers(0, FULL)) & s.active_mask
            s.exit_lanes(mask)
            live &= ~mask
        else:  # jump the current path to its reconvergence point
            if s.top.reconv is not None:
                s.top.pc = s.top.reconv
                s.settle()
        if not s.done:
            assert s.active_mask != 0
            assert s.active_mask & ~live == 0
    if s.done:
        assert live == 0 or True  # done implies every lane exited

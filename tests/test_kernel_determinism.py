"""Determinism audit of the benchmark suite.

The paper's A/B energy comparisons (and the verify layer's differential
oracle) rely on every benchmark being a pure function of its fixed seed:
two independently constructed instances must build byte-identical
kernels, launch parameters, and initial memory images.  This audit runs
over the full registry — paper suite plus the extended suite — so a
benchmark that sneaks in an unseeded random source fails here first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.suite import benchmark_names, get_benchmark

ALL_NAMES = benchmark_names() + benchmark_names(extended=True)


def _fresh(name):
    """A brand-new instance, bypassing the registry's cached singletons."""
    return type(get_benchmark(name))()


@pytest.mark.parametrize("name", ALL_NAMES)
def test_same_seed_identical_build(name):
    a, b = _fresh(name), _fresh(name)
    assert a.seed == b.seed
    assert [str(i) for i in a.kernel.instructions] == [
        str(i) for i in b.kernel.instructions
    ]
    assert a.kernel.num_registers == b.kernel.num_registers


@pytest.mark.parametrize("name", ALL_NAMES)
def test_same_seed_identical_launch(name):
    sa = _fresh(name).launch("small")
    sb = _fresh(name).launch("small")
    assert sa.grid_dim == sb.grid_dim
    assert sa.cta_dim == sb.cta_dim
    assert list(sa.params) == list(sb.params)
    ma, mb = sa.fresh_memory().snapshot(), sb.fresh_memory().snapshot()
    assert ma.keys() == mb.keys()
    for buf in ma:
        np.testing.assert_array_equal(
            ma[buf], mb[buf], err_msg=f"{name}: buffer {buf!r} drifted"
        )


@pytest.mark.parametrize("name", ALL_NAMES)
def test_launch_replay_is_identical(name):
    """One launch spec replays the same initial image every time —
    required for sweeping many configs against one spec."""
    spec = _fresh(name).launch("small")
    ma, mb = spec.fresh_memory().snapshot(), spec.fresh_memory().snapshot()
    for buf in ma:
        np.testing.assert_array_equal(ma[buf], mb[buf])


def test_registry_is_complete():
    """The audit covers the whole suite (paper + extended)."""
    assert len(ALL_NAMES) == 21
    assert len(set(ALL_NAMES)) == 21

"""Coverage for the ``repro cache`` maintenance CLI (stats/gc/fsck)."""

import json
import os
import time

from repro.sim import ResultCache, Session, SimRequest, simulate
from repro.sim.cache import fingerprint
from repro.sim.maintenance import parse_age, parse_size
from repro.verify.cli import main as repro_main


def _populate(root, policies=("baseline", "warped")) -> list[str]:
    session = Session(scale="small", cache_dir=root)
    keys = []
    for policy in policies:
        request = SimRequest(
            benchmark="lib", policy=policy, timing=False, scale="small"
        )
        session.run(request)
        keys.append(fingerprint(request.key_material()))
    return keys


class TestParsers:
    def test_parse_age(self):
        assert parse_age("3600") == 3600
        assert parse_age("2h") == 7200
        assert parse_age("7d") == 7 * 86400
        assert parse_age("90m") == 5400

    def test_parse_size(self):
        assert parse_size("1048576") == 1 << 20
        assert parse_size("2M") == 2 << 20
        assert parse_size("1G") == 1 << 30
        assert parse_size("500kb") == 500 << 10


class TestStats:
    def test_stats_reports_entries_and_bytes(self, tmp_path, capsys):
        root = tmp_path / "cache"
        _populate(root)
        rc = repro_main(["cache", "--cache-dir", str(root), "stats"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "entries: 2" in out
        assert str(root) in out

    def test_stats_honors_env_var(self, tmp_path, capsys, monkeypatch):
        root = tmp_path / "envcache"
        _populate(root)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        rc = repro_main(["cache", "stats"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "entries: 2" in out


class TestGc:
    def test_max_age_prunes_old_entries(self, tmp_path, capsys):
        root = tmp_path / "cache"
        keys = _populate(root)
        cache = ResultCache(root)
        old = cache._entry_path(keys[0])
        stale = time.time() - 10 * 86400
        os.utime(old, (stale, stale))
        rc = repro_main(
            ["cache", "--cache-dir", str(root), "gc", "--max-age", "7d"]
        )
        assert rc == 0
        assert cache.get(keys[0]) is None
        assert cache.get(keys[1]) is not None

    def test_max_bytes_keeps_newest(self, tmp_path):
        root = tmp_path / "cache"
        keys = _populate(root)
        cache = ResultCache(root)
        # Force distinct mtimes so "newest" is well-defined.
        past = time.time() - 1000
        os.utime(cache._entry_path(keys[0]), (past, past))
        one_entry = cache._entry_path(keys[1]).stat().st_size + 1
        rc = repro_main(
            ["cache", "--cache-dir", str(root),
             "gc", "--max-bytes", str(one_entry)]
        )
        assert rc == 0
        assert cache.get(keys[0]) is None  # oldest evicted
        assert cache.get(keys[1]) is not None

    def test_dry_run_deletes_nothing(self, tmp_path, capsys):
        root = tmp_path / "cache"
        keys = _populate(root)
        rc = repro_main(
            ["cache", "--cache-dir", str(root),
             "gc", "--max-age", "0s", "--dry-run"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "would delete 2 entries" in out
        cache = ResultCache(root)
        assert all(cache.get(k) is not None for k in keys)

    def test_orphan_tmp_and_trace_collection(self, tmp_path):
        root = tmp_path / "cache"
        _populate(root)
        cache = ResultCache(root)
        orphan_tmp = root / "results" / "zz" / "junk.tmp"
        orphan_tmp.parent.mkdir(parents=True, exist_ok=True)
        orphan_tmp.write_text("half-written")
        orphan_trace = root / "traces" / ("f" * 64 + ".npz")
        orphan_trace.parent.mkdir(parents=True, exist_ok=True)
        orphan_trace.write_bytes(b"dead")
        rc = repro_main(
            ["cache", "--cache-dir", str(root), "gc", "--orphans"]
        )
        assert rc == 0
        assert not orphan_tmp.exists()
        assert not orphan_trace.exists()
        assert len(cache) == 2  # real entries untouched


class TestFsck:
    def test_clean_cache_passes(self, tmp_path, capsys):
        root = tmp_path / "cache"
        _populate(root)
        rc = repro_main(["cache", "--cache-dir", str(root), "fsck"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 corrupt" in out
        assert not (root / "quarantine").exists()

    def test_corrupt_entry_quarantined_not_deleted(self, tmp_path, capsys):
        root = tmp_path / "cache"
        keys = _populate(root)
        cache = ResultCache(root)
        victim = cache._entry_path(keys[0])
        victim.write_text("{ torn json")
        rc = repro_main(["cache", "--cache-dir", str(root), "fsck"])
        assert rc == 1
        assert not victim.exists()
        quarantined = root / "quarantine" / victim.name
        assert quarantined.exists()  # evidence kept, never deleted
        assert quarantined.read_text() == "{ torn json"
        assert cache.get(keys[1]) is not None

    def test_fsck_catches_key_material_mismatch(self, tmp_path):
        """An entry whose content no longer hashes to its key — the
        corruption read_entry alone cannot see."""
        root = tmp_path / "cache"
        keys = _populate(root)
        cache = ResultCache(root)
        victim = cache._entry_path(keys[0])
        payload = json.loads(victim.read_text())
        payload["material"]["benchmark"] = "tampered"
        victim.write_text(json.dumps(payload))
        rc = repro_main(["cache", "--cache-dir", str(root), "fsck"])
        assert rc == 1
        assert (root / "quarantine" / victim.name).exists()

    def test_fsck_dry_run_moves_nothing(self, tmp_path):
        root = tmp_path / "cache"
        keys = _populate(root)
        cache = ResultCache(root)
        victim = cache._entry_path(keys[0])
        victim.write_text("garbage")
        rc = repro_main(
            ["cache", "--cache-dir", str(root), "fsck", "--dry-run"]
        )
        assert rc == 1
        assert victim.exists()
        assert not (root / "quarantine").exists()

    def test_misfiled_entry_quarantined(self, tmp_path):
        root = tmp_path / "cache"
        _populate(root)
        request = SimRequest(
            benchmark="lib", policy="per-thread", timing=False, scale="small"
        )
        material = request.key_material()
        key = fingerprint(material)
        result = simulate(request)
        cache = ResultCache(root)
        # File a valid entry under the wrong name.
        wrong = "0" * 64
        payload = {"key": key, "material": material, "result": result.to_dict()}
        path = cache._entry_path(wrong)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload))
        rc = repro_main(["cache", "--cache-dir", str(root), "fsck"])
        assert rc == 1
        assert (root / "quarantine" / path.name).exists()

"""Load-generator tests: percentile math, workload determinism, and a
full closed-loop run (with the cold-run contract check) against a live
embedded server.
"""

import json

import pytest
from serve_helpers import EmbeddedServer

from repro.serve.loadgen import (
    LoadReport,
    LoadSpec,
    build_workload,
    latency_summary,
    percentile,
    run_loadgen,
    verify_cold_run,
    write_report,
)


class TestPercentiles:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]  # 1..100
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0

    def test_small_samples_and_edges(self):
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0
        assert percentile([3.0, 1.0, 2.0], 0) == 1.0
        with pytest.raises(ValueError):
            percentile([1.0], 120)

    def test_summary_shape(self):
        summary = latency_summary([0.1, 0.2, 0.3, 0.4])
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(0.25)
        assert summary["p50"] == 0.2
        assert summary["max"] == 0.4


class TestWorkload:
    def test_deterministic_and_duplicated(self):
        spec = LoadSpec(requests=50, distinct=10, seed=3)
        workload = build_workload(spec)
        assert workload == build_workload(spec)
        names = [item["benchmark"] for item in workload]
        assert len(names) == 50
        assert len(set(names)) == 10
        # Round-robin base: every distinct kernel appears 5 times.
        assert all(names.count(name) == 5 for name in set(names))

    def test_distinct_capped_by_requests(self):
        workload = build_workload(LoadSpec(requests=3, distinct=10))
        assert len(workload) == 3
        assert len({item["benchmark"] for item in workload}) == 3

    def test_seed_changes_order_not_mix(self):
        a = build_workload(LoadSpec(requests=20, distinct=5, seed=1))
        b = build_workload(LoadSpec(requests=20, distinct=5, seed=2))
        assert a != b
        key = lambda w: sorted(item["benchmark"] for item in w)  # noqa: E731
        assert key(a) == key(b)

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            build_workload(LoadSpec(distinct=0))


class TestContract:
    def base_report(self) -> LoadReport:
        spec = LoadSpec(requests=10, distinct=4)
        report = LoadReport(spec=spec, ok=10, distinct_keys=4)
        report.server_metrics = {
            "metrics": {
                "serve.simulations": 4,
                "serve.coalesced": 3,
                "serve.cache_hits": 3,
            }
        }
        return report

    def test_clean_report_passes(self):
        assert verify_cold_run(self.base_report()) == []

    def test_violations_detected(self):
        report = self.base_report()
        report.failed = 2
        report.ok = 8
        report.server_metrics["metrics"]["serve.simulations"] = 6
        report.server_metrics["metrics"]["serve.coalesced"] = 0
        report.server_metrics["metrics"]["serve.cache_hits"] = 0
        problems = verify_cold_run(report)
        assert len(problems) == 4
        assert any("failed" in p for p in problems)
        assert any("one per distinct key" in p for p in problems)
        assert any("duplicate submissions" in p for p in problems)

    def test_missing_metrics_flagged(self):
        report = self.base_report()
        report.server_metrics = {}
        assert verify_cold_run(report) == ["no server metrics captured"]


class TestClosedLoopLive:
    def test_cold_run_contract_and_artifact(self, tmp_path):
        spec = LoadSpec(requests=24, distinct=6, concurrency=4, seed=7)
        with EmbeddedServer(workers=2) as server:
            report = run_loadgen(server.host, server.port, spec)
        assert report.ok == 24
        assert report.failed == 0
        assert report.distinct_keys == 6
        assert verify_cold_run(report) == []
        assert report.throughput_rps > 0
        metrics = report.server_metrics["metrics"]
        assert metrics["serve.simulations"] == 6
        assert metrics["serve.coalesced"] + metrics["serve.cache_hits"] == 18

        artifact = tmp_path / "loadgen.json"
        write_report(report, str(artifact))
        payload = json.loads(artifact.read_text())
        assert payload["ok"] == 24
        assert payload["latency_s"]["count"] == 24
        assert payload["latency_s"]["p99"] >= payload["latency_s"]["p50"]
        assert payload["spec"]["mode"] == "closed"
        assert "24/24 ok" in report.render()

    def test_open_loop_against_live_server(self):
        spec = LoadSpec(
            requests=8, distinct=4, mode="open", rate=40.0, seed=11
        )
        with EmbeddedServer(workers=2) as server:
            report = run_loadgen(server.host, server.port, spec)
        assert report.ok == 8
        assert report.failed == 0
        assert verify_cold_run(report) == []

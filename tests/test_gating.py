"""Unit and property tests for bank power gating."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.gating import BankGatingController, BankState


def make(gate_delay=0, wakeup=10, banks=4) -> BankGatingController:
    return BankGatingController(banks, wakeup_latency=wakeup, gate_delay=gate_delay)


class TestLifecycle:
    def test_banks_start_gated(self):
        g = make()
        assert all(g.state(b) is BankState.GATED for b in range(4))

    def test_allocation_wakes(self):
        g = make()
        g.entry_allocated(0, cycle=100)
        assert g.state(0) is BankState.WAKING
        g.settle(110)
        assert g.state(0) is BankState.ON
        assert g.gated_cycles(0) == 100

    def test_freeing_last_entry_gates_after_delay(self):
        g = make(gate_delay=5)
        g.entry_allocated(0, 0)
        g.settle(10)
        g.entry_freed(0, 20)
        g.settle(24)
        assert g.state(0) is BankState.ON  # hysteresis not yet expired
        g.settle(25)
        assert g.state(0) is BankState.GATED

    def test_gated_interval_backdated_to_delay_expiry(self):
        g = make(gate_delay=5)
        g.entry_allocated(0, 0)  # ends the power-on gated interval at 0
        g.settle(10)
        g.entry_freed(0, 20)
        g.settle(100)  # settle called late; interval starts at 25
        g.finalize(125)
        assert g.gated_cycles(0) == 100  # cycles 25-125

    def test_reallocation_cancels_hysteresis(self):
        g = make(gate_delay=5)
        g.entry_allocated(0, 0)
        g.settle(10)
        g.entry_freed(0, 20)
        g.entry_allocated(0, 22)
        g.settle(1000)
        assert g.state(0) is BankState.ON

    def test_free_without_alloc_raises(self):
        with pytest.raises(RuntimeError):
            make().entry_freed(0, 0)


class TestAccess:
    def test_access_to_on_bank_immediate(self):
        g = make()
        g.entry_allocated(0, 0)
        g.settle(10)
        assert g.ready_cycle_for_access(0, 50) == 50

    def test_access_to_gated_bank_waits_wakeup(self):
        g = make(wakeup=10)
        assert g.ready_cycle_for_access(0, 100) == 110
        assert g.state(0) is BankState.WAKING
        # Re-requesting while waking returns the same deadline.
        assert g.ready_cycle_for_access(0, 105) == 110

    def test_wake_clears_hysteresis_timer(self):
        # Regression: a stale empty_since must not re-gate a bank that
        # was just woken for an access.
        g = make(gate_delay=5, wakeup=10)
        g.entry_allocated(0, 0)
        g.settle(10)
        g.entry_freed(0, 20)  # hysteresis timer starts
        g.settle(25)
        assert g.state(0) is BankState.GATED
        assert g.ready_cycle_for_access(0, 100) == 110
        g.settle(110)
        assert g.state(0) is BankState.ON
        g.settle(300)
        assert g.state(0) is BankState.ON  # stays on until freed again

    def test_wakeup_counted(self):
        g = make()
        g.ready_cycle_for_access(0, 10)
        g.entry_allocated(1, 10)
        assert g.total_wakeups() == 2


class TestStatistics:
    def test_finalize_closes_open_interval(self):
        g = make()
        g.finalize(1000)
        assert g.gated_cycles(0) == 1000
        assert g.gated_fraction(0, 1000) == 1.0

    def test_fractions_vector(self):
        g = make(banks=3)
        g.entry_allocated(0, 0)
        g.finalize(100)
        fractions = g.gated_fractions(100)
        assert fractions[0] == 0.0
        assert fractions[1] == fractions[2] == 1.0

    def test_zero_cycles(self):
        assert make().gated_fraction(0, 0) == 0.0


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValueError):
            BankGatingController(0)
        with pytest.raises(ValueError):
            BankGatingController(1, wakeup_latency=-1)
        with pytest.raises(ValueError):
            BankGatingController(1, gate_delay=-1)


# ----------------------------------------------------------------------
# Property: gated cycles never exceed elapsed time, regardless of the
# event sequence.
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    events=st.lists(
        st.tuples(
            st.sampled_from(["alloc", "free", "access", "settle"]),
            st.integers(0, 5),
        ),
        max_size=60,
    )
)
def test_property_gated_cycles_bounded(events):
    g = BankGatingController(2, wakeup_latency=3, gate_delay=4)
    cycle = 0
    allocated = [0, 0]
    for kind, gap in events:
        cycle += gap
        bank = gap % 2
        if kind == "alloc":
            g.entry_allocated(bank, cycle)
            allocated[bank] += 1
        elif kind == "free":
            if allocated[bank]:
                g.entry_freed(bank, cycle)
                allocated[bank] -= 1
        elif kind == "access":
            ready = g.ready_cycle_for_access(bank, cycle)
            assert ready >= cycle
        else:
            g.settle(cycle)
    g.finalize(cycle)
    for bank in range(2):
        assert 0 <= g.gated_cycles(bank) <= cycle

"""Scheduler-level tests for repro.serve: ordering, admission,
coalescing, cache short-circuit, and the timeout → retry → backoff path.

Everything here drives :class:`~repro.serve.jobs.JobScheduler` directly
on a private event loop — no HTTP — with either the real thread-pool
executor (so ``SIM_COUNTER`` proves how many simulations actually ran)
or injected fake futures (for failure-path determinism).
"""

import asyncio
import concurrent.futures
import os
import time

import pytest

from repro.obs.metrics import MetricRegistry
from repro.serve.jobs import (
    DONE,
    FAILED,
    Job,
    JobScheduler,
    PriorityJobQueue,
    QueueFull,
    default_submit_fn,
)
from repro.sim.session import SIM_COUNTER, Session, SimRequest, simulate


def make_job(job_id: str, priority: int = 0) -> Job:
    request = SimRequest(benchmark="lib", timing=False, scale="small")
    return Job(
        id=job_id,
        key=job_id,
        request=request,
        material={},
        priority=priority,
    )


class TestPriorityJobQueue:
    def test_priority_order_high_first(self):
        queue = PriorityJobQueue(max_queue=10)
        for job_id, priority in (("a", 0), ("b", 5), ("c", 1)):
            queue.push(make_job(job_id, priority))
        assert [queue.pop().id for _ in range(3)] == ["b", "c", "a"]

    def test_fifo_within_equal_priority(self):
        queue = PriorityJobQueue(max_queue=10)
        for job_id in "abcd":
            queue.push(make_job(job_id, priority=3))
        assert [queue.pop().id for _ in range(4)] == list("abcd")

    def test_bounded_admission(self):
        queue = PriorityJobQueue(max_queue=2)
        queue.push(make_job("a"))
        queue.push(make_job("b"))
        with pytest.raises(QueueFull) as excinfo:
            queue.push(make_job("c"), retry_after=7.5)
        assert excinfo.value.retry_after == 7.5
        assert len(queue) == 2


def thread_scheduler(session: Session, **kwargs) -> JobScheduler:
    executor = concurrent.futures.ThreadPoolExecutor(max_workers=2)
    kwargs.setdefault("metrics", MetricRegistry(enabled=True))
    return JobScheduler(session, default_submit_fn(executor), **kwargs)


def functional_request(benchmark: str = "lib") -> SimRequest:
    return SimRequest(benchmark=benchmark, timing=False, scale="small")


class TestCoalescing:
    def test_identical_submissions_one_simulation(self):
        """N identical submissions → one job, exactly one SIM_COUNTER
        increment, every submission attached."""
        session = Session(scale="small", use_disk_cache=False)
        scheduler = thread_scheduler(session, workers=2)
        before = SIM_COUNTER.value

        async def drive():
            # Submit everything *before* workers start: deterministic
            # in-flight coalescing, no completion race.
            jobs = [
                await scheduler.submit(functional_request())
                for _ in range(5)
            ]
            scheduler.start()
            await scheduler.wait(jobs[0][0], timeout=30)
            await scheduler.close()
            return jobs

        jobs = asyncio.run(drive())
        first_job, first_coalesced = jobs[0]
        assert not first_coalesced
        assert first_job.state == DONE
        assert first_job.source == "simulated"
        assert first_job.submissions == 5
        for job, coalesced in jobs[1:]:
            assert job is first_job
            assert coalesced
        assert SIM_COUNTER.value - before == 1
        assert scheduler.coalesced.value == 4
        assert scheduler.simulations.value == 1

    def test_equivalent_spellings_coalesce(self):
        """Requests that canonicalize to one key share one job."""
        session = Session(scale="small", use_disk_cache=False)
        scheduler = thread_scheduler(session, workers=1)

        async def drive():
            # Functional runs fold timing-only knobs out of the key, so
            # these two distinct SimRequest objects are one cache entry.
            a, _ = await scheduler.submit(functional_request())
            b, coalesced = await scheduler.submit(
                SimRequest(
                    benchmark="lib",
                    timing=False,
                    scale="small",
                    compression_latency=9,
                )
            )
            await scheduler.close()
            return a, b, coalesced

        a, b, coalesced = asyncio.run(drive())
        assert a is b
        assert coalesced

    def test_warm_cache_short_circuit(self):
        session = Session(scale="small", use_disk_cache=False)
        request = functional_request()
        session.run(request)  # pre-warm the memo
        scheduler = thread_scheduler(session, workers=1)

        async def drive():
            job, coalesced = await scheduler.submit(request)
            await scheduler.close()
            return job, coalesced

        job, coalesced = asyncio.run(drive())
        assert not coalesced
        assert job.state == DONE
        assert job.source == "cache"
        assert job.result is not None
        assert scheduler.cache_hits.value == 1
        assert scheduler.simulations.value == 0


class TestAdmissionControl:
    def test_queue_full_rejects_with_hint(self):
        session = Session(scale="small", use_disk_cache=False)
        scheduler = thread_scheduler(session, workers=1, max_queue=2)

        async def drive():
            await scheduler.submit(functional_request("lib"))
            await scheduler.submit(functional_request("pathfinder"))
            with pytest.raises(QueueFull) as excinfo:
                await scheduler.submit(functional_request("hotspot"))
            assert excinfo.value.retry_after >= 1.0
            # Duplicates of queued work still coalesce while full.
            _, coalesced = await scheduler.submit(functional_request("lib"))
            assert coalesced
            await scheduler.close()

        asyncio.run(drive())
        assert scheduler.rejected.value == 1

    def test_draining_rejects_submissions(self):
        from repro.serve.jobs import Draining

        session = Session(scale="small", use_disk_cache=False)
        scheduler = thread_scheduler(session, workers=1)

        async def drive():
            scheduler.start()
            assert await scheduler.drain(timeout=5)
            with pytest.raises(Draining):
                await scheduler.submit(functional_request())
            await scheduler.close()

        asyncio.run(drive())


class TestRetryBackoff:
    def test_timeout_then_fail_counts_attempts(self):
        session = Session(scale="small", use_disk_cache=False)

        def never(request):
            return concurrent.futures.Future()  # never resolves

        scheduler = JobScheduler(
            session,
            never,
            workers=1,
            job_timeout=0.05,
            max_retries=2,
            backoff_base=0.01,
            metrics=MetricRegistry(enabled=True),
        )

        async def drive():
            scheduler.start()
            job, _ = await scheduler.submit(functional_request())
            await scheduler.wait(job, timeout=10)
            await scheduler.close()
            return job

        job = asyncio.run(drive())
        assert job.state == FAILED
        assert job.attempts == 3  # initial try + 2 retries
        assert "timed out" in job.error
        assert scheduler.timeouts.value == 3
        assert scheduler.retries.value == 2
        assert scheduler.failures.value == 1
        assert job.key not in scheduler.inflight

    def test_backoff_delays_between_attempts(self):
        session = Session(scale="small", use_disk_cache=False)
        attempt_times = []

        def failing(request):
            attempt_times.append(time.perf_counter())
            future = concurrent.futures.Future()
            future.set_exception(RuntimeError("boom"))
            return future

        backoff = 0.08
        scheduler = JobScheduler(
            session,
            failing,
            workers=1,
            job_timeout=5,
            max_retries=2,
            backoff_base=backoff,
            metrics=MetricRegistry(enabled=True),
        )

        async def drive():
            scheduler.start()
            job, _ = await scheduler.submit(functional_request())
            await scheduler.wait(job, timeout=10)
            await scheduler.close()
            return job

        job = asyncio.run(drive())
        assert job.state == FAILED
        assert "RuntimeError: boom" in job.error
        assert len(attempt_times) == 3
        # Exponential backoff: gaps of at least base, then 2 * base.
        assert attempt_times[1] - attempt_times[0] >= backoff * 0.9
        assert attempt_times[2] - attempt_times[1] >= 2 * backoff * 0.9

    def test_flaky_then_success_recovers(self):
        session = Session(scale="small", use_disk_cache=False)
        request = functional_request()
        payload = {
            "result": simulate(request).to_dict(),
            "elapsed": 0.01,
            "worker": os.getpid(),
        }
        calls = []

        def flaky(req):
            future = concurrent.futures.Future()
            if len(calls) < 2:
                calls.append("fail")
                future.set_exception(RuntimeError("transient"))
            else:
                future.set_result(payload)
            return future

        scheduler = JobScheduler(
            session,
            flaky,
            workers=1,
            job_timeout=5,
            max_retries=2,
            backoff_base=0.01,
            metrics=MetricRegistry(enabled=True),
        )

        async def drive():
            scheduler.start()
            job, _ = await scheduler.submit(request)
            await scheduler.wait(job, timeout=10)
            await scheduler.close()
            return job

        job = asyncio.run(drive())
        assert job.state == DONE
        assert job.attempts == 3
        assert job.source == "simulated"
        assert scheduler.retries.value == 2
        assert scheduler.completed.value == 1
        # The recovered result is published to the session cache.
        _, _, hit = session.lookup(request)
        assert hit is not None


class TestDrain:
    def test_drain_completes_queued_work(self):
        session = Session(scale="small", use_disk_cache=False)
        scheduler = thread_scheduler(session, workers=2)

        async def drive():
            jobs = [
                (await scheduler.submit(functional_request(name)))[0]
                for name in ("lib", "pathfinder", "hotspot")
            ]
            scheduler.start()
            assert await scheduler.drain(timeout=60)
            await scheduler.close()
            return jobs

        jobs = asyncio.run(drive())
        assert all(job.state == DONE for job in jobs)
        assert not scheduler.inflight

"""Shared test helpers: an embedded cluster coordinator + worker threads.

The coordinator's asyncio loop runs on a daemon thread (same pattern as
``serve_helpers.EmbeddedServer``); worker agents run on plain threads in
*this* process so their simulations land on the test's ``SIM_COUNTER``
and the zero-duplicate proofs stay observable.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading

from repro.cluster.client import CoordinatorClient
from repro.cluster.coordinator import CoordinatorApp, CoordinatorConfig
from repro.cluster.worker import WorkerAgent, WorkerConfig


class EmbeddedCoordinator:
    """Context manager: boot on port 0, expose host/port/app/state."""

    def __init__(self, **config_kwargs):
        config_kwargs.setdefault("port", 0)
        self.config = CoordinatorConfig(**config_kwargs)
        self.app: CoordinatorApp | None = None
        self.host = ""
        self.port = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._boot_error: BaseException | None = None

    def __enter__(self) -> "EmbeddedCoordinator":
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        if not self._ready.wait(10):
            raise RuntimeError("embedded coordinator failed to boot")
        if self._boot_error is not None:
            raise self._boot_error
        assert self.client().wait_ready(10)
        return self

    def __exit__(self, *exc_info) -> None:
        if (
            self._loop is not None
            and self.app is not None
            and not self._loop.is_closed()
        ):
            try:
                future = asyncio.run_coroutine_threadsafe(
                    self.app.shutdown(), self._loop
                )
                future.result(30)
            except (RuntimeError, concurrent.futures.CancelledError):
                pass
        if self._thread is not None:
            self._thread.join(10)

    def _main(self) -> None:
        async def serve() -> None:
            try:
                self.app = CoordinatorApp(self.config)
                self.host, self.port = await self.app.start()
                self._loop = asyncio.get_running_loop()
            except BaseException as exc:  # noqa: BLE001 - surfaced to tester
                self._boot_error = exc
                self._ready.set()
                raise
            self._ready.set()
            await self.app.serve_until_stopped()

        try:
            asyncio.run(serve())
        except BaseException:  # noqa: BLE001 - boot errors already captured
            pass

    def client(self, timeout: float = 30.0) -> CoordinatorClient:
        return CoordinatorClient(self.host, self.port, timeout=timeout)


class WorkerThread:
    """One in-process worker agent on a background thread."""

    def __init__(self, coordinator: EmbeddedCoordinator, **config_kwargs):
        config_kwargs.setdefault("host", coordinator.host)
        config_kwargs.setdefault("port", coordinator.port)
        config_kwargs.setdefault("poll_interval", 0.05)
        self.agent = WorkerAgent(WorkerConfig(**config_kwargs))
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "WorkerThread":
        self._thread = threading.Thread(target=self.agent.run, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.agent.stop()
        if self._thread is not None:
            self._thread.join(10)

"""Property-based tests: interpreter semantics vs plain-Python reference.

Each property builds a one-instruction kernel with random immediate
operands and checks every lane against arbitrary-precision Python
arithmetic reduced mod 2**32 (or IEEE-754 single for float ops).
"""

import struct

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.builder import KernelBuilder
from repro.gpu.interpreter import Interpreter, make_warp_context
from repro.gpu.isa import Cmp
from repro.gpu.memory import GlobalMemory, SharedMemory

u32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
MOD = 1 << 32


def run_one(build_fn):
    """Build a kernel with ``build_fn(b)`` returning the result register."""
    b = KernelBuilder("prop")
    result_reg = build_fn(b)
    kernel = b.build()
    ctx = make_warp_context(
        kernel=kernel,
        warp_id=0,
        cta_id=0,
        cta_dim=(32, 1),
        grid_dim=(1, 1),
        warp_in_cta=0,
        params=np.zeros(0, dtype=np.uint32),
        gmem=GlobalMemory(),
        shared=SharedMemory(4),
    )
    interp = Interpreter()
    while True:
        result = interp.execute(ctx)
        if result is None:
            break
        interp.apply(ctx, result)
    return ctx.registers[result_reg.index]


def signed(x: int) -> int:
    return x - MOD if x >= MOD // 2 else x


def f32(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits))[0]


@settings(max_examples=60, deadline=None)
@given(a=u32, b=u32)
def test_property_integer_ring_ops(a, b):
    lanes_add = run_one(lambda k: k.iadd(a, signed_imm(b, k)))
    assert int(lanes_add[0]) == (a + b) % MOD
    lanes_sub = run_one(lambda k: k.isub(a, signed_imm(b, k)))
    assert int(lanes_sub[0]) == (a - b) % MOD
    lanes_mul = run_one(lambda k: k.imul(a, signed_imm(b, k)))
    assert int(lanes_mul[0]) == (a * b) % MOD


def signed_imm(value: int, builder: KernelBuilder):
    """Immediates are signed-or-unsigned 32-bit; wrap via a register."""
    return builder.mov(value - MOD if value >= MOD // 2 else value)


@settings(max_examples=60, deadline=None)
@given(a=u32, b=u32)
def test_property_bitwise_ops(a, b):
    assert int(run_one(lambda k: k.and_(signed_imm(a, k), signed_imm(b, k)))[0]) == a & b
    assert int(run_one(lambda k: k.or_(signed_imm(a, k), signed_imm(b, k)))[0]) == a | b
    assert int(run_one(lambda k: k.xor(signed_imm(a, k), signed_imm(b, k)))[0]) == a ^ b


@settings(max_examples=60, deadline=None)
@given(a=u32, shift=st.integers(0, 63))
def test_property_shifts_mask_to_five_bits(a, shift):
    s = shift & 31
    assert int(run_one(lambda k: k.shl(signed_imm(a, k), shift))[0]) == (a << s) % MOD
    assert int(run_one(lambda k: k.shr(signed_imm(a, k), shift))[0]) == a >> s
    assert (
        int(run_one(lambda k: k.sar(signed_imm(a, k), shift))[0])
        == (signed(a) >> s) % MOD
    )


@settings(max_examples=60, deadline=None)
@given(a=u32, b=u32)
def test_property_signed_minmax_and_compare(a, b):
    sa, sb = signed(a), signed(b)
    assert signed(int(run_one(lambda k: k.imin(signed_imm(a, k), signed_imm(b, k)))[0])) == min(sa, sb)
    assert signed(int(run_one(lambda k: k.imax(signed_imm(a, k), signed_imm(b, k)))[0])) == max(sa, sb)
    sel = run_one(
        lambda k: k.sel(
            k.isetp(Cmp.LT, signed_imm(a, k), signed_imm(b, k)), 1, 0
        )
    )
    assert int(sel[0]) == (1 if sa < sb else 0)


@settings(max_examples=60, deadline=None)
@given(
    a=st.floats(allow_nan=False, allow_infinity=False, width=32),
    b=st.floats(allow_nan=False, allow_infinity=False, width=32),
)
def test_property_float_ops_match_numpy_single(a, b):
    with np.errstate(all="ignore"):  # overflow to inf is expected
        got = run_one(lambda k: k.fadd(a, b))
        expected = np.float32(a) + np.float32(b)
        assert got.view(np.float32)[0] == expected
        got = run_one(lambda k: k.fmul(a, b))
        expected = np.float32(a) * np.float32(b)
        assert got.view(np.float32)[0] == expected


@settings(max_examples=60, deadline=None)
@given(values=st.lists(u32, min_size=1, max_size=8))
def test_property_mov_chain_preserves_last_value(values):
    def build(k):
        r = k.mov(signed_imm(values[0], k))
        for v in values[1:]:
            k.mov(signed_imm(v, k), dst=r)
        return r

    assert int(run_one(build)[0]) == values[-1]

"""Cross-warp batched dispatch parity: three models, one answer.

The batched fast path stacks same-opcode groups of warps into
``(n_warps, 32)`` arrays and executes them with one numpy dispatch
(:func:`repro.gpu.interpreter.compute_vector_batch` and friends).  This
suite pins that path against the two slower models:

* **row parity** (hypothesis): each row of a batched result must equal
  the per-warp :func:`compute_vector` result, which in turn must equal
  the lane-by-lane :mod:`repro.gpu.scalar` reference — integer
  wraparound, shift masking, and IEEE specials included;
* **launch parity**: handwritten kernels engineered to stress the
  gather path — divergent guard masks that differ *across the warps of
  one group*, loops whose trip counts retire group members at
  different times, and the single-warp degenerate launch where the
  gather gate must stand down — run batched-on vs batched-off through
  the full comparer of :mod:`repro.verify.fastpath`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import scalar as ref
from repro.gpu.batch import BATCH_STATS
from repro.gpu.builder import KernelBuilder
from repro.gpu.config import GPUConfig
from repro.gpu.interpreter import (
    compare_vector,
    compare_vector_batch,
    compute_vector,
    compute_vector_batch,
)
from repro.gpu.isa import Cmp, Op
from repro.gpu.launch import LaunchSpec, run_kernel
from repro.gpu.memory import GlobalMemory
from repro.verify.fastpath import verify_launch_batched

WARP = 32

#: Same semantic fault lines as tests/test_vector_parity.py: sign
#: boundaries, shift amounts at and past 31, IEEE zeros/inf/NaN.
EDGE_BITS = (
    0x0000_0000,
    0x0000_0001,
    0x0000_001F,
    0x0000_0020,
    0x3F80_0000,
    0x7F7F_FFFF,
    0x7F80_0000,
    0x7FC0_0000,
    0x7FFF_FFFF,
    0x8000_0000,
    0x8000_0001,
    0xBF80_0000,
    0xFF80_0000,
    0xFFC0_0000,
    0xFFFF_FFFF,
)

u32_bits = st.one_of(
    st.sampled_from(EDGE_BITS),
    st.integers(min_value=0, max_value=0xFFFF_FFFF),
)


@st.composite
def stacked_groups(draw, rows: int = 2):
    """``rows`` stacked (n_warps, WARP) uint32 operand matrices."""
    n = draw(st.integers(min_value=1, max_value=4))
    mats = []
    for _ in range(rows):
        bits = draw(
            st.lists(u32_bits, min_size=n * WARP, max_size=n * WARP)
        )
        mats.append(np.array(bits, dtype=np.uint32).reshape(n, WARP))
    return tuple(mats)


INT_BINOPS = (
    Op.IADD,
    Op.ISUB,
    Op.IMUL,
    Op.IMIN,
    Op.IMAX,
    Op.AND,
    Op.OR,
    Op.XOR,
    Op.SHL,
    Op.SHR,
    Op.SAR,
)
FLOAT_BINOPS = (Op.FADD, Op.FSUB, Op.FMUL, Op.FMIN, Op.FMAX, Op.FDIV)


def _is_nan_bits(bits: int) -> bool:
    return (bits & 0x7F80_0000) == 0x7F80_0000 and (bits & 0x007F_FFFF) != 0


def _assert_rows_match(op, batched, per_warp, *, float_op=False):
    """Batched row == per-warp vector row, bit for bit (NaN ~ NaN)."""
    __tracebackhide__ = True
    assert batched.shape == per_warp.shape
    for r in range(batched.shape[0]):
        for lane, (g, w) in enumerate(zip(batched[r], per_warp[r])):
            g, w = int(g), int(w)
            if g == w:
                continue
            if float_op and _is_nan_bits(g) and _is_nan_bits(w):
                continue
            pytest.fail(
                f"{op}: row {r} lane {lane}: batched {g:#010x} "
                f"!= per-warp {w:#010x}"
            )


# ----------------------------------------------------------------------
# Row parity: batched == per-warp vectorized == scalar
# ----------------------------------------------------------------------
@pytest.mark.parametrize("op", INT_BINOPS, ids=lambda op: op.name)
@settings(max_examples=40, deadline=None)
@given(mats=stacked_groups())
def test_int_binop_batch_rows(op, mats):
    a, b = mats
    batched = compute_vector_batch(op, a, b)
    rows = np.stack([compute_vector(op, a[r], b[r]) for r in range(len(a))])
    _assert_rows_match(op, batched, rows)
    # One spot lane per row against the scalar reference closes the
    # triangle: batched == vectorized == scalar.
    for r in range(len(a)):
        want = ref.scalar_compute(op, int(a[r, 0]), int(b[r, 0]))
        assert int(batched[r, 0]) == want


@pytest.mark.parametrize("op", FLOAT_BINOPS, ids=lambda op: op.name)
@settings(max_examples=40, deadline=None)
@given(mats=stacked_groups())
def test_float_binop_batch_rows(op, mats):
    a, b = mats
    batched = compute_vector_batch(op, a, b)
    rows = np.stack([compute_vector(op, a[r], b[r]) for r in range(len(a))])
    _assert_rows_match(op, batched, rows, float_op=True)


@pytest.mark.parametrize("op", (Op.IMAD, Op.FFMA), ids=lambda op: op.name)
@settings(max_examples=40, deadline=None)
@given(mats=stacked_groups(rows=3))
def test_ternary_batch_rows(op, mats):
    a, b, c = mats
    batched = compute_vector_batch(op, a, b, c)
    rows = np.stack(
        [compute_vector(op, a[r], b[r], c[r]) for r in range(len(a))]
    )
    _assert_rows_match(op, batched, rows, float_op=op is Op.FFMA)


@pytest.mark.parametrize("as_float", (False, True), ids=("int", "float"))
@pytest.mark.parametrize("cmp", list(Cmp), ids=lambda c: c.name)
@settings(max_examples=25, deadline=None)
@given(mats=stacked_groups())
def test_compare_batch_rows(cmp, as_float, mats):
    a, b = mats
    batched = compare_vector_batch(cmp, a, b, as_float=as_float)
    for r in range(len(a)):
        row = compare_vector(cmp, a[r], b[r], as_float=as_float)
        assert batched[r].tolist() == row.tolist(), (cmp, r)
        want = ref.scalar_compare(
            cmp, int(a[r, 0]), int(b[r, 0]), as_float=as_float
        )
        assert bool(batched[r, 0]) == want


def test_single_row_degenerate_group():
    """An (1, 32) stack is a legal group and matches the unstacked call."""
    rng = np.random.default_rng(7)
    a = rng.integers(0, 2**32, (1, WARP), dtype=np.uint32)
    b = rng.integers(0, 2**32, (1, WARP), dtype=np.uint32)
    batched = compute_vector_batch(Op.IMUL, a, b)
    assert np.array_equal(batched[0], compute_vector(Op.IMUL, a[0], b[0]))


def test_batch_rejects_unstacked_operands():
    flat = np.zeros(WARP, dtype=np.uint32)
    with pytest.raises(ValueError):
        compute_vector_batch(Op.IADD, flat, flat)
    with pytest.raises(ValueError):
        compare_vector_batch(Cmp.LT, flat, flat)


# ----------------------------------------------------------------------
# Launch parity: gather-stressing kernels, batched on vs off
# ----------------------------------------------------------------------
def _out_launch(kernel, cta_threads: int, out_words: int = 256):
    """LaunchSpec with one zeroed ``out`` buffer at the heap base."""

    def factory():
        gmem = GlobalMemory()
        base = gmem.alloc(out_words, "out")
        assert base == _OUT_BASE
        return gmem

    return LaunchSpec(
        kernel=kernel,
        grid_dim=(1, 1),
        cta_dim=(cta_threads, 1),
        params=[_OUT_BASE],
        gmem_factory=factory,
        buffers={"out": _OUT_BASE},
    )


_OUT_BASE = 0x1000  # GlobalMemory's default heap base: the first alloc


def _divergent_mask_launch():
    """Four warps whose guard masks all differ inside one group.

    ``tid % 97 < cut`` activates a different lane subset per warp, so a
    gathered group replays with four distinct exec masks; the guarded
    body is a fusible straight-line run (IMAD/IADD/XOR) long enough to
    form a region.
    """
    b = KernelBuilder("divergent-masks", params=("out",))
    tid = b.global_tid_x()
    out = b.param("out")
    cut = b.iadd(b.imul(tid, 0), 48)  # uniform 48 via registers
    p = b.isetp(Cmp.LT, b.and_(tid, 63), cut)
    with b.if_(p):
        v = b.imad(tid, 2654435761, 12345)
        v = b.xor(v, b.iadd(tid, 7))
        v = b.imad(v, 3, 1)
        b.stg(b.imad(tid, 4, out), v)
    return _out_launch(b.build(), 128)


def _staggered_retire_launch():
    """Loop trip counts keyed on the warp id: members retire early.

    Warp ``w`` iterates ``2 + 3*w`` times, so a gathered group loses
    members round by round — the remaining warps must keep batching (or
    fall back to per-warp issue) without any timing or value drift.
    """
    b = KernelBuilder("staggered-retire", params=("out",))
    tid = b.global_tid_x()
    out = b.param("out")
    warp = b.shr(tid, 5)
    trips = b.imad(warp, 3, 2)
    acc = b.mov(1)
    with b.for_range(0, trips) as i:
        acc = b.imad(acc, 5, b.xor(i, tid), dst=acc)
        acc = b.iadd(acc, 3, dst=acc)
    b.stg(b.imad(tid, 4, out), acc)
    return _out_launch(b.build(), 128)


def _single_warp_launch():
    """One resident warp: the gather gate must stand down entirely."""
    b = KernelBuilder("lone-warp", params=("out",))
    tid = b.global_tid_x()
    out = b.param("out")
    v = b.imad(tid, 1664525, 1013904223)
    v = b.xor(v, b.shr(v, 13))
    v = b.imad(v, 9, 5)
    b.stg(b.imad(tid, 4, out), v)
    return _out_launch(b.build(), 32)


def test_divergent_masks_across_group_members():
    before = BATCH_STATS.groups
    outcome = verify_launch_batched(_divergent_mask_launch())
    assert outcome.cycles > 0
    assert outcome.fields_compared > 0
    # The parity claim is vacuous if the gate never fired.
    assert BATCH_STATS.groups > before


def test_partially_retired_batches():
    before = BATCH_STATS.groups
    outcome = verify_launch_batched(_staggered_retire_launch())
    assert outcome.cycles > 0
    assert BATCH_STATS.groups > before


def test_single_warp_launch_never_batches():
    before = BATCH_STATS.groups
    outcome = verify_launch_batched(_single_warp_launch())
    assert outcome.cycles > 0
    assert BATCH_STATS.groups == before


def test_divergent_masks_with_sampling():
    """Interval timelines must match row-by-row under batching too."""
    outcome = verify_launch_batched(
        _divergent_mask_launch(), config=GPUConfig(sample_interval=32)
    )
    assert outcome.cycles > 0


def test_wake_hint_with_queued_groups_fastpath_matrix():
    """Cycle skipping must not sleep past a warp parked in a batch queue.

    The staggered-retire kernel keeps warps parked in pending opcode
    groups while their group-mates loop; with ``fast_path`` on, the
    SM's wake hint has to count those queued warps as wakeable or the
    event-driven skip would overshoot their replay cycle.  All four
    ``fast_path`` × ``batched`` combinations must agree on cycles and
    on every output word.
    """
    launch = _staggered_retire_launch()
    results = {}
    for fast in (True, False):
        for batched in (True, False):
            gmem = launch.fresh_memory()
            res = run_kernel(
                launch.kernel,
                launch.grid_dim,
                launch.cta_dim,
                launch.params,
                gmem,
                config=GPUConfig(fast_path=fast, batched=batched),
            )
            results[(fast, batched)] = (res.cycles, gmem.snapshot())

    ref_cycles, ref_mem = results[(True, True)]
    assert ref_cycles > 0
    for combo, (cycles, mem) in results.items():
        assert cycles == ref_cycles, combo
        for name in ref_mem:
            assert np.array_equal(mem[name], ref_mem[name]), (combo, name)

"""Tests for the functional (timing-free) runner."""

import numpy as np
import pytest

from repro.core.policy import WarpedCompressionPolicy
from repro.gpu.builder import KernelBuilder
from repro.gpu.functional import FunctionalRunner, run_functional
from repro.gpu.isa import Cmp
from repro.gpu.memory import GlobalMemory


def barrier_kernel():
    """Two warps exchange data through shared memory across a barrier."""
    b = KernelBuilder("exchange", params=("out",), shared_bytes=256)
    tid = b.tid_x()
    b.sts(b.imul(tid, 4), tid)
    b.bar()
    partner = b.xor(tid, 32)  # lane i of warp 0 <-> lane i of warp 1
    v = b.lds(b.imul(partner, 4))
    b.stg(b.imad(tid, 4, b.param("out")), v)
    return b.build()


class TestBarrierSemantics:
    def test_cross_warp_exchange(self):
        kernel = barrier_kernel()
        gm = GlobalMemory()
        out = gm.alloc(64, "out")
        run_functional(kernel, (1, 1), (64, 1), [out], gm)
        got = gm.read_array(out, 64)
        expected = np.arange(64) ^ 32
        np.testing.assert_array_equal(got, expected)

    def test_single_warp_barrier_is_noop(self):
        b = KernelBuilder("solo", shared_bytes=4)
        b.bar()
        b.mov(1)
        run_functional(b.build(), (1, 1), (32, 1), [], GlobalMemory())


class TestPolicyThreading:
    def test_policy_instance_accepted(self):
        b = KernelBuilder("k")
        b.mov(5)
        policy = WarpedCompressionPolicy()
        runner = FunctionalRunner(policy=policy)
        stats = runner.run(b.build(), (1, 1), (32, 1), [], GlobalMemory())
        assert stats.policy == "warped-compression"
        assert policy.codec.compressions > 0

    def test_policy_name_accepted(self):
        b = KernelBuilder("k")
        b.mov(5)
        stats = run_functional(
            b.build(), (1, 1), (32, 1), [], GlobalMemory(), policy="baseline"
        )
        assert stats.policy == "uncompressed"
        # Baseline stores everything across eight banks.
        assert stats.value.overall_compression_ratio() == 1.0


class TestStatsCollection:
    def test_occupancy_tracks_compressed_registers(self):
        b = KernelBuilder("k")
        b.mov(5)  # compressible
        b.mov(6)
        stats = run_functional(b.build(), (1, 1), (32, 1), [], GlobalMemory())
        frac = stats.value.compressed_register_fraction(divergent=False)
        assert frac is not None and 0.0 <= frac <= 1.0

    def test_mov_bookkeeping_matches_timing_model(self):
        b = KernelBuilder("k")
        tid = b.tid_x()
        acc = b.mov(5)
        with b.if_(b.isetp(Cmp.LT, tid, 3)):
            b.iadd(acc, 1, dst=acc)
        kernel = b.build()
        stats = run_functional(kernel, (1, 1), (32, 1), [], GlobalMemory())
        assert stats.value.movs_injected == 1

    def test_collect_bdi_flag(self):
        b = KernelBuilder("k")
        b.mov(5)
        stats = run_functional(
            b.build(), (1, 1), (32, 1), [], GlobalMemory(), collect_bdi=True
        )
        assert stats.value.bdi_fractions()

    def test_multiple_ctas_accumulate(self):
        b = KernelBuilder("k")
        b.mov(5)
        one = run_functional(b.build(), (1, 1), (32, 1), [], GlobalMemory())
        four = run_functional(b.build(), (4, 1), (32, 1), [], GlobalMemory())
        assert four.value.instructions == 4 * one.value.instructions

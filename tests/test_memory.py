"""Unit tests for the global and shared memory models."""

import numpy as np
import pytest

from repro.gpu.memory import GlobalMemory, MemoryError_, SharedMemory


def full_mask(n=32):
    return np.ones(n, dtype=bool)


class TestGlobalMemory:
    def test_alloc_returns_distinct_aligned_bases(self):
        gm = GlobalMemory()
        a = gm.alloc(10, "a")
        b = gm.alloc(10, "b")
        assert a != b
        assert a % 4 == 0 and b % 4 == 0
        assert b >= a + 40

    def test_alloc_array_int(self):
        gm = GlobalMemory()
        base = gm.alloc_array(np.array([1, 2, 3]))
        np.testing.assert_array_equal(gm.read_array(base, 3), [1, 2, 3])

    def test_alloc_array_float_bit_pattern(self):
        gm = GlobalMemory()
        base = gm.alloc_array(np.array([1.5, -2.0], dtype=np.float32))
        np.testing.assert_array_equal(
            gm.read_array(base, 2, np.float32), [1.5, -2.0]
        )

    def test_alloc_array_negative_ints_wrap(self):
        gm = GlobalMemory()
        base = gm.alloc_array(np.array([-1, -2]))
        got = gm.read_array(base, 2).view(np.int32)
        np.testing.assert_array_equal(got, [-1, -2])

    def test_zero_alloc_rejected(self):
        with pytest.raises(ValueError):
            GlobalMemory().alloc(0)

    def test_warp_gather_scatter(self):
        gm = GlobalMemory()
        base = gm.alloc_array(np.arange(64))
        addrs = (base + 4 * np.arange(32)).astype(np.uint32)
        got = gm.load_warp(addrs, full_mask())
        np.testing.assert_array_equal(got, np.arange(32))
        gm.store_warp(addrs, got * 2, full_mask())
        np.testing.assert_array_equal(gm.read_array(base, 32), np.arange(32) * 2)

    def test_masked_lanes_read_zero_and_do_not_store(self):
        gm = GlobalMemory()
        base = gm.alloc_array(np.arange(32))
        addrs = (base + 4 * np.arange(32)).astype(np.uint32)
        mask = np.arange(32) < 4
        got = gm.load_warp(addrs, mask)
        assert (got[4:] == 0).all()
        gm.store_warp(addrs, np.full(32, 99, dtype=np.uint32), mask)
        data = gm.read_array(base, 32)
        assert (data[:4] == 99).all() and (data[4:] == np.arange(4, 32)).all()

    def test_all_inactive_is_noop(self):
        gm = GlobalMemory()
        addrs = np.zeros(32, dtype=np.uint32)
        assert (gm.load_warp(addrs, np.zeros(32, bool)) == 0).all()
        gm.store_warp(addrs, addrs, np.zeros(32, bool))  # must not raise

    def test_unmapped_access_raises(self):
        gm = GlobalMemory()
        gm.alloc(4)
        with pytest.raises(MemoryError_):
            gm.load_warp(np.full(32, 4, dtype=np.uint32), full_mask())

    def test_out_of_bounds_past_buffer_raises(self):
        gm = GlobalMemory()
        base = gm.alloc(2)
        bad = np.full(32, base + 8, dtype=np.uint32)
        with pytest.raises(MemoryError_):
            gm.load_warp(bad, full_mask())

    def test_misaligned_raises(self):
        gm = GlobalMemory()
        base = gm.alloc(8)
        addrs = np.full(32, base + 2, dtype=np.uint32)
        with pytest.raises(MemoryError_):
            gm.load_warp(addrs, full_mask())
        with pytest.raises(MemoryError_):
            gm.store_warp(addrs, addrs, full_mask())

    def test_cross_buffer_gather_falls_back_per_lane(self):
        gm = GlobalMemory()
        a = gm.alloc_array(np.array([111] * 4))
        b = gm.alloc_array(np.array([222] * 4))
        addrs = np.array([a, b] * 16, dtype=np.uint32)
        got = gm.load_warp(addrs, full_mask())
        np.testing.assert_array_equal(got[:2], [111, 222])

    def test_cross_buffer_scatter(self):
        gm = GlobalMemory()
        a = gm.alloc(4)
        b = gm.alloc(4)
        addrs = np.array([a, b] + [a] * 30, dtype=np.uint32)
        gm.store_warp(addrs, np.full(32, 7, dtype=np.uint32), full_mask())
        assert gm.read_array(a, 1)[0] == 7
        assert gm.read_array(b, 1)[0] == 7

    def test_read_array_bounds(self):
        gm = GlobalMemory()
        base = gm.alloc(4)
        with pytest.raises(MemoryError_):
            gm.read_array(base, 10)


class TestSharedMemory:
    def test_roundtrip(self):
        sm = SharedMemory(128)
        addrs = (4 * np.arange(32)).astype(np.uint32)
        sm.store_warp(addrs, np.arange(32).astype(np.uint32), full_mask())
        np.testing.assert_array_equal(
            sm.load_warp(addrs, full_mask()), np.arange(32)
        )

    def test_bounds_checked(self):
        sm = SharedMemory(16)
        bad = np.full(32, 16, dtype=np.uint32)
        with pytest.raises(MemoryError_):
            sm.load_warp(bad, full_mask())
        with pytest.raises(MemoryError_):
            sm.store_warp(bad, bad, full_mask())

    def test_misaligned_rejected(self):
        sm = SharedMemory(64)
        with pytest.raises(MemoryError_):
            sm.load_warp(np.full(32, 2, dtype=np.uint32), full_mask())

    def test_word_aligned_size_required(self):
        with pytest.raises(ValueError):
            SharedMemory(10)

    def test_zero_size_allowed(self):
        # Kernels without shared memory still construct a scratchpad.
        sm = SharedMemory(0)
        assert sm.nbytes == 0

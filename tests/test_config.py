"""Tests for GPU configuration validation and derived geometry."""

import pytest

from repro.gpu.config import GPUConfig


class TestDefaults:
    def test_table2_defaults(self):
        cfg = GPUConfig()
        assert cfg.clock_ghz == 1.4
        assert cfg.warp_size == 32
        assert cfg.max_warps_per_sm == 48
        assert cfg.max_threads_per_sm == 1536
        assert cfg.register_file_bytes == 128 * 1024
        assert cfg.num_banks == 32
        assert cfg.entries_per_bank == 256
        assert cfg.num_compressors == 2
        assert cfg.num_decompressors == 4
        assert cfg.compression_latency == 2
        assert cfg.decompression_latency == 1
        assert cfg.bank_wakeup_latency == 10

    def test_derived_geometry(self):
        cfg = GPUConfig()
        assert cfg.banks_per_cluster == 8
        assert cfg.num_clusters == 4
        assert cfg.warp_register_slots == 1024
        assert cfg.thread_registers_per_sm == 32768  # Table 2


class TestValidation:
    def test_inconsistent_geometry_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            GPUConfig(num_banks=16)

    def test_bad_scheduler_rejected(self):
        with pytest.raises(ValueError, match="scheduler_policy"):
            GPUConfig(scheduler_policy="random")

    def test_bank_cluster_multiple_required(self):
        with pytest.raises(ValueError):
            GPUConfig(
                num_banks=12,
                register_file_bytes=12 * 16 * 256,
            )

    def test_with_overrides(self):
        cfg = GPUConfig().with_overrides(compression_latency=8)
        assert cfg.compression_latency == 8
        assert GPUConfig().compression_latency == 2


class TestOccupancy:
    def test_zero_register_kernel_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig().max_resident_warps(0, 1)

    def test_thread_limit_binds(self):
        cfg = GPUConfig(max_threads_per_sm=256, max_warps_per_sm=48)
        assert cfg.max_resident_warps(1, cta_warps=1) == 8

    def test_whole_cta_rounding(self):
        cfg = GPUConfig()
        # 100 regs -> 10 warps; CTAs of 4 warps -> 8 resident.
        assert cfg.max_resident_warps(100, cta_warps=4) == 8

"""Unit tests for the compression-range indicator vector."""

import pytest

from repro.core.codec import CompressionMode
from repro.core.indicator import CompressionRangeIndicator


class TestIndicator:
    def test_defaults_to_uncompressed(self):
        ind = CompressionRangeIndicator(16)
        assert all(
            ind.get(i) is CompressionMode.UNCOMPRESSED for i in range(16)
        )
        assert ind.compressed_count() == 0

    def test_set_get(self):
        ind = CompressionRangeIndicator(8)
        ind.set(3, CompressionMode.B4D1)
        assert ind.get(3) is CompressionMode.B4D1
        assert ind.banks(3) == 3
        assert ind.compressed_count() == 1

    def test_reset(self):
        ind = CompressionRangeIndicator(8)
        ind.set(0, CompressionMode.B4D0)
        ind.reset(0)
        assert ind.get(0) is CompressionMode.UNCOMPRESSED

    def test_storage_overhead_is_two_bits_per_slot(self):
        ind = CompressionRangeIndicator(1024)
        assert ind.storage_bits == 2048
        assert len(ind) == 1024

    def test_bounds_checked(self):
        ind = CompressionRangeIndicator(4)
        with pytest.raises(IndexError):
            ind.get(4)
        with pytest.raises(IndexError):
            ind.set(-1, CompressionMode.B4D0)

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            CompressionRangeIndicator(0)

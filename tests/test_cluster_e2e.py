"""End-to-end cluster coverage: the ISSUE's acceptance scenarios.

Workers run as threads in this process, so ``SIM_COUNTER`` observes
every simulation the fleet performs — which is what turns "no duplicate
work" from a hope into an assertion.
"""

import time

from cluster_helpers import EmbeddedCoordinator, WorkerThread
from repro.cluster.session import ClusterSession
from repro.sim import SIM_COUNTER, Session, SimRequest
from repro.sim.cache import fingerprint


def _grid(n_policies: int = 4) -> list[SimRequest]:
    """The acceptance grid: 12 functional (kernel, policy) pairs."""
    policies = ["baseline", "warped", "warped-buffered", "per-thread"]
    return [
        SimRequest(
            benchmark=bench, policy=policy, timing=False, scale="small"
        )
        for bench in ("lib", "pathfinder", "nw")
        for policy in policies[:n_policies]
    ]


def _wait(predicate, timeout: float = 60.0, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestFleetMatchesSingleHost:
    def test_two_worker_grid_is_byte_identical_to_local_run(self, tmp_path):
        grid = _grid()
        # Reference: a completely ordinary single-host session.
        local = Session(scale="small", cache_dir=tmp_path / "ref")
        reference = {
            req: res.to_dict() for req, res in local.run_many(grid).items()
        }

        with EmbeddedCoordinator(
            cache_dir=str(tmp_path / "shared"), shard_size=3
        ) as coord:
            with WorkerThread(
                coord, cache_dir=str(tmp_path / "wa"), name="a"
            ), WorkerThread(
                coord, cache_dir=str(tmp_path / "wb"), name="b"
            ):
                session = ClusterSession(
                    coord.host,
                    coord.port,
                    cache_dir=str(tmp_path / "driver"),
                    scale="small",
                    poll_interval=0.05,
                )
                before = SIM_COUNTER.value
                results = session.run_many(grid)
                # The driver did not simulate anything itself...
                assert session.simulated == 0
                assert session.dispatched == len(grid)
                # ...the fleet simulated each distinct key exactly once...
                assert SIM_COUNTER.value - before == len(grid)
                assert coord.app.state.put_dup == 0
                # ...and the tables are byte-identical to the local run.
                for req in grid:
                    assert results[req].to_dict() == reference[req]

        # Both workers actually participated (shards spread across them).
        workers = coord.app.state.workers
        assert len(workers) == 2
        assert all(w.stats.get("shards", 0) > 0 for w in workers.values())

    def test_warm_fleet_rerun_simulates_nothing(self, tmp_path):
        grid = _grid(2)
        with EmbeddedCoordinator(cache_dir=str(tmp_path / "shared")) as coord:
            with WorkerThread(coord, cache_dir=str(tmp_path / "w")):
                first = ClusterSession(
                    coord.host,
                    coord.port,
                    cache_dir=str(tmp_path / "d1"),
                    scale="small",
                    poll_interval=0.05,
                )
                first.run_many(grid)
                before = SIM_COUNTER.value
                # A different driver host, same fleet: pure cache fills.
                second = ClusterSession(
                    coord.host,
                    coord.port,
                    cache_dir=str(tmp_path / "d2"),
                    scale="small",
                    poll_interval=0.05,
                )
                second.run_many(grid)
                assert SIM_COUNTER.value == before
                assert second.dispatched == len(grid)  # probed, all cached

    def test_fleet_down_falls_back_to_local_execution(self, tmp_path):
        grid = _grid(1)
        session = ClusterSession(
            "127.0.0.1",
            1,  # nothing listens on port 1
            cache_dir=str(tmp_path / "d"),
            scale="small",
        )
        results = session.run_many(grid)
        assert session.fleet_down is True
        assert len(results) == len(grid)
        assert session.simulated == len(grid)


class TestResume:
    def test_coordinator_restart_resumes_with_zero_duplicates(self, tmp_path):
        grid = _grid()
        payloads = [r.to_payload() for r in grid]
        shared = str(tmp_path / "shared")

        # Phase 1: a worker completes part of the grid, then the
        # coordinator dies mid-sweep.
        with EmbeddedCoordinator(cache_dir=shared, shard_size=2) as coord:
            client = coord.client()
            sweep = client.submit_sweep(payloads)
            sweep_id = sweep["sweep_id"]
            with WorkerThread(coord, cache_dir=str(tmp_path / "w1")):
                assert _wait(
                    lambda: client.sweep(sweep_id)["done"] >= 4
                )
        interim = SIM_COUNTER.value

        # Phase 2: a new coordinator on the same cache directory picks
        # the journal back up; resubmission attaches idempotently.
        with EmbeddedCoordinator(cache_dir=shared, shard_size=2) as reborn:
            client = reborn.client()
            resumed = client.submit_sweep(payloads)
            assert resumed["sweep_id"] == sweep_id
            assert resumed["done"] >= 4  # recovered from the cache
            with WorkerThread(reborn, cache_dir=str(tmp_path / "w2")):
                assert _wait(
                    lambda: client.sweep(sweep_id)["complete"]
                )
            # Every simulation after the restart was for a new key:
            # zero duplicates, proven by the process-wide counter.
            done_after_crash = len(grid) - resumed["done"]
            assert SIM_COUNTER.value - interim == done_after_crash
            assert reborn.app.state.put_dup == 0


class TestDeadWorkerReassignment:
    def test_silent_worker_is_reaped_and_its_shard_finished(self, tmp_path):
        grid = _grid(2)
        payloads = [r.to_payload() for r in grid]
        with EmbeddedCoordinator(
            cache_dir=str(tmp_path / "shared"),
            shard_size=2,
            heartbeat_timeout=0.6,
            heartbeat_interval=0.1,
        ) as coord:
            client = coord.client()
            sweep = client.submit_sweep(payloads)
            # A "worker" that leases a shard and then goes silent.
            from repro.sim.cache import code_version

            ghost = client.register(
                {"name": "ghost", "code_version": code_version()}
            )["worker_id"]
            lease = client.lease(ghost)
            assert lease["shard"] is not None
            hostage_keys = {u["key"] for u in lease["shard"]["units"]}

            # A real worker drains the rest, then inherits the hostage
            # shard once the reaper declares the ghost dead.
            with WorkerThread(coord, cache_dir=str(tmp_path / "w")):
                assert _wait(
                    lambda: client.sweep(sweep["sweep_id"])["complete"]
                )
            state = coord.app.state
            assert state.workers_dead == 1
            assert state.shards_reassigned >= 1
            assert not state.workers[ghost].alive
            assert hostage_keys <= state.done
            assert state.put_dup == 0

    def test_reaped_worker_must_reregister(self, tmp_path):
        from repro.cluster.client import UnknownWorker
        from repro.sim.cache import code_version

        with EmbeddedCoordinator(
            cache_dir=str(tmp_path / "shared"),
            heartbeat_timeout=0.3,
        ) as coord:
            client = coord.client()
            worker = client.register(
                {"name": "mori", "code_version": code_version()}
            )["worker_id"]
            assert _wait(
                lambda: not coord.app.state.workers[worker].alive,
                timeout=10.0,
            )
            try:
                client.heartbeat(worker, {})
            except UnknownWorker:
                pass
            else:
                raise AssertionError("dead worker heartbeat was accepted")

    def test_version_mismatched_worker_rejected(self, tmp_path):
        from repro.cluster.client import ClusterError

        with EmbeddedCoordinator(cache_dir=str(tmp_path / "shared")) as coord:
            try:
                coord.client().register(
                    {"name": "old", "code_version": "stale"}
                )
            except ClusterError as exc:
                assert exc.status == 409
            else:
                raise AssertionError("version mismatch was accepted")


class TestDriverIntegration:
    def test_cluster_session_executes_replay_requests_locally(self, tmp_path):
        # Trace-capture/replay artifacts never travel the cache tier;
        # the cluster session must pin them to local execution.
        request = SimRequest(
            benchmark="lib", policy="warped", timing=False,
            scale="small", replay=True,
        )
        assert ClusterSession._remote_eligible(request) is False
        with EmbeddedCoordinator(cache_dir=str(tmp_path / "shared")) as coord:
            session = ClusterSession(
                coord.host,
                coord.port,
                cache_dir=str(tmp_path / "d"),
                scale="small",
            )
            result = session.run(request)
            assert result.trace_path is not None
            assert session.dispatched == 0  # nothing went to the fleet
            assert coord.app.state.units == {}

    def test_runner_cluster_flag_renders_identically(self, tmp_path, capsys):
        """`warped-compression fig09 --cluster ...` == the local run."""
        from repro.harness.runner import main as runner_main

        args = ["fig09", "--scale", "small", "--quiet",
                "--benchmarks", "lib", "pathfinder"]
        local_out = tmp_path / "local.txt"
        assert runner_main(
            [*args, "--cache-dir", str(tmp_path / "ref"),
             "--out", str(local_out)]
        ) == 0

        with EmbeddedCoordinator(cache_dir=str(tmp_path / "shared")) as coord:
            with WorkerThread(coord, cache_dir=str(tmp_path / "w")):
                fleet_out = tmp_path / "fleet.txt"
                assert runner_main(
                    [*args,
                     "--cluster", f"{coord.host}:{coord.port}",
                     "--cache-dir", str(tmp_path / "driver"),
                     "--out", str(fleet_out)]
                ) == 0
        assert fleet_out.read_bytes() == local_out.read_bytes()

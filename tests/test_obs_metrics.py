"""Tests for the repro.obs metric registry and instruments."""

import time

import pytest

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)


class TestInstruments:
    def test_counter(self):
        c = Counter("events")
        c.inc()
        c.add(4)
        assert c.read() == 5

    def test_gauge(self):
        g = Gauge("depth")
        g.set(3.5)
        g.add(1)
        assert g.read() == 4.5

    def test_histogram_buckets(self):
        h = Histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 0.9, 5.0, 100.0):
            h.observe(v)
        assert h.counts == [2, 1, 1]  # <=1, <=10, overflow
        assert h.total == 4
        assert h.mean == pytest.approx((0.5 + 0.9 + 5.0 + 100.0) / 4)

    def test_histogram_bounds_sorted(self):
        h = Histogram("x", bounds=(10.0, 1.0))
        assert h.bounds == (1.0, 10.0)


class TestRegistry:
    def test_registration_and_read(self):
        reg = MetricRegistry()
        c = reg.counter("a.count")
        g = reg.gauge("a.level")
        c.add(3)
        g.set(7)
        assert reg.read("a.count") == 3
        assert reg.read("a.level") == 7
        assert reg.names() == ["a.count", "a.level"]
        assert reg.kind("a.count") == "delta"
        assert reg.kind("a.level") == "gauge"
        assert reg.read_all() == {"a.count": 3, "a.level": 7}

    def test_duplicate_name_rejected(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_probe_pull_based(self):
        reg = MetricRegistry()
        state = {"v": 0}
        calls = []

        def read():
            calls.append(1)
            return state["v"]

        reg.probe("probe.v", read, kind="delta")
        assert not calls  # registration never evaluates
        state["v"] = 42
        assert reg.read("probe.v") == 42
        assert len(calls) == 1

    def test_probe_kind_validated(self):
        with pytest.raises(ValueError, match="gauge or delta"):
            MetricRegistry().probe("x", lambda: 0, kind="rate")


class TestDisabledRegistry:
    def test_hands_out_shared_null_singletons(self):
        reg = MetricRegistry(enabled=False)
        assert reg.counter("a") is NULL_COUNTER
        assert reg.gauge("b") is NULL_GAUGE
        assert reg.histogram("c") is NULL_HISTOGRAM
        assert len(reg) == 0

    def test_null_instruments_are_noops(self):
        NULL_COUNTER.inc()
        NULL_COUNTER.add(5)
        NULL_GAUGE.set(3)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.read() == 0.0
        assert NULL_GAUGE.read() == 0.0

    def test_probes_dropped(self):
        reg = MetricRegistry(enabled=False)
        reg.probe("x", lambda: 1 / 0)  # must never be evaluated
        assert "x" not in reg
        assert reg.names() == []

    def test_null_registry_singleton_disabled(self):
        assert not NULL_REGISTRY.enabled
        assert NULL_REGISTRY.counter("anything") is NULL_COUNTER


class TestOverhead:
    def test_null_instrument_overhead_is_small(self):
        """Perf smoke: disabled instruments must stay trivially cheap.

        The budget is deliberately generous (shared CI machines) — this
        guards against the null path accidentally growing real work, not
        against ordinary jitter.
        """
        c = MetricRegistry(enabled=False).counter("hot.path")
        n = 200_000
        start = time.perf_counter()
        for _ in range(n):
            c.inc()
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0, f"{n} null increments took {elapsed:.3f}s"

"""Tests for Timeline, the interval sampler, and timeline reductions."""

import json

import pytest

from repro.analysis.timeline import (
    moving_average,
    peak,
    rates,
    sparkline,
    timeline_summary,
)
from repro.obs.metrics import MetricRegistry
from repro.obs.sampler import IntervalSampler
from repro.obs.timeline import Timeline


def make_timeline():
    tl = Timeline(interval=10)
    tl.kinds = {"issued": "delta", "depth": "gauge"}
    tl.append(10, {"issued": 5.0, "depth": 2.0})
    tl.append(20, {"issued": 7.0, "depth": 4.0})
    tl.append(25, {"issued": 1.0, "depth": 6.0})  # trailing partial row
    return tl


class TestTimeline:
    def test_append_and_get(self):
        tl = make_timeline()
        assert len(tl) == 3
        assert tl.get("issued") == [5.0, 7.0, 1.0]
        assert tl.cycles == [10, 20, 25]

    def test_roundtrip_lossless(self):
        tl = make_timeline()
        wire = json.loads(json.dumps(tl.to_dict()))
        restored = Timeline.from_dict(wire)
        assert restored == tl

    def test_merge_delta_sums_gauge_averages(self):
        a, b = make_timeline(), make_timeline()
        a.merge(b)
        assert a.get("issued") == [10.0, 14.0, 2.0]
        assert a.get("depth") == [2.0, 4.0, 6.0]  # same values average out

    def test_merge_interval_mismatch_rejected(self):
        with pytest.raises(ValueError, match="intervals"):
            Timeline(interval=10).merge(Timeline(interval=20))

    def test_merge_uneven_lengths_keeps_longer_tail(self):
        a = Timeline(interval=10)
        a.kinds = {"issued": "delta"}
        a.append(10, {"issued": 1.0})
        b = make_timeline()
        a.merge(b)
        assert len(a) == 3
        assert a.get("issued") == [6.0, 7.0, 1.0]


class TestSampler:
    def test_samples_on_interval_boundaries(self):
        reg = MetricRegistry()
        c = reg.counter("n")
        sampler = IntervalSampler(reg, interval=4)
        rows = []
        for cycle in range(1, 10):
            c.inc()
            row = sampler.tick(cycle)
            if row is not None:
                rows.append((cycle, row))
        assert [cycle for cycle, _ in rows] == [4, 8]
        # Delta metrics arrive as per-interval differences.
        assert rows[0][1]["n"] == 4.0
        assert rows[1][1]["n"] == 4.0

    def test_gauge_sampled_as_instantaneous(self):
        reg = MetricRegistry()
        g = reg.gauge("depth")
        sampler = IntervalSampler(reg, interval=2)
        g.set(9)
        sampler.tick(2)
        g.set(3)
        sampler.tick(4)
        assert sampler.timeline.get("depth") == [9.0, 3.0]

    def test_finish_flushes_partial_interval(self):
        reg = MetricRegistry()
        c = reg.counter("n")
        sampler = IntervalSampler(reg, interval=10)
        for cycle in range(1, 14):
            c.inc()
            sampler.tick(cycle)
        tl = sampler.finish(13)
        assert tl.cycles == [10, 13]
        assert tl.get("n") == [10.0, 3.0]
        assert tl.kinds["n"] == "delta"

    def test_finish_idempotent_on_boundary(self):
        reg = MetricRegistry()
        reg.counter("n")
        sampler = IntervalSampler(reg, interval=5)
        sampler.tick(5)
        assert len(sampler.finish(5)) == 1

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            IntervalSampler(MetricRegistry(), interval=0)


class TestReductions:
    def test_rates_use_recorded_cycle_axis(self):
        tl = make_timeline()
        # 5 events over the first 10 cycles, 7 over 10, then 1 over 5.
        assert rates(tl, "issued") == [0.5, 0.7, 0.2]

    def test_moving_average(self):
        assert moving_average([1.0, 3.0, 5.0], window=2) == [1.0, 2.0, 4.0]
        with pytest.raises(ValueError):
            moving_average([1.0], window=0)

    def test_peak(self):
        assert peak(make_timeline(), "depth") == (25, 6.0)

    def test_sparkline_shape(self):
        line = sparkline([0.0, 1.0, 2.0, 4.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "▁▁"

    def test_sparkline_buckets_long_series(self):
        assert len(sparkline(list(range(1000)), width=60)) == 60

    def test_summary_mentions_every_series(self):
        text = timeline_summary(make_timeline())
        assert "issued" in text and "depth" in text
        assert "64 samples" not in text  # uses the real sample count
        assert timeline_summary(Timeline(interval=4)) == "(empty timeline)"

"""Tests for terminal bar-chart rendering."""

import pytest

from repro.analysis.plots import bar_chart, chart_experiment
from repro.analysis.report import ExperimentResult


class TestBarChart:
    def test_scales_to_maximum(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 5
        assert lines[1].count("█") == 10

    def test_title_and_values_rendered(self):
        chart = bar_chart(["x"], [0.5], title="demo", unit="x")
        assert chart.startswith("demo")
        assert "0.500x" in chart

    def test_none_rendered_as_na(self):
        chart = bar_chart(["a", "b"], [1.0, None])
        assert "N/A" in chart

    def test_partial_blocks(self):
        chart = bar_chart(["a", "b"], [1.0, 0.55], width=10)
        bar_line = chart.splitlines()[1]
        # 5.5 cells: five full blocks plus one partial glyph.
        assert bar_line.count("█") == 5

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([], [])

    def test_zero_values(self):
        chart = bar_chart(["a"], [0.0])
        assert "0.000" in chart


class TestChartExperiment:
    def _result(self):
        r = ExperimentResult("figX", "demo", ["benchmark", "a", "b"])
        r.add_row("lib", 0.2, 0.3)
        r.add_row("AVERAGE", 0.5, 0.6)
        return r

    def test_defaults_to_last_column(self):
        chart = chart_experiment(self._result())
        assert "[b]" in chart
        assert "0.600" in chart

    def test_explicit_column(self):
        chart = chart_experiment(self._result(), column="a")
        assert "[a]" in chart and "0.200" in chart

    def test_unknown_column(self):
        with pytest.raises(ValueError):
            chart_experiment(self._result(), column="zzz")

    def test_empty_result_rejected(self):
        with pytest.raises(ValueError):
            chart_experiment(ExperimentResult("f", "t", ["benchmark", "x"]))

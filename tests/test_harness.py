"""Tests for the experiment harness, report rendering, and CLI."""

import pytest

from repro.analysis.report import ExperimentResult, fmt
from repro.harness.ablations import ABLATIONS
from repro.harness.engine import ExperimentSpec, Variant, evaluate, experiment
from repro.harness.experiments import EXPERIMENTS, run_experiment, table1
from repro.harness.extensions import EXTENSIONS
from repro.harness.runner import main
from repro.sim import Session, SimRequest

#: Two cheap benchmarks exercising both divergence regimes.
SUBSET = ["lib", "pathfinder"]


@pytest.fixture(scope="module")
def cache():
    return Session(scale="small", subset=SUBSET, use_disk_cache=False)


class TestReport:
    def test_fmt(self):
        assert fmt(None).strip() == "N/A"
        assert fmt(0.12345).strip() == "0.123"
        assert fmt("x", width=3) == "  x"

    def test_table_roundtrip(self):
        r = ExperimentResult("figX", "demo", ["benchmark", "a", "b"])
        r.add_row("lib", 1.0, 2.0)
        r.add_row("aes", 3.0, None)
        assert r.column("a") == [1.0, 3.0]
        assert r.cell("aes", "b") is None
        assert r.row("lib")[0] == "lib"
        with pytest.raises(KeyError):
            r.row("nope")
        text = r.render()
        assert "figX" in text and "lib" in text and "N/A" in text

    def test_notes_rendered(self):
        r = ExperimentResult("f", "t", ["benchmark"], notes="hello")
        assert "note: hello" in r.render()


class TestSession:
    def test_memoises_runs(self, cache):
        first = cache.timing_run("lib", policy="baseline")
        second = cache.timing_run("lib", policy="baseline")
        assert first is second

    def test_distinct_keys_distinct_runs(self, cache):
        a = cache.functional_run("lib")
        b = cache.functional_run("lib", policy="static-4-0")
        assert a is not b

    def test_subset_respected(self, cache):
        assert cache.benchmarks() == SUBSET
        assert cache.benchmarks(["aes"]) == ["aes"]

    def test_request_is_hashable_identity(self):
        assert SimRequest("lib") == SimRequest("lib")
        assert SimRequest("lib") != SimRequest("lib", policy="baseline")

    def test_legacy_shim_importable(self):
        from repro.harness.sweeps import RunKey, SimulationCache

        assert RunKey is SimRequest
        assert SimulationCache is Session


class TestEngine:
    def test_variant_builds_request(self):
        variant = Variant(
            "x", policy="baseline", config_overrides=(("num_collectors", 8),)
        )
        request = variant.request("lib", "small")
        assert request.benchmark == "lib"
        assert request.policy == "baseline"
        assert request.scale == "small"
        assert request.gpu_config().num_collectors == 8

    def test_spec_grid_shape(self, cache):
        spec = EXPERIMENTS["fig09"]
        requests = spec.requests(cache)
        assert set(requests) == {
            (b, v) for b in SUBSET for v in ("baseline", "warped")
        }

    def test_reduction_id_mismatch_rejected(self, cache):
        @experiment("right", "t")
        def bad(grid):
            return ExperimentResult("wrong", "t", ["benchmark"])

        with pytest.raises(ValueError, match="produced 'wrong'"):
            evaluate(bad, cache)

    def test_spec_is_callable_driver(self, cache):
        spec = EXPERIMENTS["table1"]
        assert isinstance(spec, ExperimentSpec)
        assert spec(cache).exp_id == "table1"

    def test_grid_missing_cell_raises(self, cache):
        result_grid = EXPERIMENTS["fig03"].requests(cache)
        assert ("lib", "func") in result_grid
        from repro.harness.engine import ResultGrid

        grid = ResultGrid(SUBSET, {})
        with pytest.raises(KeyError, match="no result"):
            grid.get("lib", "func")


class TestExperiments:
    def test_registry_covers_every_figure(self):
        expected = {"table1"} | {
            f"fig{n:02d}"
            for n in (2, 3, 5, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21)
        }
        assert set(EXPERIMENTS) == expected

    def test_registries_are_disjoint(self):
        assert not set(EXPERIMENTS) & set(ABLATIONS)
        assert not set(EXPERIMENTS) & set(EXTENSIONS)
        assert not set(ABLATIONS) & set(EXTENSIONS)

    def test_table1_static(self):
        result = table1(Session(use_disk_cache=False))
        assert result.cell("<4,1>", "banks") == 3
        assert result.cell("<8,1>", "comp_bytes") == 23
        assert len(result.rows) == 9

    def test_run_experiment_unknown(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_fig03_rows_and_average(self, cache):
        result = EXPERIMENTS["fig03"](cache)
        assert [r[0] for r in result.rows] == SUBSET + ["AVERAGE"]
        for value in result.column("nondivergent"):
            assert 0.0 <= value <= 1.0

    def test_fig02_fractions_sum_to_one(self, cache):
        result = EXPERIMENTS["fig02"](cache)
        for row in result.rows:
            nd = sum(row[1:5])
            assert nd == pytest.approx(1.0, abs=1e-6)

    def test_fig05_breakdown(self, cache):
        result = EXPERIMENTS["fig05"](cache)
        lib_row = result.row("lib")
        assert sum(lib_row[1:]) == pytest.approx(1.0, abs=1e-6)
        # LIB's constant values are best served by <4,0>.
        assert result.cell("lib", "<4,0>") > 0.5

    def test_fig08_nondiv_ratio_reasonable(self, cache):
        result = EXPERIMENTS["fig08"](cache)
        assert result.cell("lib", "nondivergent") > 4.0
        assert result.cell("lib", "divergent") is None

    def test_fig09_energy_saving(self, cache):
        result = EXPERIMENTS["fig09"](cache)
        assert result.cell("lib", "wc_total") < 0.6
        for row in result.rows:
            total = row[-1]
            assert total == pytest.approx(sum(row[3:7]), rel=1e-6)

    def test_fig10_bank_monotonicity(self, cache):
        result = EXPERIMENTS["fig10"](cache)
        fractions = result.column("gated_fraction")[:-1]
        assert len(fractions) == 32
        # Highest bank of each cluster gated at least as much as lowest.
        for c in range(4):
            assert fractions[c * 8 + 7] >= fractions[c * 8] - 1e-9

    def test_fig11_mov_fractions(self, cache):
        result = EXPERIMENTS["fig11"](cache)
        assert result.cell("lib", "mov_fraction") == 0.0
        assert 0 < result.cell("pathfinder", "mov_fraction") < 0.1

    def test_fig12_na_handling(self, cache):
        result = EXPERIMENTS["fig12"](cache)
        assert result.cell("lib", "divergent") is None
        assert result.cell("pathfinder", "divergent") is not None

    def test_fig13_slowdown_moderate(self, cache):
        result = EXPERIMENTS["fig13"](cache)
        for value in result.column("slowdown"):
            assert 0.95 <= value <= 1.35

    def test_fig15_static_ratios_bounded_by_dynamic(self, cache):
        result = EXPERIMENTS["fig15"](cache)
        for row in result.rows:
            warped = row[1]
            # The dynamic scheme is at least as good as any static pick.
            assert warped >= max(row[2:]) - 1e-9

    def test_fig17_monotone_in_unit_energy(self, cache):
        result = EXPERIMENTS["fig17"](cache)
        for row in result.rows:
            values = row[1:]
            assert values == sorted(values)

    def test_fig19_wire_activity_helps_compression(self, cache):
        result = EXPERIMENTS["fig19"](cache)
        avg = result.row("AVERAGE")
        # Higher activity -> wires dominate -> compression saves more.
        assert avg[-1] <= avg[1] + 1e-9

    def test_fig20_monotone_in_latency(self, cache):
        result = EXPERIMENTS["fig20"](cache)
        for row in result.rows:
            assert row[1] <= row[-1] + 1e-9


class TestRunnerCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out and "benchmarks:" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_bad_jobs_errors(self):
        with pytest.raises(SystemExit):
            main(["table1", "--jobs", "0"])

    def test_single_experiment_to_file(self, tmp_path, capsys):
        out = tmp_path / "results.txt"
        code = main(
            [
                "table1",
                "--scale",
                "small",
                "--quiet",
                "--no-cache",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert "table1" in out.read_text()

    def test_cache_dir_flag_populates_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        args = [
            "fig03",
            "--scale",
            "small",
            "--benchmarks",
            "lib",
            "--quiet",
            "--cache-dir",
            str(cache_dir),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert list(cache_dir.glob("results/*/*.json"))
        # Second invocation re-renders from the warm cache, identically.
        assert main(args) == 0
        assert capsys.readouterr().out == first

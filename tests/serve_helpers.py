"""Shared test helper: a ``repro serve`` instance embedded in a thread.

The server's asyncio loop runs on a daemon thread; the test thread
talks to it over real TCP through :class:`~repro.serve.client.ServeClient`
on an ephemeral port.  Thread-pool executors keep worker simulations in
this process, so ``SIM_COUNTER`` deltas stay observable.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading

from repro.serve.client import ServeClient
from repro.serve.server import ServeApp, ServeConfig


class EmbeddedServer:
    """Context manager: boot on port 0, expose host/port/app, drain."""

    def __init__(self, **config_kwargs):
        config_kwargs.setdefault("port", 0)
        config_kwargs.setdefault("executor", "thread")
        config_kwargs.setdefault("workers", 2)
        config_kwargs.setdefault("use_disk_cache", False)
        self.config = ServeConfig(**config_kwargs)
        self.app: ServeApp | None = None
        self.host = ""
        self.port = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._boot_error: BaseException | None = None

    def __enter__(self) -> "EmbeddedServer":
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        if not self._ready.wait(10):
            raise RuntimeError("embedded server failed to boot")
        if self._boot_error is not None:
            raise self._boot_error
        assert self.client().wait_ready(10)
        return self

    def __exit__(self, *exc_info) -> None:
        if (
            self._loop is not None
            and self.app is not None
            and not self._loop.is_closed()
        ):
            try:
                future = asyncio.run_coroutine_threadsafe(
                    self.app.shutdown(drain=True), self._loop
                )
                future.result(30)
            except (RuntimeError, concurrent.futures.CancelledError):
                # Loop closed mid-flight (server-initiated drain) — either
                # scheduling fails outright or the pending shutdown call
                # is cancelled when the loop stops first.
                pass
        if self._thread is not None:
            self._thread.join(10)

    def _main(self) -> None:
        async def serve() -> None:
            try:
                self.app = ServeApp(self.config)
                self.host, self.port = await self.app.start()
                self._loop = asyncio.get_running_loop()
            except BaseException as exc:  # noqa: BLE001 - surfaced to tester
                self._boot_error = exc
                self._ready.set()
                raise
            self._ready.set()
            await self.app.serve_until_stopped()

        try:
            asyncio.run(serve())
        except BaseException:  # noqa: BLE001 - boot errors already captured
            pass

    def client(self, timeout: float = 30.0) -> ServeClient:
        return ServeClient(self.host, self.port, timeout=timeout)

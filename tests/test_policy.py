"""Unit tests for compression storage policies."""

import numpy as np
import pytest

from repro.core.codec import CompressionMode
from repro.core.policy import (
    CompressionDecision,
    PerThreadNarrowPolicy,
    StaticBDIPolicy,
    UncompressedPolicy,
    WarpedCompressionPolicy,
    make_policy,
)


def lanes(values) -> np.ndarray:
    return np.asarray(values, dtype=np.uint32)


IDENTICAL = lanes([7] * 32)
SEQUENTIAL = lanes(range(32))
WIDE = lanes([0, 1 << 20] + [0] * 30)


class TestCompressionDecision:
    def test_bank_bounds(self):
        with pytest.raises(ValueError):
            CompressionDecision(CompressionMode.B4D0, 0, False)
        with pytest.raises(ValueError):
            CompressionDecision(CompressionMode.B4D0, 9, False)

    def test_is_compressed(self):
        assert CompressionDecision(CompressionMode.B4D0, 1, True).is_compressed
        assert not CompressionDecision(
            CompressionMode.UNCOMPRESSED, 8, False
        ).is_compressed


class TestUncompressedPolicy:
    def test_always_full_width(self):
        policy = UncompressedPolicy()
        for values in (IDENTICAL, SEQUENTIAL, WIDE):
            decision = policy.decide(values, divergent=False)
            assert decision.mode is CompressionMode.UNCOMPRESSED
            assert decision.banks == 8
            assert not decision.compressor_used

    def test_disabled(self):
        assert not UncompressedPolicy().enabled
        assert not UncompressedPolicy().requires_mov_on_divergent_write


class TestWarpedCompressionPolicy:
    def test_nondivergent_compresses(self):
        policy = WarpedCompressionPolicy()
        assert policy.decide(IDENTICAL, False).mode is CompressionMode.B4D0
        assert policy.decide(SEQUENTIAL, False).mode is CompressionMode.B4D1
        assert policy.decide(WIDE, False).mode is CompressionMode.UNCOMPRESSED

    def test_divergent_writes_stored_raw(self):
        policy = WarpedCompressionPolicy()
        decision = policy.decide(IDENTICAL, divergent=True)
        assert decision.mode is CompressionMode.UNCOMPRESSED
        assert decision.banks == 8
        assert not decision.compressor_used

    def test_compressor_charged_on_nondivergent(self):
        policy = WarpedCompressionPolicy()
        assert policy.decide(WIDE, False).compressor_used

    def test_requires_mov(self):
        assert WarpedCompressionPolicy().requires_mov_on_divergent_write

    def test_buffered_variant_compresses_divergent(self):
        policy = WarpedCompressionPolicy(compress_divergent=True)
        assert policy.decide(IDENTICAL, True).mode is CompressionMode.B4D0
        assert not policy.requires_mov_on_divergent_write

    def test_reset_clears_codec_counters(self):
        policy = WarpedCompressionPolicy()
        policy.decide(IDENTICAL, False)
        policy.reset()
        assert policy.codec.compressions == 0


class TestStaticBDIPolicy:
    def test_4_0_only_compresses_identical(self):
        policy = StaticBDIPolicy(CompressionMode.B4D0)
        assert policy.decide(IDENTICAL, False).mode is CompressionMode.B4D0
        assert (
            policy.decide(SEQUENTIAL, False).mode
            is CompressionMode.UNCOMPRESSED
        )

    def test_4_1_rounds_up_identical_values(self):
        # The paper: a static <4,1> stores an extra delta byte per chunk
        # even when <4,0> would have sufficed.
        policy = StaticBDIPolicy(CompressionMode.B4D1)
        decision = policy.decide(IDENTICAL, False)
        assert decision.mode is CompressionMode.B4D1
        assert decision.banks == 3

    def test_rejects_uncompressed(self):
        with pytest.raises(ValueError):
            StaticBDIPolicy(CompressionMode.UNCOMPRESSED)

    def test_names(self):
        assert StaticBDIPolicy(CompressionMode.B4D2).name == "static<4,2>"


class TestPerThreadNarrowPolicy:
    def test_small_values_pack_one_byte_each(self):
        policy = PerThreadNarrowPolicy()
        decision = policy.decide(lanes([3] * 32), False)
        assert decision.banks == 2  # 32 bytes
        assert decision.is_compressed

    def test_two_byte_values(self):
        policy = PerThreadNarrowPolicy()
        decision = policy.decide(lanes([1000] * 32), False)
        assert decision.banks == 4  # 64 bytes

    def test_wide_values_do_not_compress(self):
        policy = PerThreadNarrowPolicy()
        # Nearby large values: warped-compression would compress these,
        # narrow-width cannot — the paper's argument in Section 5.2.
        values = lanes(range(1 << 20, (1 << 20) + 32))
        decision = policy.decide(values, False)
        assert decision.banks == 8
        assert not decision.is_compressed

    def test_negative_small_values_sign_extend(self):
        policy = PerThreadNarrowPolicy()
        values = lanes([(-5) & 0xFFFFFFFF] * 32)
        assert policy.decide(values, False).banks == 2

    def test_divergence_irrelevant(self):
        policy = PerThreadNarrowPolicy()
        assert policy.decide(lanes([3] * 32), True).banks == 2
        assert not policy.requires_mov_on_divergent_write


class TestMakePolicy:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("baseline", UncompressedPolicy),
            ("warped", WarpedCompressionPolicy),
            ("warped-buffered", WarpedCompressionPolicy),
            ("static-4-0", StaticBDIPolicy),
            ("per-thread", PerThreadNarrowPolicy),
        ],
    )
    def test_factory(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("nope")

"""Unit tests for register-bank geometry arithmetic."""

import pytest

from repro.core.banks import (
    BANK_BYTES,
    BANKS_PER_WARP_REGISTER,
    WARP_REGISTER_BYTES,
    bank_bytes_used,
    banks_required,
    compression_ratio_in_banks,
)


class TestBanksRequired:
    def test_zero_bytes_needs_no_banks(self):
        assert banks_required(0) == 0

    def test_one_byte_needs_one_bank(self):
        assert banks_required(1) == 1

    def test_exact_bank_boundary(self):
        assert banks_required(16) == 1
        assert banks_required(32) == 2

    def test_one_past_boundary_spills(self):
        assert banks_required(17) == 2

    @pytest.mark.parametrize(
        "nbytes,banks",
        [(1, 1), (4, 1), (35, 3), (65, 5), (66, 5), (23, 2), (38, 3), (68, 5), (128, 8)],
    )
    def test_paper_table1_bank_counts(self, nbytes, banks):
        assert banks_required(nbytes) == banks

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            banks_required(-1)

    def test_bad_bank_width_rejected(self):
        with pytest.raises(ValueError):
            banks_required(10, bank_bytes=0)

    def test_custom_bank_width(self):
        assert banks_required(33, bank_bytes=32) == 2


class TestConstants:
    def test_warp_register_spans_eight_banks(self):
        assert WARP_REGISTER_BYTES // BANK_BYTES == BANKS_PER_WARP_REGISTER == 8


class TestBankBytesUsed:
    def test_rounds_up_to_whole_banks(self):
        assert bank_bytes_used(35) == 48
        assert bank_bytes_used(4) == 16


class TestCompressionRatio:
    def test_full_register_ratio_is_one(self):
        assert compression_ratio_in_banks(128) == 1.0

    def test_single_bank_ratio_is_eight(self):
        assert compression_ratio_in_banks(4) == 8.0

    def test_three_bank_ratio(self):
        assert compression_ratio_in_banks(35) == pytest.approx(8 / 3)

    def test_zero_compressed_size_rejected(self):
        with pytest.raises(ValueError):
            compression_ratio_in_banks(0)

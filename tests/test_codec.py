"""Unit and property tests for the fast warp-register codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bdi import Encoding, can_encode
from repro.core.codec import (
    COMPRESSED_MODES,
    CompressionMode,
    WarpRegisterCodec,
    bank_span,
    choose_mode,
    compression_ratio,
    decode_register,
    encode_register,
    full_bank_span,
)


def lanes(values) -> np.ndarray:
    return np.asarray(values, dtype=np.uint32)


class TestCompressionMode:
    def test_mode_bytes_match_table1(self):
        assert CompressionMode.B4D0.compressed_bytes == 4
        assert CompressionMode.B4D1.compressed_bytes == 35
        assert CompressionMode.B4D2.compressed_bytes == 66
        assert CompressionMode.UNCOMPRESSED.compressed_bytes == 128

    def test_mode_banks_match_table1(self):
        assert [m.banks for m in CompressionMode] == [1, 3, 5, 8]

    def test_indicator_fits_two_bits(self):
        assert all(0 <= m.value < 4 for m in CompressionMode)

    def test_is_compressed(self):
        assert CompressionMode.B4D0.is_compressed
        assert not CompressionMode.UNCOMPRESSED.is_compressed

    def test_encoding_mapping(self):
        assert CompressionMode.B4D1.encoding == Encoding(4, 1)
        assert CompressionMode.UNCOMPRESSED.encoding is None


class TestChooseMode:
    def test_identical(self):
        assert choose_mode(lanes([9] * 32)) is CompressionMode.B4D0

    def test_sequential(self):
        assert choose_mode(lanes(range(32))) is CompressionMode.B4D1

    def test_boundary_127(self):
        assert choose_mode(lanes([0, 127] + [0] * 30)) is CompressionMode.B4D1

    def test_boundary_minus_128(self):
        values = lanes([1000, 872] + [1000] * 30)
        assert choose_mode(values) is CompressionMode.B4D1

    def test_boundary_128_needs_two_bytes(self):
        assert choose_mode(lanes([0, 128] + [0] * 30)) is CompressionMode.B4D2

    def test_boundary_32767(self):
        assert choose_mode(lanes([0, 32767] + [0] * 30)) is CompressionMode.B4D2

    def test_boundary_32768_uncompressed(self):
        assert (
            choose_mode(lanes([0, 32768] + [0] * 30))
            is CompressionMode.UNCOMPRESSED
        )

    def test_wraparound_near_zero(self):
        # 0xFFFFFFFF is -1 away from 0 in wrap-around arithmetic.
        values = lanes([0, 0xFFFFFFFF] + [0] * 30)
        assert choose_mode(values) is CompressionMode.B4D1

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            choose_mode(np.zeros((2, 16), dtype=np.uint32))


class TestEncodeDecodeRegister:
    def test_roundtrip_compressed(self):
        values = lanes(range(500, 532))
        mode, block = encode_register(values)
        assert mode is CompressionMode.B4D1
        np.testing.assert_array_equal(decode_register(block), values)

    def test_uncompressed_returns_no_block(self):
        rng = np.random.default_rng(0)
        values = lanes(rng.integers(0, 1 << 32, 32, dtype=np.uint64))
        mode, block = encode_register(values)
        assert mode is CompressionMode.UNCOMPRESSED
        assert block is None

    def test_decode_rejects_wrong_base(self):
        from repro.core.bdi import BDIBlock

        block = BDIBlock(Encoding(8, 1), 128, 5, (0,) * 15)
        with pytest.raises(ValueError):
            decode_register(block)


class TestWarpRegisterCodec:
    def test_counts_activations(self):
        codec = WarpRegisterCodec()
        codec.compress(lanes([1] * 32))
        codec.decompress()
        codec.decompress()
        assert codec.compressions == 1
        assert codec.decompressions == 2
        codec.reset_counters()
        assert codec.compressions == codec.decompressions == 0

    def test_restricted_modes_round_up(self):
        codec = WarpRegisterCodec(modes=(CompressionMode.B4D1,))
        # Identical values would fit <4,0>, but only <4,1> is allowed.
        assert codec.compress(lanes([3] * 32)) is CompressionMode.B4D1
        # Two-byte deltas cannot round down to <4,1>.
        wide = lanes([0, 1000] + [0] * 30)
        assert codec.compress(wide) is CompressionMode.UNCOMPRESSED

    def test_rejects_uncompressed_in_mode_list(self):
        with pytest.raises(ValueError):
            WarpRegisterCodec(modes=(CompressionMode.UNCOMPRESSED,))


class TestSpans:
    def test_bank_spans(self):
        assert list(bank_span(CompressionMode.B4D0)) == [0]
        assert list(bank_span(CompressionMode.B4D1)) == [0, 1, 2]
        assert list(bank_span(CompressionMode.B4D2)) == [0, 1, 2, 3, 4]
        assert list(full_bank_span()) == list(range(8))

    def test_compression_ratios(self):
        assert compression_ratio(CompressionMode.B4D0) == 8.0
        assert compression_ratio(CompressionMode.B4D1) == pytest.approx(8 / 3)
        assert compression_ratio(CompressionMode.UNCOMPRESSED) == 1.0


# ----------------------------------------------------------------------
# Property: fast codec agrees with the generic BDI reference
# ----------------------------------------------------------------------
u32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
small = st.integers(min_value=-40000, max_value=40000)


@st.composite
def warp_values(draw):
    base = draw(u32)
    offsets = draw(st.lists(small, min_size=31, max_size=31))
    return [base] + [(base + o) % (1 << 32) for o in offsets]


@settings(max_examples=200, deadline=None)
@given(values=warp_values())
def test_property_choose_mode_matches_generic_bdi(values):
    arr = lanes(values)
    data = arr.tobytes()
    mode = choose_mode(arr)
    encodable = {
        m: can_encode(data, m.encoding) for m in COMPRESSED_MODES
    }
    if mode is CompressionMode.UNCOMPRESSED:
        assert not any(encodable.values())
    else:
        assert encodable[mode]
        # No strictly cheaper mode should be encodable.
        for m in COMPRESSED_MODES:
            if m < mode:
                assert not encodable[m]


@settings(max_examples=200, deadline=None)
@given(values=warp_values())
def test_property_register_roundtrip(values):
    arr = lanes(values)
    mode, block = encode_register(arr)
    if block is not None:
        np.testing.assert_array_equal(decode_register(block), arr)

"""Tests for the register-file-cache extension."""

import numpy as np
import pytest

from repro.gpu.builder import KernelBuilder
from repro.gpu.config import GPUConfig
from repro.gpu.isa import Cmp
from repro.gpu.launch import run_kernel
from repro.gpu.memory import GlobalMemory
from repro.gpu.rfc import RegisterFileCache


class TestRegisterFileCache:
    def test_write_allocate_then_hit(self):
        rfc = RegisterFileCache(entries_per_warp=2)
        assert rfc.write(0, 5) is None
        assert rfc.read(0, 5)
        assert rfc.read_hits == 1

    def test_read_does_not_allocate(self):
        rfc = RegisterFileCache(entries_per_warp=2)
        assert not rfc.read(0, 3)
        assert not rfc.contains(0, 3)
        assert rfc.read_misses == 1

    def test_lru_eviction_order(self):
        rfc = RegisterFileCache(entries_per_warp=2)
        rfc.write(0, 1)
        rfc.write(0, 2)
        rfc.read(0, 1)  # refresh 1; LRU is now 2
        assert rfc.write(0, 3) == 2

    def test_rewrite_refreshes_without_eviction(self):
        rfc = RegisterFileCache(entries_per_warp=2)
        rfc.write(0, 1)
        rfc.write(0, 2)
        assert rfc.write(0, 1) is None
        assert rfc.write(0, 3) == 2  # 1 was refreshed

    def test_warps_are_isolated(self):
        rfc = RegisterFileCache(entries_per_warp=1)
        rfc.write(0, 7)
        assert not rfc.contains(1, 7)
        rfc.write(1, 7)
        assert rfc.contains(0, 7) and rfc.contains(1, 7)

    def test_flush_returns_dirty_lines(self):
        rfc = RegisterFileCache(entries_per_warp=4)
        rfc.write(0, 1)
        rfc.write(0, 2)
        assert sorted(rfc.flush_warp(0)) == [1, 2]
        assert not rfc.contains(0, 1)
        assert rfc.evictions == 2

    def test_counters(self):
        rfc = RegisterFileCache(entries_per_warp=2)
        rfc.write(0, 1)
        rfc.read(0, 1)
        rfc.read(0, 9)
        assert rfc.accesses == 2  # 1 write + 1 read hit
        assert rfc.hit_rate == 0.5

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RegisterFileCache(entries_per_warp=0)


def chained_kernel():
    """A kernel with tight register reuse — ideal for the RFC."""
    b = KernelBuilder("chain", params=("out",))
    tid = b.tid_x()
    acc = b.mov(0)
    for i in range(12):
        b.iadd(acc, tid, dst=acc)
    b.stg(b.imad(tid, 4, b.param("out")), acc)
    return b.build()


def divergent_merge_kernel():
    """Divergent partial writes that the cache must merge correctly."""
    b = KernelBuilder("merge", params=("out",))
    tid = b.tid_x()
    acc = b.imul(tid, 2)
    with b.if_(b.isetp(Cmp.LT, tid, 16)):
        b.iadd(acc, 100, dst=acc)
    with b.if_(b.isetp(Cmp.GE, tid, 24)):
        b.iadd(acc, 1000, dst=acc)
    b.stg(b.imad(tid, 4, b.param("out")), acc)
    return b.build()


def run_with(kernel, rfc_entries, policy="warped"):
    gm = GlobalMemory()
    out = gm.alloc(32, "out")
    cfg = GPUConfig(rfc_entries_per_warp=rfc_entries)
    result = run_kernel(
        kernel, (1, 1), (32, 1), [out], gm, config=cfg, policy=policy
    )
    return gm.read_array(out, 32), result


class TestRfcIntegration:
    def test_results_identical_with_and_without_cache(self):
        kernel = chained_kernel()
        plain, _ = run_with(kernel, 0)
        cached, _ = run_with(kernel, 6)
        np.testing.assert_array_equal(plain, cached)

    def test_divergent_merges_in_cache(self):
        kernel = divergent_merge_kernel()
        got, result = run_with(kernel, 6)
        lanes = np.arange(32)
        expected = lanes * 2
        expected = np.where(lanes < 16, expected + 100, expected)
        expected = np.where(lanes >= 24, expected + 1000, expected)
        np.testing.assert_array_equal(got, expected)
        # The cache absorbs divergent writes: no dummy MOVs.
        assert result.stats.value.movs_injected == 0

    def test_cache_reduces_bank_traffic(self):
        kernel = chained_kernel()
        _, plain = run_with(kernel, 0)
        _, cached = run_with(kernel, 6)
        plain_model = plain.stats.energy_model
        cached_model = cached.stats.energy_model
        assert cached_model.bank_reads < plain_model.bank_reads
        assert cached_model.bank_writes < plain_model.bank_writes
        assert cached_model.rfc_accesses > 0
        assert plain_model.rfc_accesses == 0

    def test_rfc_energy_appears_in_breakdown(self):
        kernel = chained_kernel()
        _, cached = run_with(kernel, 6)
        assert cached.energy.rfc_pj > 0
        assert cached.energy.dynamic_pj >= cached.energy.rfc_pj

    def test_rfc_with_baseline_policy(self):
        kernel = chained_kernel()
        plain, _ = run_with(kernel, 0, policy="baseline")
        cached, result = run_with(kernel, 6, policy="baseline")
        np.testing.assert_array_equal(plain, cached)
        # Uncompressed evictions write full registers.
        assert result.stats.energy_model.bank_writes % 8 == 0

"""Benchmark-suite tests: correctness and characterisation properties.

Every benchmark is executed functionally at small scale and its outputs
checked against the numpy reference; per-benchmark expectations then pin
the value-similarity behaviour the paper attributes to each workload.
"""

import numpy as np
import pytest

from repro.gpu.functional import run_functional
from repro.kernels import BENCHMARKS, benchmark_names, get_benchmark, iter_benchmarks

ALL_NAMES = benchmark_names()


@pytest.fixture(scope="module")
def small_runs():
    """Functional run + verification for every benchmark (shared)."""
    runs = {}
    for bench in iter_benchmarks():
        spec = bench.launch("small")
        gmem = spec.fresh_memory()
        stats = run_functional(
            spec.kernel, spec.grid_dim, spec.cta_dim, spec.params, gmem
        )
        bench.verify(gmem, spec)
        runs[bench.name] = stats
    return runs


class TestRegistry:
    def test_twelve_benchmarks(self):
        assert len(BENCHMARKS) == 12

    def test_expected_names(self):
        assert ALL_NAMES == sorted(ALL_NAMES)
        assert {"pathfinder", "lib", "aes", "bfs"} <= set(ALL_NAMES)

    def test_get_benchmark_unknown(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("doom")

    def test_iter_subset_order(self):
        names = [b.name for b in iter_benchmarks(["lib", "aes"])]
        assert names == ["lib", "aes"]

    def test_kernels_build_and_cache(self):
        for bench in iter_benchmarks():
            assert bench.kernel is bench.kernel  # cached
            assert bench.kernel.num_registers >= 1

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            get_benchmark("lib").launch("huge")

    def test_launch_is_replayable(self):
        spec = get_benchmark("pathfinder").launch("small")
        m1 = spec.fresh_memory()
        m2 = spec.fresh_memory()
        buf = spec.buffers["wall"]
        np.testing.assert_array_equal(
            m1.read_array(buf, 16), m2.read_array(buf, 16)
        )


@pytest.mark.parametrize("name", ALL_NAMES)
def test_benchmark_verifies(small_runs, name):
    # Fixture construction already verified outputs; assert it ran.
    assert small_runs[name].value.instructions > 0


class TestPaperCharacterisation:
    """Per-benchmark behaviours the paper's figures rely on."""

    def test_lib_compresses_nearly_perfectly(self, small_runs):
        v = small_runs["lib"].value
        assert v.overall_compression_ratio() > 5.0
        fractions = v.similarity_fractions(divergent=False)
        assert fractions[0] > 0.8  # zero bin dominates

    def test_aes_and_kmeans_never_diverge(self, small_runs):
        for name in ("aes", "kmeans"):
            assert small_runs[name].value.divergent_instructions == 0
            assert small_runs[name].value.compressed_register_fraction(
                divergent=True
            ) is None  # the paper's N/A bars

    def test_aes_compresses_poorly(self, small_runs):
        assert small_runs["aes"].value.overall_compression_ratio() < 1.6

    def test_divergent_benchmarks_diverge(self, small_runs):
        for name in ("bfs", "spmv", "nw", "pathfinder", "gaussian"):
            v = small_runs[name].value
            assert v.divergent_instructions > 0, name

    def test_divergence_flags_match_declarations(self, small_runs):
        for name, stats in small_runs.items():
            bench = get_benchmark(name)
            diverged = stats.value.divergent_instructions > 0
            assert diverged == bench.diverges, name

    def test_nondivergent_ratio_is_majority_on_average(self, small_runs):
        fractions = [
            r.value.nondivergent_fraction for r in small_runs.values()
        ]
        assert np.mean(fractions) > 0.6  # paper reports 79%

    def test_nondivergent_compression_beats_divergent(self, small_runs):
        # Aggregate Figure 8 shape: achievable ratio is higher in the
        # non-divergent phase.
        nd, d = [], []
        for stats in small_runs.values():
            v = stats.value
            if int(v.writes[1]) == 0:
                continue
            nd.append(v.compression_ratio(False, achievable=True))
            d.append(v.compression_ratio(True, achievable=True))
        assert np.mean(nd) > np.mean(d)

    def test_movs_only_with_divergence(self, small_runs):
        for name, stats in small_runs.items():
            if stats.value.movs_injected:
                assert stats.value.divergent_instructions > 0, name

    def test_mov_fraction_small(self, small_runs):
        # Paper Figure 11: dummy MOVs stay below ~2% of instructions.
        for name, stats in small_runs.items():
            assert stats.value.mov_fraction < 0.05, name

    def test_pathfinder_values_stay_small(self, small_runs):
        # Wall weights 0..9 accumulate slowly: random-bin share is tiny.
        fractions = small_runs["pathfinder"].value.similarity_fractions(
            divergent=False
        )
        assert fractions[3] < 0.35

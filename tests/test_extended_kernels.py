"""Tests for the extended (non-paper) benchmark suite."""

import numpy as np
import pytest

from repro.gpu.functional import run_functional
from repro.gpu.launch import run_kernel
from repro.kernels import benchmark_names, get_benchmark, iter_benchmarks
from repro.kernels.suite import BENCHMARKS, EXTRA_BENCHMARKS

EXTENDED = benchmark_names(extended=True)


@pytest.fixture(scope="module")
def extended_runs():
    runs = {}
    for bench in iter_benchmarks(extended=True):
        spec = bench.launch("small")
        gmem = spec.fresh_memory()
        stats = run_functional(
            spec.kernel, spec.grid_dim, spec.cta_dim, spec.params, gmem
        )
        bench.verify(gmem, spec)
        runs[bench.name] = stats
    return runs


class TestRegistry:
    def test_nine_extra_benchmarks(self):
        assert len(EXTRA_BENCHMARKS) == 9

    def test_suites_are_disjoint(self):
        assert not set(BENCHMARKS) & set(EXTRA_BENCHMARKS)

    def test_lookup_covers_both_suites(self):
        assert get_benchmark("sgemm").name == "sgemm"
        assert get_benchmark("pathfinder").name == "pathfinder"

    def test_default_names_exclude_extended(self):
        assert "sgemm" not in benchmark_names()
        assert "sgemm" in benchmark_names(extended=True)


@pytest.mark.parametrize("name", EXTENDED)
def test_extended_benchmark_verifies(extended_runs, name):
    assert extended_runs[name].value.instructions > 0


class TestCharacterisation:
    def test_divergence_declarations(self, extended_runs):
        for name, stats in extended_runs.items():
            bench = get_benchmark(name)
            diverged = stats.value.divergent_instructions > 0
            assert diverged == bench.diverges, name

    def test_reduction_diverges_heavily(self, extended_runs):
        # Tree reduction: over a third of instructions run partial warps.
        assert extended_runs["reduction"].value.nondivergent_fraction < 0.9

    def test_transpose_addresses_compress(self, extended_runs):
        assert (
            extended_runs["transpose"].value.overall_compression_ratio() > 2.0
        )

    def test_blackscholes_float_chains_resist_compression(self, extended_runs):
        assert (
            extended_runs["blackscholes"].value.overall_compression_ratio()
            < 1.8
        )

    def test_every_extended_kernel_compresses_somewhat(self, extended_runs):
        for name, stats in extended_runs.items():
            assert stats.value.overall_compression_ratio() > 1.05, name


class TestTimingPath:
    @pytest.mark.parametrize("name", ["sgemm", "reduction", "mriq"])
    def test_timing_model_agrees_with_reference(self, name):
        bench = get_benchmark(name)
        spec = bench.launch("small")
        gmem = spec.fresh_memory()
        result = run_kernel(
            spec.kernel,
            spec.grid_dim,
            spec.cta_dim,
            spec.params,
            gmem,
            policy="warped",
        )
        bench.verify(gmem, spec)
        assert result.cycles > 0

    def test_warped_saves_energy_on_extended_suite(self):
        bench = get_benchmark("transpose")
        spec = bench.launch("small")
        base = run_kernel(
            spec.kernel, spec.grid_dim, spec.cta_dim, spec.params,
            spec.fresh_memory(), policy="baseline",
        )
        wc = run_kernel(
            spec.kernel, spec.grid_dim, spec.cta_dim, spec.params,
            spec.fresh_memory(), policy="warped",
        )
        assert wc.energy.total_pj < base.energy.total_pj

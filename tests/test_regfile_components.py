"""Unit tests for register file, arbiter, scoreboard, scheduler, collector."""

import numpy as np
import pytest

from repro.core.codec import CompressionMode
from repro.core.units import UnitPool
from repro.gpu.arbiter import BankArbiter
from repro.gpu.collector import CollectorPool, OperandRead
from repro.gpu.config import GPUConfig
from repro.gpu.regfile import RegisterFile
from repro.gpu.scheduler import WarpScheduler
from repro.gpu.scoreboard import Scoreboard
from repro.power.gating import BankGatingController, BankState


def make_regfile(gating=False):
    config = GPUConfig()
    controller = (
        BankGatingController(config.num_banks, gate_delay=0) if gating else None
    )
    rf = RegisterFile(config, controller)
    rf.configure_kernel(regs_per_warp=8)
    return rf, controller


class TestRegisterFileGeometry:
    def test_slot_striping_across_clusters(self):
        rf, _ = make_regfile()
        clusters = {rf.cluster(rf.slot(0, r)) for r in range(4)}
        assert clusters == {0, 1, 2, 3}

    def test_banks_of_low_banks_first(self):
        rf, _ = make_regfile()
        slot = rf.slot(0, 0)
        assert rf.banks_of(slot, 3) == (0, 1, 2)
        slot1 = rf.slot(0, 1)  # next cluster
        assert rf.banks_of(slot1, 2) == (8, 9)

    def test_entry_mapping(self):
        rf, _ = make_regfile()
        assert rf.entry(rf.slot(0, 0)) == 0
        assert rf.entry(rf.slot(0, 4)) == 1


class TestRegisterFileAllocation:
    def test_allocate_returns_zeroed_view(self):
        rf, _ = make_regfile()
        view = rf.allocate_warp(0)
        assert view.shape == (8, 32)
        view[0, :] = 7
        assert rf.values[rf.slot(0, 0), 0] == 7  # shared storage

    def test_double_allocation_rejected(self):
        rf, _ = make_regfile()
        rf.allocate_warp(0)
        with pytest.raises(RuntimeError):
            rf.allocate_warp(0)

    def test_capacity_bound(self):
        rf, _ = make_regfile()
        with pytest.raises(ValueError):
            rf.allocate_warp(1000)

    def test_free_resets_modes_and_counters(self):
        rf, _ = make_regfile()
        rf.allocate_warp(0)
        rf.write_commit(0, 0, CompressionMode.B4D0, 1, cycle=5)
        assert rf.compressed_slots == 1
        rf.free_warp(0, cycle=10)
        assert rf.compressed_slots == 0
        assert rf.allocated_slots == 0
        assert rf.mode_of(0, 0) is CompressionMode.UNCOMPRESSED


class TestRegisterFileWriteCommit:
    def test_unwritten_register_reads_full_width(self):
        rf, _ = make_regfile()
        rf.allocate_warp(0)
        assert len(rf.read_banks(0, 0)) == 8

    def test_compressed_write_narrows_reads(self):
        rf, _ = make_regfile()
        rf.allocate_warp(0)
        rf.write_commit(0, 0, CompressionMode.B4D1, 3, cycle=1)
        assert rf.read_banks(0, 0) == (0, 1, 2)
        assert rf.is_compressed(0, 0)

    def test_gating_valid_bits_follow_bank_span(self):
        rf, gating = make_regfile(gating=True)
        rf.allocate_warp(0)
        rf.write_commit(0, 0, CompressionMode.UNCOMPRESSED, 8, cycle=1)
        assert all(gating.valid_entries(b) == 1 for b in range(8))
        # Re-compressing to one bank frees seven entries.
        rf.write_commit(0, 0, CompressionMode.B4D0, 1, cycle=2)
        assert gating.valid_entries(0) == 1
        assert all(gating.valid_entries(b) == 0 for b in range(1, 8))
        # The banks woken at cycle 1 finish waking at 11; with zero gate
        # delay they gate at the next settle after that.
        gating.settle(12)
        assert all(gating.state(b) is BankState.GATED for b in range(1, 8))

    def test_compressed_fraction(self):
        rf, _ = make_regfile()
        rf.allocate_warp(0)
        assert rf.compressed_fraction == 0.0
        rf.write_commit(0, 0, CompressionMode.B4D0, 1, cycle=1)
        assert rf.compressed_fraction == pytest.approx(1 / 8)


class TestBankArbiter:
    def test_one_read_per_bank_per_cycle(self):
        arb = BankArbiter(4)
        arb.begin_cycle(0)
        assert arb.grant_reads([0, 1]) == [0, 1]
        assert arb.grant_reads([1, 2]) == [2]
        arb.begin_cycle(1)
        assert arb.grant_reads([1]) == [1]

    def test_read_and_write_ports_independent(self):
        arb = BankArbiter(2)
        arb.begin_cycle(0)
        assert arb.grant_reads([0]) == [0]
        assert arb.grant_writes([0]) == [0]
        assert arb.grant_writes([0]) == []

    def test_gated_bank_not_granted_until_awake(self):
        gating = BankGatingController(2, wakeup_latency=5, gate_delay=0)
        arb = BankArbiter(2, gating)
        arb.begin_cycle(0)
        assert arb.grant_writes([0]) == []  # wake initiated
        arb.begin_cycle(4)
        assert arb.grant_writes([0]) == []
        arb.begin_cycle(5)
        assert arb.grant_writes([0]) == [0]


class TestScoreboard:
    def test_raw_waw_blocking(self):
        sb = Scoreboard()
        sb.reserve(0, reg=3)
        assert sb.blocked(0, (3,), None)  # RAW
        assert sb.blocked(0, (), 3)  # WAW
        assert not sb.blocked(0, (4,), 5)
        assert not sb.blocked(1, (3,), 3)  # other warp unaffected

    def test_predicate_tracking(self):
        sb = Scoreboard()
        sb.reserve(0, reg=None, pred=1)
        assert sb.blocked(0, (), None, read_preds=(1,))
        assert sb.blocked(0, (), None, write_pred=1)
        sb.release(0, None, pred=1)
        assert not sb.blocked(0, (), None, read_preds=(1,))

    def test_pending_and_clear(self):
        sb = Scoreboard()
        sb.reserve(0, reg=1)
        sb.reserve(0, reg=2, pred=0)
        assert sb.pending(0) == 3
        sb.clear_warp(0)
        assert sb.pending(0) == 0


class TestWarpScheduler:
    def test_gto_sticks_with_last_warp(self):
        s = WarpScheduler("gto")
        for w in (5, 1, 9):
            s.add_warp(w)
        assert s.pick(lambda w: True) == 5  # oldest first
        assert s.pick(lambda w: True) == 5  # greedy
        assert s.pick(lambda w: w != 5) == 1  # then-oldest on stall

    def test_gto_oldest_is_arrival_order(self):
        s = WarpScheduler("gto")
        s.add_warp(7)
        s.add_warp(2)
        assert s.pick(lambda w: True) == 7

    def test_lrr_rotates(self):
        s = WarpScheduler("lrr")
        for w in (0, 1, 2):
            s.add_warp(w)
        picks = [s.pick(lambda w: True) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_lrr_skips_unready(self):
        s = WarpScheduler("lrr")
        for w in (0, 1, 2):
            s.add_warp(w)
        assert s.pick(lambda w: w != 0) == 1

    def test_none_when_nothing_ready(self):
        s = WarpScheduler("gto")
        s.add_warp(0)
        assert s.pick(lambda w: False) is None
        assert WarpScheduler("lrr").pick(lambda w: True) is None

    def test_remove(self):
        s = WarpScheduler("gto")
        s.add_warp(0)
        s.add_warp(1)
        assert s.pick(lambda w: True) == 0
        s.remove_warp(0)
        assert s.pick(lambda w: True) == 1
        with pytest.raises(ValueError):
            s.add_warp(1)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            WarpScheduler("fifo")


class TestCollector:
    def test_pool_counting(self):
        pool = CollectorPool(2)
        pool.allocate()
        pool.allocate()
        assert not pool.available
        with pytest.raises(RuntimeError):
            pool.allocate()
        pool.release()
        assert pool.available

    def test_release_underflow(self):
        with pytest.raises(RuntimeError):
            CollectorPool(1).release()

    def test_operand_read_uncompressed_ready_after_banks(self):
        read = OperandRead(0, 0, CompressionMode.UNCOMPRESSED, {0, 1}, 2)
        assert not read.advance(5, None)
        read.pending_banks.clear()
        assert read.advance(6, None)
        assert read.ready_at == 6

    def test_operand_read_compressed_needs_decompressor(self):
        decomp = UnitPool(count=1, latency=2)
        read = OperandRead(
            0, 0, CompressionMode.B4D0, set(), 1, decompression_needed=True
        )
        assert not read.advance(10, decomp)  # starts, ready at 12
        assert not read.advance(11, decomp)
        assert read.advance(12, decomp)

    def test_operand_read_structural_hazard_retries(self):
        decomp = UnitPool(count=1, latency=1)
        other = OperandRead(
            0, 0, CompressionMode.B4D0, set(), 1, decompression_needed=True
        )
        blocked = OperandRead(
            0, 1, CompressionMode.B4D0, set(), 1, decompression_needed=True
        )
        other.advance(0, decomp)
        assert not blocked.advance(0, decomp)  # unit issue slot taken
        assert blocked.ready_at is None
        assert not blocked.advance(1, decomp)  # accepted now, ready at 2
        assert blocked.advance(2, decomp)

    def test_compressed_without_decompressors_raises(self):
        read = OperandRead(
            0, 0, CompressionMode.B4D0, set(), 1, decompression_needed=True
        )
        with pytest.raises(RuntimeError):
            read.advance(0, None)

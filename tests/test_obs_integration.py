"""End-to-end observability: sampled runs, cached timelines, tracing.

Covers the acceptance criteria of the observability layer:

* a sampled timing run attaches a populated ``Timeline`` to its
  ``RunResult`` and the timeline round-trips losslessly through the
  on-disk cache;
* a pre-schema-bump cache entry is treated as a miss (stale-entry
  invalidation), not a crash;
* a traced run exports Perfetto-loadable Chrome-trace JSON with the
  required named tracks;
* sampling disabled leaves no registry/sampler attached to the SM;
* the host profiler and logging layer behave as the CLI expects.
"""

import io
import json
import logging

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.launch import run_kernel
from repro.kernels import get_benchmark
from repro.obs.log import configure_logging, get_logger
from repro.obs.profiler import HostProfiler
from repro.obs.tracer import EventTracer, validate_chrome_trace
from repro.sim import SIM_COUNTER, RunResult, Session, SimRequest, simulate
from repro.sim.cache import fingerprint
from repro.sim.result import SCHEMA_VERSION

SAMPLED = (("sample_interval", 32),)


def small_launch(name="lib"):
    bench = get_benchmark(name)
    spec = bench.launch("small")
    return spec, spec.fresh_memory()


# ---------------------------------------------------------------------------
# Sampled runs and cached timelines
# ---------------------------------------------------------------------------


class TestSampledRuns:
    def test_unsampled_run_has_no_timeline_or_registry(self):
        spec, gmem = small_launch()
        sim = run_kernel(
            spec.kernel, spec.grid_dim, spec.cta_dim, spec.params, gmem
        )
        assert sim.stats.timeline is None

    def test_sampled_run_attaches_timeline(self):
        spec, gmem = small_launch()
        sim = run_kernel(
            spec.kernel,
            spec.grid_dim,
            spec.cta_dim,
            spec.params,
            gmem,
            config=GPUConfig(sample_interval=32),
        )
        tl = sim.stats.timeline
        assert tl is not None and len(tl) > 1
        assert tl.interval == 32
        # The headline series the recipe documents are all present.
        for name in (
            "sm.issued",
            "sm.issue_idle",
            "sm.movs",
            "energy.bank_reads",
            "regfile.compressed_fraction",
            "gating.gated_banks",
            "collector.in_use",
        ):
            assert name in tl.series, name
        assert tl.kinds["sm.issued"] == "delta"
        assert tl.kinds["regfile.compressed_fraction"] == "gauge"
        # Conservation: interval deltas sum to the run totals.
        assert sum(tl.get("sm.issued")) == sim.stats.timing.issued

    def test_sample_interval_changes_cache_key(self):
        plain = SimRequest("lib", scale="small")
        sampled = SimRequest("lib", scale="small", config_overrides=SAMPLED)
        assert fingerprint(plain.key_material()) != fingerprint(
            sampled.key_material()
        )

    def test_timeline_roundtrips_through_run_result(self):
        result = simulate(
            SimRequest("lib", scale="small", config_overrides=SAMPLED)
        )
        assert result.timeline is not None
        wire = json.loads(json.dumps(result.to_dict()))
        restored = RunResult.from_dict(wire)
        assert restored.timeline == result.timeline
        assert json.dumps(restored.to_dict(), sort_keys=True) == json.dumps(
            result.to_dict(), sort_keys=True
        )

    def test_timeline_survives_disk_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        request = SimRequest("lib", scale="small", config_overrides=SAMPLED)
        first = Session(scale="small", cache_dir=cache_dir).run(request)
        warm = Session(scale="small", cache_dir=cache_dir)
        before = SIM_COUNTER.value
        again = warm.run(request)
        assert SIM_COUNTER.value == before  # pure cache hit
        assert again.from_cache
        assert again.timeline == first.timeline


class TestSchemaInvalidation:
    def test_current_schema_is_v2(self):
        assert SCHEMA_VERSION == 2

    def test_stale_schema_entry_is_a_miss(self, tmp_path):
        """A cache written before the schema bump re-simulates cleanly."""
        cache_dir = tmp_path / "cache"
        session = Session(scale="small", cache_dir=cache_dir)
        session.functional_run("lib")
        (entry,) = cache_dir.glob("results/*/*.json")
        stale = json.loads(entry.read_text())
        stale["result"]["schema"] = SCHEMA_VERSION - 1
        stale["result"].pop("timeline", None)  # v1 had no timeline field
        entry.write_text(json.dumps(stale))

        fresh = Session(scale="small", cache_dir=cache_dir)
        before = SIM_COUNTER.value
        result = fresh.functional_run("lib")
        assert not result.from_cache
        assert SIM_COUNTER.value == before + 1


# ---------------------------------------------------------------------------
# Tracing end-to-end
# ---------------------------------------------------------------------------


class TestTracedRun:
    @pytest.fixture(scope="class")
    def traced(self):
        spec, gmem = small_launch()
        tracer = EventTracer()
        sim = run_kernel(
            spec.kernel,
            spec.grid_dim,
            spec.cta_dim,
            spec.params,
            gmem,
            config=GPUConfig(sample_interval=32),
            tracer=tracer,
        )
        return sim, tracer, tracer.export()

    def test_export_passes_schema_validation(self, traced):
        _, _, payload = traced
        assert validate_chrome_trace(payload, strict=True) == []

    def test_required_named_tracks_present(self, traced):
        _, _, payload = traced
        thread_names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "warp 0" in thread_names
        assert "compressors" in thread_names
        assert "decompressors" in thread_names
        counter_tracks = {
            e["name"] for e in payload["traceEvents"] if e["ph"] == "C"
        }
        assert {
            "bank accesses",
            "compressed occupancy",
            "gated banks",
            "collector occupancy",
            "issue",
        } <= counter_tracks
        assert len(thread_names | counter_tracks) >= 4

    def test_warp_spans_cover_instructions(self, traced):
        sim, _, payload = traced
        warp_spans = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and 1 <= e["tid"] <= 64
        ]
        assert warp_spans
        stage_names = {"collect", "exec", "write", "stall"}
        full_ops = [
            e for e in warp_spans if e["name"] not in stage_names
        ]
        # Every full-op span carries its issue pc and fits in the run.
        for span in full_ops:
            assert "pc" in span["args"]
            assert 0 <= span["ts"] <= sim.cycles
            assert span["ts"] + span["dur"] <= sim.cycles

    def test_tracer_without_sampling_config_still_samples(self):
        """A tracer alone turns on counter sampling (default interval)."""
        spec, gmem = small_launch()
        tracer = EventTracer()
        sim = run_kernel(
            spec.kernel,
            spec.grid_dim,
            spec.cta_dim,
            spec.params,
            gmem,
            tracer=tracer,
        )
        assert sim.stats.timeline is not None
        assert any(
            e["ph"] == "C" for e in tracer.export()["traceEvents"]
        )

    def test_traced_values_match_untraced_run(self):
        """Observability must not perturb simulation results."""
        spec, gmem = small_launch()
        plain = run_kernel(
            spec.kernel, spec.grid_dim, spec.cta_dim, spec.params, gmem
        )
        spec2, gmem2 = small_launch()
        traced = run_kernel(
            spec2.kernel,
            spec2.grid_dim,
            spec2.cta_dim,
            spec2.params,
            gmem2,
            config=GPUConfig(sample_interval=16),
            tracer=EventTracer(),
        )
        assert traced.cycles == plain.cycles
        assert json.dumps(
            traced.stats.value.to_dict(), sort_keys=True
        ) == json.dumps(plain.stats.value.to_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# Host-side profiling and logging
# ---------------------------------------------------------------------------


class TestHostProfiler:
    def test_phases_accumulate(self):
        profiler = HostProfiler()
        with profiler.phase("render"):
            pass
        with profiler.phase("render"):
            pass
        assert profiler.phase_calls["render"] == 2
        assert profiler.phases["render"] >= 0.0

    def test_to_dict_payload_shape(self):
        profiler = HostProfiler()
        with profiler.phase("fig03"):
            pass
        profiler.record_simulation(0.25, worker=1234)
        payload = json.loads(json.dumps(profiler.to_dict()))
        assert payload["phases"]["fig03"]["calls"] == 1
        assert payload["simulations"]["count"] == 1
        assert payload["workers"]["1234"]["simulations"] == 1
        assert payload["workers"]["1234"]["throughput_per_s"] == 4.0

    def test_hotspot_table_sorted(self):
        profiler = HostProfiler()
        profiler.phases = {"fast": 0.1, "slow": 2.0}
        profiler.phase_calls = {"fast": 1, "slow": 1}
        table = profiler.hotspot_table()
        assert table.index("slow") < table.index("fast")
        assert HostProfiler().hotspot_table() == "(no phases recorded)"

    def test_session_records_simulations(self, tmp_path):
        profiler = HostProfiler()
        session = Session(
            scale="small", cache_dir=tmp_path / "cache", profiler=profiler
        )
        session.functional_run("lib")
        assert profiler.sim_seconds.total == 1
        # Cache hits are not simulations.
        session.functional_run("lib")
        assert profiler.sim_seconds.total == 1


class TestLogging:
    def test_configure_is_idempotent(self):
        root = configure_logging("info")
        configure_logging("info")
        assert len(root.handlers) == 1

    def test_level_controls_output(self):
        stream = io.StringIO()
        configure_logging("warning", stream=stream)
        logger = get_logger("test.obs")
        logger.info("progress line")
        logger.warning("something odd")
        out = stream.getvalue()
        assert "progress line" not in out
        assert "something odd" in out
        # Restore the default so later tests see INFO-level behavior.
        configure_logging("info")

    def test_bare_message_format(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        get_logger("x").info("exactly this")
        assert stream.getvalue() == "exactly this\n"
        configure_logging("info")

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError, match="log level"):
            configure_logging("loud")

    def test_loggers_share_the_repro_root(self):
        assert get_logger("a.b").parent.name.startswith("repro")
        assert get_logger().name == "repro"
        assert isinstance(get_logger("x"), logging.Logger)

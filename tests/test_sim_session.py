"""Tests for the repro.sim session layer.

Covers the three pillars of the single-run discipline:

* **artifacts** — :class:`RunResult` and its stat components round-trip
  losslessly through JSON (property-based where cheap);
* **dedup** — the in-process memo and the canonical request keys make
  the Figure 9 + Figure 14 experiments share every (kernel, config)
  pair, so back-to-back they simulate each distinct pair exactly once;
* **cache** — a warm on-disk cache re-renders any figure with *zero*
  simulations and byte-identical tables, and the parallel executor
  produces results identical to serial execution.
"""

import json
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import TimingStats, ValueStats
from repro.core.codec import CompressionMode
from repro.gpu.trace import RegisterTrace, replay_trace
from repro.harness.experiments import fig03, fig09, fig14
from repro.sim import (
    SIM_COUNTER,
    ResultCache,
    RunResult,
    Session,
    SimRequest,
    code_version,
    simulate,
)
from repro.sim.cache import fingerprint
from repro.sim.result import SCHEMA_VERSION

SUBSET = ["lib", "pathfinder"]


def canonical_json(result: RunResult) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

counts = st.integers(min_value=0, max_value=2**40)
phase_pair = st.lists(counts, min_size=2, max_size=2)


@st.composite
def value_stats(draw):
    stats = ValueStats(collect_bdi=draw(st.booleans()))
    stats.similarity = np.asarray(
        draw(
            st.lists(
                st.lists(counts, min_size=4, max_size=4),
                min_size=2,
                max_size=2,
            )
        ),
        dtype=np.int64,
    )
    stats.instructions = draw(counts)
    stats.divergent_instructions = draw(counts)
    stats.writes = np.asarray(draw(phase_pair), dtype=np.int64)
    stats.achievable_banks = np.asarray(draw(phase_pair), dtype=np.int64)
    stats.stored_banks = np.asarray(draw(phase_pair), dtype=np.int64)
    stats.mode_histogram = Counter(
        draw(
            st.dictionaries(
                st.sampled_from(list(CompressionMode)),
                st.integers(min_value=1, max_value=2**40),
            )
        )
    )
    stats.bdi_histogram = Counter(
        draw(
            st.dictionaries(
                st.sampled_from(["b1d0", "b2d1", "b4d2", "zeros", "none"]),
                st.integers(min_value=1, max_value=2**40),
            )
        )
    )
    stats.movs_injected = draw(counts)
    stats.occupancy_sum = np.asarray(
        draw(
            st.lists(
                st.floats(
                    min_value=0.0, max_value=1e9, allow_nan=False
                ),
                min_size=2,
                max_size=2,
            )
        ),
        dtype=np.float64,
    )
    stats.occupancy_samples = np.asarray(draw(phase_pair), dtype=np.int64)
    return stats


class TestSerialization:
    @settings(max_examples=50, deadline=None)
    @given(stats=value_stats())
    def test_value_stats_roundtrip_lossless(self, stats):
        wire = json.loads(json.dumps(stats.to_dict()))
        restored = ValueStats.from_dict(wire)
        assert json.dumps(restored.to_dict(), sort_keys=True) == json.dumps(
            stats.to_dict(), sort_keys=True
        )
        assert restored.mode_histogram == stats.mode_histogram
        for mode in restored.mode_histogram:
            assert isinstance(mode, CompressionMode)

    @settings(max_examples=50, deadline=None)
    @given(
        cycles=counts,
        issued=counts,
        stalls=counts,
        wakeups=counts,
    )
    def test_timing_stats_roundtrip(self, cycles, issued, stalls, wakeups):
        stats = TimingStats(
            cycles=cycles,
            issued=issued,
            collector_stall_cycles=stalls,
            bank_wakeup_stalls=wakeups,
        )
        assert TimingStats.from_dict(
            json.loads(json.dumps(stats.to_dict()))
        ) == stats

    def test_timing_run_result_roundtrip_lossless(self):
        result = simulate(SimRequest("lib", scale="small"))
        wire = json.loads(json.dumps(result.to_dict()))
        restored = RunResult.from_dict(wire, from_cache=True)
        assert restored.from_cache and not result.from_cache
        assert canonical_json(restored) == canonical_json(result)
        # The re-priceable energy model survives: same totals either side.
        assert (
            restored.energy_model.breakdown().total_pj
            == result.energy_model.breakdown().total_pj
        )

    def test_functional_run_result_roundtrip_lossless(self):
        result = simulate(
            SimRequest("lib", scale="small", timing=False, collect_bdi=True)
        )
        wire = json.loads(json.dumps(result.to_dict()))
        assert canonical_json(RunResult.from_dict(wire)) == canonical_json(
            result
        )

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError, match="unsupported RunResult schema"):
            RunResult.from_dict({"schema": SCHEMA_VERSION + 1})

    def test_stats_compat_view(self):
        result = simulate(SimRequest("lib", scale="small"))
        stats = result.stats
        assert stats.benchmark == "lib"
        assert stats.value is result.value
        assert stats.energy_breakdown is result.energy


# ---------------------------------------------------------------------------
# Canonical request keys
# ---------------------------------------------------------------------------


class TestRequestKeys:
    def test_explicit_default_override_collapses(self):
        # bank_gate_delay=64 IS the default: spelling it out must not
        # change the cache key.
        plain = SimRequest("lib")
        spelled = SimRequest(
            "lib", config_overrides=(("bank_gate_delay", 64),)
        )
        assert fingerprint(plain.key_material()) == fingerprint(
            spelled.key_material()
        )

    def test_timing_knobs_ignored_for_functional_runs(self):
        a = SimRequest("lib", timing=False)
        b = SimRequest(
            "lib", timing=False, compression_latency=9, scheduler="lrr"
        )
        assert fingerprint(a.key_material()) == fingerprint(b.key_material())

    def test_distinct_configs_distinct_keys(self):
        a = SimRequest("lib")
        for other in (
            SimRequest("lib", policy="baseline"),
            SimRequest("lib", scheduler="lrr"),
            SimRequest("lib", compression_latency=4),
            SimRequest("lib", scale="small"),
            SimRequest("lib", timing=False),
            SimRequest("pathfinder"),
        ):
            assert fingerprint(a.key_material()) != fingerprint(
                other.key_material()
            )

    def test_key_material_carries_seed_and_code_version(self):
        material = SimRequest("lib").key_material()
        assert material["code"] == code_version()
        assert isinstance(material["seed"], int)


# ---------------------------------------------------------------------------
# In-process dedup (the run-once proof)
# ---------------------------------------------------------------------------


class TestDedup:
    def test_fig09_fig14_simulate_each_pair_exactly_once(self, tmp_path):
        session = Session(
            scale="small", subset=SUBSET, cache_dir=tmp_path / "cache"
        )
        before = SIM_COUNTER.value
        fig09(session)
        assert SIM_COUNTER.value - before == 4  # 2 benchmarks × {baseline, warped}
        fig14(session)
        # Figure 14 re-uses both GTO runs; only the LRR pairs are new.
        assert SIM_COUNTER.value - before == 8
        assert session.memo_hits >= 4
        # Re-rendering either figure is now simulation-free.
        fig09(session)
        fig14(session)
        assert SIM_COUNTER.value - before == 8

    def test_run_many_collapses_duplicates(self):
        session = Session(scale="small", use_disk_cache=False)
        before = SIM_COUNTER.value
        requests = [
            SimRequest("lib", scale="small", timing=False),
            SimRequest("lib", scale="small", timing=False),
            SimRequest(
                "lib",
                scale="small",
                timing=False,
                compression_latency=77,  # timing-only: same canonical key
            ),
        ]
        out = session.run_many(requests)
        assert SIM_COUNTER.value - before == 1
        assert len(out) == 2  # two distinct request spellings
        assert out[requests[0]] is out[requests[2]]

    def test_memo_returns_same_object(self):
        session = Session(scale="small", use_disk_cache=False)
        assert session.functional_run("lib") is session.functional_run("lib")


# ---------------------------------------------------------------------------
# On-disk cache
# ---------------------------------------------------------------------------


class TestDiskCache:
    def test_warm_cache_zero_simulations_identical_tables(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = Session(scale="small", subset=SUBSET, cache_dir=cache_dir)
        first = fig03(cold).render()
        assert cold.simulated > 0

        warm = Session(scale="small", subset=SUBSET, cache_dir=cache_dir)
        before = SIM_COUNTER.value
        second = fig03(warm).render()
        assert SIM_COUNTER.value == before
        assert warm.simulated == 0
        assert warm.disk_hits > 0
        assert second == first  # byte-identical re-render

    def test_cached_results_flagged(self, tmp_path):
        cache_dir = tmp_path / "cache"
        Session(scale="small", cache_dir=cache_dir).functional_run("lib")
        warm = Session(scale="small", cache_dir=cache_dir)
        assert warm.functional_run("lib").from_cache

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache_dir = tmp_path / "cache"
        Session(scale="small", cache_dir=cache_dir).functional_run("lib")
        cache = ResultCache(cache_dir)
        assert len(cache) == 1
        (entry,) = cache_dir.glob("results/*/*.json")
        entry.write_text("{not json")
        session = Session(scale="small", cache_dir=cache_dir)
        before = SIM_COUNTER.value
        assert not session.functional_run("lib").from_cache
        assert SIM_COUNTER.value == before + 1

    def test_code_version_partitions_cache(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cache"
        Session(scale="small", cache_dir=cache_dir).functional_run("lib")
        monkeypatch.setattr(
            "repro.sim.cache.code_version", lambda: "different"
        )
        monkeypatch.setattr(
            "repro.sim.session.code_version", lambda: "different"
        )
        session = Session(scale="small", cache_dir=cache_dir)
        assert not session.functional_run("lib").from_cache
        assert session.simulated == 1


# ---------------------------------------------------------------------------
# Trace handles
# ---------------------------------------------------------------------------


class TestTraceHandles:
    def test_captured_trace_replays_to_identical_stats(self, tmp_path):
        session = Session(scale="small", cache_dir=tmp_path / "cache")
        result = session.functional_run("pathfinder", capture_trace=True)
        assert result.trace_path is not None
        trace = RegisterTrace.load(result.trace_path)
        replayed = replay_trace(trace, policy=result.policy)
        assert json.dumps(
            replayed.value.to_dict(), sort_keys=True
        ) == json.dumps(result.value.to_dict(), sort_keys=True)

    def test_missing_trace_file_is_a_cache_miss(self, tmp_path):
        import os

        cache_dir = tmp_path / "cache"
        first = Session(scale="small", cache_dir=cache_dir).functional_run(
            "lib", capture_trace=True
        )
        os.remove(first.trace_path)
        session = Session(scale="small", cache_dir=cache_dir)
        again = session.functional_run("lib", capture_trace=True)
        assert not again.from_cache
        assert session.simulated == 1

    def test_trace_survives_without_disk_cache(self):
        session = Session(scale="small", use_disk_cache=False)
        result = session.functional_run("lib", capture_trace=True)
        assert result.trace_path is not None
        assert len(RegisterTrace.load(result.trace_path)) > 0


# ---------------------------------------------------------------------------
# Parallel execution
# ---------------------------------------------------------------------------


class TestParallel:
    def test_parallel_equals_serial(self, tmp_path):
        requests = [
            SimRequest("lib", scale="small", policy="baseline"),
            SimRequest("lib", scale="small", policy="warped"),
            SimRequest("pathfinder", scale="small", timing=False),
        ]
        serial = Session(scale="small", use_disk_cache=False).run_many(
            requests
        )
        parallel_session = Session(
            scale="small",
            cache_dir=tmp_path / "cache",
            max_workers=2,
        )
        before = SIM_COUNTER.value
        parallel = parallel_session.run_many(requests)
        assert SIM_COUNTER.value - before == len(requests)
        assert parallel_session.simulated == len(requests)
        for request in requests:
            assert canonical_json(parallel[request]) == canonical_json(
                serial[request]
            )
        # Pooled results landed in the memo and the disk cache.
        assert ResultCache(tmp_path / "cache") and len(
            ResultCache(tmp_path / "cache")
        ) == len(requests)

"""Unit and property tests for similarity analysis and run statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.similarity import (
    BDI_CHOICES,
    SimilarityBin,
    best_bdi_choice,
    classify_write,
    successive_distances,
)
from repro.analysis.stats import ValueStats
from repro.core.bdi import ALL_ENCODINGS, best_encoding
from repro.core.codec import CompressionMode


def lanes(values):
    return np.asarray(values, dtype=np.uint32)


FULL = np.ones(32, dtype=bool)


class TestSuccessiveDistances:
    def test_identical(self):
        assert (successive_distances(lanes([5] * 32), FULL) == 0).all()

    def test_sequence(self):
        d = successive_distances(lanes(range(0, 64, 2)), FULL)
        assert (d == 2).all()

    def test_only_active_lanes_considered(self):
        values = lanes([0, 10 ** 6, 2] + [0] * 29)
        mask = np.zeros(32, dtype=bool)
        mask[[0, 2]] = True  # skip the wild middle lane
        d = successive_distances(values, mask)
        np.testing.assert_array_equal(d, [2])

    def test_single_lane_has_no_distances(self):
        mask = np.zeros(32, dtype=bool)
        mask[0] = True
        assert successive_distances(lanes(range(32)), mask).size == 0

    def test_signed_interpretation(self):
        # 0xFFFFFFFF is -1 signed: distance to 1 is 2, not 2**32 - 2.
        d = successive_distances(lanes([0xFFFFFFFF, 1] + [1] * 30), FULL)
        assert d[0] == 2


class TestClassifyWrite:
    def test_zero_bin(self):
        assert classify_write(lanes([9] * 32), FULL) is SimilarityBin.ZERO

    def test_128_bin_boundary(self):
        assert (
            classify_write(lanes([0, 128] + [128] * 30), FULL)
            is SimilarityBin.D128
        )

    def test_32k_bin(self):
        assert (
            classify_write(lanes([0, 129] + [129] * 30), FULL)
            is SimilarityBin.D32K
        )
        assert (
            classify_write(lanes([0, 1 << 15] + [0] * 30), FULL)
            is SimilarityBin.D32K
        )

    def test_random_bin(self):
        assert (
            classify_write(lanes([0, (1 << 15) + 1] + [0] * 30), FULL)
            is SimilarityBin.RANDOM
        )

    def test_single_active_lane_is_zero_bin(self):
        mask = np.zeros(32, dtype=bool)
        mask[3] = True
        assert classify_write(lanes(range(32)), mask) is SimilarityBin.ZERO

    def test_labels(self):
        assert [b.label for b in SimilarityBin] == ["zero", "128", "32K", "random"]


class TestBestBdiChoice:
    def test_identical_prefers_4_0(self):
        assert best_bdi_choice(lanes([3] * 32)) == "<4,0>"

    def test_sequential_prefers_4_1(self):
        assert best_bdi_choice(lanes(range(32))) == "<4,1>"

    def test_pairwise_structure_prefers_8_x(self):
        # Low words ramp gently, high words constant: 8-byte chunks have
        # tiny deltas while 4-byte deltas blow past two bytes.
        values = []
        for i in range(16):
            values += [i * 1000, 7]
        assert best_bdi_choice(lanes(values)) == "<8,2>"

    def test_random_uncompressed(self):
        rng = np.random.default_rng(3)
        values = lanes(rng.integers(0, 1 << 32, 32, dtype=np.uint64))
        assert best_bdi_choice(values) == "uncompressed"

    def test_odd_lane_count_rejected(self):
        with pytest.raises(ValueError):
            best_bdi_choice(lanes([1] * 31))

    @settings(max_examples=150, deadline=None)
    @given(
        values=st.lists(
            st.integers(0, (1 << 32) - 1), min_size=32, max_size=32
        )
    )
    def test_property_matches_generic_search(self, values):
        arr = lanes(values)
        fast = best_bdi_choice(arr)
        generic = best_encoding(arr.tobytes(), ALL_ENCODINGS)
        if generic is None:
            assert fast == "uncompressed"
        else:
            assert fast == str(generic)
        assert fast in BDI_CHOICES


class TestValueStats:
    def _record(self, stats, divergent=False, mode=CompressionMode.B4D0):
        stats.record_write(
            lanes([1] * 32),
            divergent,
            achievable_mode=mode,
            stored_banks=mode.banks if not divergent else 8,
            stored_mode=mode if not divergent else CompressionMode.UNCOMPRESSED,
        )

    def test_similarity_fractions(self):
        stats = ValueStats()
        self._record(stats)
        self._record(stats)
        fractions = stats.similarity_fractions(divergent=False)
        assert fractions[SimilarityBin.ZERO] == 1.0
        assert stats.similarity_fractions(divergent=True)[
            SimilarityBin.ZERO
        ] == 0.0

    def test_nondivergent_fraction(self):
        stats = ValueStats()
        for div in (False, False, False, True):
            stats.record_instruction(div)
        assert stats.nondivergent_fraction == 0.75
        assert ValueStats().nondivergent_fraction == 1.0

    def test_compression_ratios(self):
        stats = ValueStats()
        self._record(stats, mode=CompressionMode.B4D1)
        assert stats.compression_ratio(divergent=False) == pytest.approx(8 / 3)
        assert stats.compression_ratio(divergent=True) == 1.0  # no writes

    def test_stored_vs_achievable(self):
        stats = ValueStats()
        self._record(stats, divergent=True, mode=CompressionMode.B4D0)
        # Achievable sees the compressible value; stored is raw.
        assert stats.compression_ratio(True, achievable=True) == 8.0
        assert stats.compression_ratio(True, achievable=False) == 1.0

    def test_mov_fraction(self):
        stats = ValueStats()
        stats.record_instruction(False)
        stats.record_mov()
        assert stats.mov_fraction == 0.5

    def test_occupancy_na_when_phase_absent(self):
        stats = ValueStats()
        stats.record_occupancy(0.5, divergent=False)
        assert stats.compressed_register_fraction(False) == 0.5
        assert stats.compressed_register_fraction(True) is None

    def test_bdi_histogram_only_when_enabled(self):
        stats = ValueStats(collect_bdi=True)
        self._record(stats)
        assert stats.bdi_fractions() == {"<4,0>": 1.0}
        assert ValueStats().bdi_fractions() == {}

    def test_merge(self):
        a, b = ValueStats(), ValueStats()
        self._record(a)
        self._record(b, divergent=True)
        b.record_instruction(True)
        b.record_mov()
        a.merge(b)
        assert int(a.writes.sum()) == 2
        assert a.movs_injected == 1
        assert a.divergent_instructions == 1

"""Unit tests for energy parameters and the wire-energy model."""

import pytest

from repro.power.params import EnergyParams
from repro.power.wires import wire_energy_per_bank_pj


class TestEnergyParams:
    def test_table3_defaults(self):
        p = EnergyParams()
        assert p.bank_access_energy_pj == 7.0
        assert p.bank_leakage_mw == 5.8
        assert p.compression_energy_pj == 23.0
        assert p.decompression_energy_pj == 21.0
        assert p.clock_ghz == 1.4

    def test_cycle_time(self):
        assert EnergyParams(clock_ghz=2.0).cycle_time_ns == pytest.approx(0.5)

    def test_leakage_conversion(self):
        # 5.8 mW at 1.4 GHz = 5.8/1.4 pJ per cycle.
        p = EnergyParams()
        assert p.leakage_pj_per_cycle(5.8) == pytest.approx(5.8 / 1.4)

    def test_scaled_bank_access(self):
        p = EnergyParams().scaled(bank_access=2.0)
        assert p.bank_access_energy_pj == 14.0
        assert p.compression_energy_pj == 23.0  # untouched

    def test_scaled_comp_decomp(self):
        p = EnergyParams().scaled(comp_decomp=2.5)
        assert p.compression_energy_pj == pytest.approx(57.5)
        assert p.decompression_energy_pj == pytest.approx(52.5)
        assert p.bank_access_energy_pj == 7.0

    def test_scaled_wire_activity(self):
        p = EnergyParams().scaled(wire_activity=0.9)
        assert p.wire_activity == 0.9

    def test_scaled_returns_new_object(self):
        p = EnergyParams()
        assert p.scaled(bank_access=2.0) is not p
        assert p.bank_access_energy_pj == 7.0

    def test_activity_bounds(self):
        with pytest.raises(ValueError):
            EnergyParams(wire_activity=1.5)
        with pytest.raises(ValueError):
            EnergyParams(wire_activity=-0.1)

    def test_clock_positive(self):
        with pytest.raises(ValueError):
            EnergyParams(clock_ghz=0.0)


class TestWireEnergy:
    def test_anchors_table3_value(self):
        # 300 fF/mm, 1 V, 1 mm, 128 bits, 50% activity -> 9.6 pJ.
        assert wire_energy_per_bank_pj(EnergyParams()) == pytest.approx(9.6)

    def test_linear_in_activity(self):
        p = EnergyParams()
        assert wire_energy_per_bank_pj(p, activity=1.0) == pytest.approx(19.2)
        assert wire_energy_per_bank_pj(p, activity=0.0) == 0.0

    def test_linear_in_capacitance(self):
        p = EnergyParams(wire_capacitance_ff_per_mm=600.0)
        assert wire_energy_per_bank_pj(p) == pytest.approx(19.2)

    def test_quadratic_in_voltage(self):
        p = EnergyParams(voltage=2.0)
        assert wire_energy_per_bank_pj(p) == pytest.approx(9.6 * 4)

    def test_activity_override_bounds(self):
        with pytest.raises(ValueError):
            wire_energy_per_bank_pj(EnergyParams(), activity=2.0)

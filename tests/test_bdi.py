"""Unit and property tests for the generic BDI implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bdi import (
    ALL_ENCODINGS,
    TABLE1_ENCODINGS,
    WARPED_ENCODINGS,
    BDIBlock,
    Encoding,
    best_encoding,
    can_encode,
    compressed_size,
    compressible_sizes,
    decode,
    encode,
    from_bytes,
    to_bytes,
)


def warp_bytes(values) -> bytes:
    """Pack 32-bit values little-endian, as a warp register would be."""
    return np.asarray(values, dtype=np.uint32).tobytes()


class TestEncoding:
    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            Encoding(3, 1)

    def test_rejects_delta_not_smaller_than_base(self):
        with pytest.raises(ValueError):
            Encoding(4, 4)

    def test_rejects_negative_delta(self):
        with pytest.raises(ValueError):
            Encoding(4, -1)

    def test_str(self):
        assert str(Encoding(4, 1)) == "<4,1>"


class TestCompressedSize:
    """Paper equation (1) and the Table 1 rows derived from it."""

    @pytest.mark.parametrize(
        "enc,size,banks",
        [
            (Encoding(1, 0), 1, 1),
            (Encoding(2, 1), 65, 5),
            (Encoding(4, 0), 4, 1),
            (Encoding(4, 1), 35, 3),
            (Encoding(4, 2), 66, 5),
            (Encoding(8, 0), 8, 1),
            (Encoding(8, 1), 23, 2),
            (Encoding(8, 2), 38, 3),
            (Encoding(8, 4), 68, 5),
        ],
    )
    def test_table1(self, enc, size, banks):
        assert enc.compressed_size(128) == size
        assert enc.banks(128) == banks

    def test_table1_constant_matches(self):
        assert len(TABLE1_ENCODINGS) == 9

    def test_input_not_multiple_of_base_rejected(self):
        with pytest.raises(ValueError):
            compressed_size(130, 4, 1)


class TestCanEncode:
    def test_identical_values_fit_delta_zero(self):
        data = warp_bytes([7] * 32)
        assert can_encode(data, Encoding(4, 0))

    def test_distinct_values_fail_delta_zero(self):
        data = warp_bytes([7] * 31 + [8])
        assert not can_encode(data, Encoding(4, 0))

    def test_small_deltas_fit_one_byte(self):
        data = warp_bytes(range(100, 132))
        assert can_encode(data, Encoding(4, 1))

    def test_delta_127_fits_one_byte(self):
        data = warp_bytes([1000, 1127] + [1000] * 30)
        assert can_encode(data, Encoding(4, 1))

    def test_delta_minus_128_fits_one_byte(self):
        data = warp_bytes([1000, 872] + [1000] * 30)
        assert can_encode(data, Encoding(4, 1))

    def test_delta_128_needs_two_bytes(self):
        data = warp_bytes([1000, 1128] + [1000] * 30)
        assert not can_encode(data, Encoding(4, 1))
        assert can_encode(data, Encoding(4, 2))

    def test_wraparound_delta(self):
        # 0x00000000 - 0xFFFFFFFF = +1 with wrap-around arithmetic.
        data = warp_bytes([0xFFFFFFFF, 0] + [0xFFFFFFFF] * 30)
        assert can_encode(data, Encoding(4, 1))

    def test_random_values_do_not_compress(self):
        rng = np.random.default_rng(1)
        data = warp_bytes(rng.integers(0, 1 << 32, 32, dtype=np.uint64))
        assert not any(can_encode(data, e) for e in WARPED_ENCODINGS)


class TestEncodeDecode:
    def test_roundtrip_simple(self):
        data = warp_bytes(range(32))
        block = encode(data, Encoding(4, 1))
        assert decode(block) == data

    def test_encode_uncompressible_raises(self):
        data = warp_bytes([0, 1 << 20] + [0] * 30)
        with pytest.raises(ValueError):
            encode(data, Encoding(4, 1))

    def test_block_size_matches_static_formula(self):
        data = warp_bytes(range(32))
        block = encode(data, Encoding(4, 2))
        assert block.size == 66

    def test_bytes_roundtrip(self):
        # Even lanes ramp gently, odd lanes are constant: the 4-byte
        # deltas stay within one byte and the 8-byte chunk deltas (which
        # see only the even-lane ramp, the odd lanes being the identical
        # high words) stay within four bytes.
        values = [1000 + i if i % 2 == 0 else 1050 for i in range(32)]
        data = warp_bytes(values)
        for enc in (Encoding(4, 1), Encoding(4, 2), Encoding(8, 4)):
            block = encode(data, enc)
            payload = to_bytes(block)
            assert len(payload) == enc.compressed_size(128)
            restored = from_bytes(payload, enc, 128)
            assert decode(restored) == data

    def test_from_bytes_length_checked(self):
        with pytest.raises(ValueError):
            from_bytes(b"\x00" * 10, Encoding(4, 1), 128)

    def test_delta_zero_roundtrip(self):
        data = warp_bytes([42] * 32)
        block = encode(data, Encoding(4, 0))
        assert block.deltas == (0,) * 31
        assert decode(block) == data
        assert to_bytes(block) == (42).to_bytes(4, "little")


class TestBestEncoding:
    def test_identical_values_pick_smallest(self):
        data = warp_bytes([5] * 32)
        # <4,0> and <8,0> both need one bank; <4,0> is smaller in bytes.
        assert best_encoding(data) == Encoding(4, 0)

    def test_sequential_values_pick_4_1(self):
        data = warp_bytes(range(1 << 20, (1 << 20) + 32))
        assert best_encoding(data) == Encoding(4, 1)

    def test_uncompressible_returns_none(self):
        rng = np.random.default_rng(2)
        data = warp_bytes(rng.integers(0, 1 << 32, 32, dtype=np.uint64))
        assert best_encoding(data) is None

    def test_candidate_restriction(self):
        data = warp_bytes([5] * 32)
        assert best_encoding(data, [Encoding(4, 2)]) == Encoding(4, 2)

    def test_no_benefit_means_none(self):
        # Compressible only to a size needing all 8 banks is pointless —
        # the candidate list here offers no such encoding, but verify the
        # raw-banks comparison through a crafted 16-byte input.
        data = bytes(range(16))
        assert best_encoding(data, [Encoding(8, 4)]) is None

    def test_compressible_sizes_map(self):
        data = warp_bytes([9] * 32)
        sizes = compressible_sizes(data)
        assert sizes[Encoding(4, 0)] == 4
        assert sizes[Encoding(8, 0)] == 8
        assert set(sizes) == set(ALL_ENCODINGS)


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
u32 = st.integers(min_value=0, max_value=(1 << 32) - 1)


@settings(max_examples=150, deadline=None)
@given(base=u32, deltas=st.lists(st.integers(-128, 127), min_size=31, max_size=31))
def test_property_encode_decode_roundtrip_4_1(base, deltas):
    values = [(base + d) % (1 << 32) for d in [0] + deltas]
    data = warp_bytes(values)
    assert can_encode(data, Encoding(4, 1))
    assert decode(encode(data, Encoding(4, 1))) == data


@settings(max_examples=150, deadline=None)
@given(values=st.lists(u32, min_size=32, max_size=32))
def test_property_any_register_decodes_exactly_when_encodable(values):
    data = warp_bytes(values)
    for enc in ALL_ENCODINGS:
        if can_encode(data, enc):
            block = encode(data, enc)
            assert decode(block) == data
            assert from_bytes(to_bytes(block), enc, len(data)) == block


@settings(max_examples=150, deadline=None)
@given(values=st.lists(u32, min_size=32, max_size=32))
def test_property_best_encoding_beats_all_candidates(values):
    data = warp_bytes(values)
    best = best_encoding(data)
    sizes = compressible_sizes(data)
    if best is None:
        assert all(enc.banks(128) >= 8 for enc in sizes)
    else:
        assert best in sizes
        assert all(best.banks(128) <= enc.banks(128) for enc in sizes)


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(st.integers(0, 255), min_size=32, max_size=32),
)
def test_property_small_values_always_compress(values):
    data = warp_bytes(values)
    assert can_encode(data, Encoding(4, 2))

"""The trace-replay sweep tier: byte-identity, zero-sim sweeps, cache keys.

The tier's contract (see :mod:`repro.harness.sweeps`):

* a replayed request returns results byte-identical to a fresh
  trace-capturing simulation of the same (benchmark, policy) pair —
  checked here across the full 12-kernel registry suite;
* a policy sweep over a warm trace cache performs **zero** new
  simulations (one baseline capture per benchmark × scale, ever);
* replay artifacts are content-addressed separately from plain
  functional runs and from their capture sources, so the tiers can
  never serve each other's cache entries by accident.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.harness.engine import ExperimentSpec, Variant, experiment
from repro.harness.experiments import EXPERIMENTS
from repro.harness.sweeps import replay_spec, replay_variant, replayable
from repro.kernels import benchmark_names
from repro.sim.result import RunResult
from repro.sim.session import SIM_COUNTER, Session, SimRequest, fingerprint, simulate

POLICIES = ("warped", "static-4-0", "static-4-1", "static-4-2")


def _session(tmp_path, **kwargs) -> Session:
    return Session(scale="small", cache_dir=str(tmp_path / "cache"), **kwargs)


def _comparable(result: RunResult) -> dict:
    """to_dict minus provenance that legitimately differs between tiers.

    ``trace_path`` points at the baseline capture for replayed results
    but at the run's own artifact (or nothing) for fresh simulations;
    ``from_cache`` is session bookkeeping.  Everything else — the full
    value-statistics payload included — must match byte for byte.
    """
    data = result.to_dict()
    data.pop("trace_path", None)
    data.pop("from_cache", None)
    return data


# ----------------------------------------------------------------------
# Byte-identity across the registry suite
# ----------------------------------------------------------------------
def test_replay_byte_identical_across_registry(tmp_path):
    session = _session(tmp_path)
    names = benchmark_names()
    assert len(names) == 12
    for name in names:
        replayed = session.replay_run(name, policy="warped")
        fresh = simulate(
            SimRequest(
                benchmark=name,
                policy="warped",
                timing=False,
                scale="small",
                capture_trace=True,
            )
        )
        assert json.dumps(
            _comparable(replayed), sort_keys=True
        ) == json.dumps(_comparable(fresh), sort_keys=True), name


def test_replay_matches_plain_functional_value_fields(tmp_path):
    """Non-occupancy value stats also match a plain functional run.

    A live functional run samples occupancy per *instruction* while the
    replay prices it per *write*, so those two fields legitimately
    differ; every other statistic the figures consume must agree.
    """
    session = _session(tmp_path)
    replayed = session.replay_run("bfs", policy="warped")
    live = simulate(
        SimRequest(
            benchmark="bfs", policy="warped", timing=False, scale="small"
        )
    )
    got = replayed.value.to_dict()
    want = live.value.to_dict()
    for field in ("occupancy_sum", "occupancy_samples"):
        got.pop(field), want.pop(field)
    assert got == want


# ----------------------------------------------------------------------
# Zero new simulations on a warm trace cache
# ----------------------------------------------------------------------
def test_policy_sweep_replays_with_zero_simulations(tmp_path):
    warm = _session(tmp_path)
    for name in warm.benchmarks():
        warm.replay_run(name, policy="warped")

    sweep = _session(tmp_path)
    SIM_COUNTER.reset()
    for name in sweep.benchmarks():
        for policy in POLICIES:
            result = sweep.replay_run(name, policy=policy)
            assert result.timing_mode is False
    assert SIM_COUNTER.value == 0
    assert sweep.simulated == 0
    # The warped cells come straight from the warm pass's cache; the
    # three static policies are fresh replays of the stored traces.
    assert sweep.replayed == len(sweep.benchmarks()) * (len(POLICIES) - 1)
    assert sweep.disk_hits >= len(sweep.benchmarks())


def test_replay_spec_reprices_experiment_with_zero_simulations(tmp_path):
    fig15 = EXPERIMENTS["fig15"]
    assert replayable(fig15)

    fresh_session = _session(tmp_path, subset=["bfs", "nw", "spmv"])
    fresh = fig15(fresh_session).render()

    replay_session = _session(tmp_path, subset=["bfs", "nw", "spmv"])
    SIM_COUNTER.reset()
    replayed = replay_spec(fig15)(replay_session).render()
    # The fresh pass captured no traces, so the replay pass pays one
    # baseline capture per benchmark — and nothing per policy.
    assert SIM_COUNTER.value == 3
    assert replay_session.replayed == 3 * len(fig15.variants)
    assert replayed == fresh

    warm_session = _session(tmp_path, subset=["bfs", "nw", "spmv"])
    SIM_COUNTER.reset()
    assert replay_spec(fig15)(warm_session).render() == fresh
    assert SIM_COUNTER.value == 0
    assert warm_session.simulated == 0


def test_missing_trace_artifact_is_recaptured(tmp_path):
    session = _session(tmp_path)
    first = session.replay_run("bfs", policy="warped")
    assert first.trace_path is not None
    os.remove(first.trace_path)

    again = _session(tmp_path)
    result = again.replay_run("bfs", policy="static-4-1")
    assert again.simulated == 1  # one re-capture, not one per policy
    assert again.replayed == 1
    assert result.value.to_dict() == _session(
        tmp_path
    ).replay_run("bfs", policy="static-4-1").value.to_dict()


# ----------------------------------------------------------------------
# Cache-key separation
# ----------------------------------------------------------------------
def test_replay_requests_are_content_addressed_separately():
    plain = SimRequest(
        benchmark="bfs", policy="warped", timing=False, scale="small"
    )
    replay = SimRequest(
        benchmark="bfs",
        policy="warped",
        timing=False,
        scale="small",
        replay=True,
    )
    capture = SimRequest(
        benchmark="bfs",
        policy="warped",
        timing=False,
        scale="small",
        capture_trace=True,
    )
    keys = {
        fingerprint(plain.key_material()),
        fingerprint(replay.key_material()),
        fingerprint(capture.key_material()),
    }
    assert len(keys) == 3


def test_replay_flag_folds_away_for_timing_requests():
    timing = SimRequest(benchmark="bfs", policy="warped", scale="small")
    timing_replay = SimRequest(
        benchmark="bfs", policy="warped", scale="small", replay=True
    )
    assert fingerprint(timing.key_material()) == fingerprint(
        timing_replay.key_material()
    )


def test_simulate_rejects_replay_requests():
    request = SimRequest(
        benchmark="bfs",
        policy="warped",
        timing=False,
        scale="small",
        replay=True,
    )
    with pytest.raises(ValueError, match="replay tier"):
        simulate(request)


# ----------------------------------------------------------------------
# Spec plumbing
# ----------------------------------------------------------------------
def test_replay_variant_rejects_timing_variants():
    with pytest.raises(ValueError, match="timing"):
        replay_variant(Variant("timed"))


def test_replay_spec_rejects_mixed_specs():
    @experiment(
        "mixed",
        "one timing, one functional",
        variants=[Variant("timed"), Variant("func", timing=False)],
    )
    def mixed(grid):  # pragma: no cover - never evaluated
        raise AssertionError

    assert isinstance(mixed, ExperimentSpec)
    assert not replayable(mixed)
    with pytest.raises(ValueError, match="timing"):
        replay_spec(mixed)


def test_replay_spec_marks_every_variant():
    fig15 = EXPERIMENTS["fig15"]
    twin = replay_spec(fig15)
    assert twin.exp_id == fig15.exp_id
    assert all(v.replay for v in twin.variants)
    assert all(not v.replay for v in fig15.variants)

"""Unit tests for compressor/decompressor unit pools."""

import pytest

from repro.core.units import UnitPool


class TestUnitPool:
    def test_pipelined_pool_accepts_one_per_unit_per_cycle(self):
        pool = UnitPool(count=2, latency=3)
        assert pool.try_start(10) == 13
        assert pool.try_start(10) == 13
        assert pool.try_start(10) is None  # both issue slots taken
        assert pool.try_start(11) == 14  # pipelined: free next cycle

    def test_unpipelined_pool(self):
        pool = UnitPool(count=1, latency=4, initiation_interval=4)
        assert pool.try_start(0) == 4
        assert pool.try_start(1) is None
        assert pool.try_start(3) is None
        assert pool.try_start(4) == 8

    def test_zero_latency(self):
        pool = UnitPool(count=1, latency=0)
        assert pool.try_start(5) == 5

    def test_activation_counting(self):
        pool = UnitPool(count=4, latency=1)
        for c in range(10):
            pool.try_start(c)
        assert pool.activations == 10

    def test_free_at(self):
        pool = UnitPool(count=3, latency=2)
        assert pool.free_at(0) == 3
        pool.try_start(0)
        assert pool.free_at(0) == 2
        assert pool.free_at(1) == 3

    def test_reset(self):
        pool = UnitPool(count=1, latency=2)
        pool.try_start(0)
        pool.reset()
        assert pool.activations == 0
        assert pool.try_start(0) == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(count=0, latency=1),
            dict(count=1, latency=-1),
            dict(count=1, latency=1, initiation_interval=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            UnitPool(**kwargs)

"""Satellite coverage: crash/concurrency-safe cache writes and the
Session cache-effectiveness probes exported through repro.obs.
"""

import json
import multiprocessing
import os

from repro.obs.metrics import MetricRegistry
from repro.sim import ResultCache, Session, SimRequest, simulate
from repro.sim.cache import fingerprint


def _hammer_put(root: str, key: str, payload: dict, rounds: int) -> None:
    """Worker: repeatedly publish the same entry (distinct tempfiles)."""
    from repro.sim.result import RunResult

    cache = ResultCache(root)
    result = RunResult.from_dict(payload)
    material = {"who": os.getpid()}
    for _ in range(rounds):
        cache.put(key, material, result)


class TestAtomicPut:
    def test_concurrent_writers_never_expose_torn_entries(self, tmp_path):
        """Parallel processes hammering one key: every read of the entry
        file sees complete, parseable JSON with the full result."""
        request = SimRequest(benchmark="lib", timing=False, scale="small")
        result = simulate(request)
        key = fingerprint(request.key_material())
        payload = result.to_dict()
        root = str(tmp_path / "cache")

        ctx = multiprocessing.get_context("spawn")
        writers = [
            ctx.Process(
                target=_hammer_put, args=(root, key, payload, 40)
            )
            for _ in range(3)
        ]
        for proc in writers:
            proc.start()

        cache = ResultCache(root)
        entry = cache._entry_path(key)
        reads = 0
        while any(proc.is_alive() for proc in writers):
            if entry.exists():
                # Raw read: any torn write would raise here.
                raw = json.loads(entry.read_text())
                assert raw["key"] == key
                assert raw["result"]["benchmark"] == "lib"
                loaded = cache.get(key)
                assert loaded is not None
                assert loaded.cycles == result.cycles
                reads += 1
        for proc in writers:
            proc.join()
            assert proc.exitcode == 0
        assert reads > 0
        # No orphaned tempfiles survive a clean run.
        leftovers = list(entry.parent.glob("*.tmp"))
        assert leftovers == []

    def test_failed_write_leaves_no_tempfile(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        request = SimRequest(benchmark="lib", timing=False, scale="small")
        result = simulate(request)
        key = fingerprint(request.key_material())

        class Unserializable:
            pass

        try:
            cache.put(key, {"bad": Unserializable()}, result)
        except TypeError:
            pass
        parent = cache._entry_path(key).parent
        assert not list(parent.glob("*.tmp"))
        assert cache.get(key) is None


class TestSessionProbes:
    def test_cache_counters_exported_as_probes(self, tmp_path):
        session = Session(
            scale="small", cache_dir=tmp_path / "cache", use_disk_cache=True
        )
        registry = MetricRegistry(enabled=True)
        session.register_metrics(registry)
        names = registry.names()
        for suffix in (
            "memo_hits",
            "disk_hits",
            "dedup_hits",
            "simulated",
            "memo_size",
        ):
            assert f"session.cache.{suffix}" in names

        request = session.request("lib", timing=False)
        session.run(request)
        assert registry.read("session.cache.simulated") == 1
        assert registry.read("session.cache.memo_hits") == 0
        session.run(request)
        assert registry.read("session.cache.memo_hits") == 1
        assert registry.read("session.cache.memo_size") == 1

        # A fresh session over the same directory reads from disk.
        warm = Session(
            scale="small", cache_dir=tmp_path / "cache", use_disk_cache=True
        )
        warm_registry = MetricRegistry(enabled=True)
        warm.register_metrics(warm_registry)
        warm.run(request)
        assert warm_registry.read("session.cache.disk_hits") == 1
        assert warm_registry.read("session.cache.simulated") == 0

    def test_dedup_hits_count_equivalent_requests(self):
        session = Session(scale="small", use_disk_cache=False)
        # Functional runs drop timing-only knobs from the key, so these
        # distinct request objects are one cache entry.
        requests = [
            SimRequest(benchmark="lib", timing=False, scale="small"),
            SimRequest(
                benchmark="lib",
                timing=False,
                scale="small",
                compression_latency=7,
            ),
            SimRequest(
                benchmark="lib",
                timing=False,
                scale="small",
                decompression_latency=5,
            ),
        ]
        out = session.run_many(requests)
        assert session.simulated == 1
        assert session.dedup_hits == 2
        assert len({id(result) for result in out.values()}) == 1

    def test_probe_kinds_are_delta_for_counters(self):
        session = Session(scale="small", use_disk_cache=False)
        registry = MetricRegistry(enabled=True)
        session.register_metrics(registry, prefix="s")
        assert registry.kind("s.memo_hits") == "delta"
        assert registry.kind("s.memo_size") == "gauge"

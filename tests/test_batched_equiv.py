"""Batched-dispatch equivalence suite: batched-on == batched-off.

The cross-warp batched fast path (:mod:`repro.gpu.batch`) must be
observationally invisible: gathering ready warps into same-opcode
groups and replaying pre-evaluated results may change nothing but host
wall-clock.  These tests drive :mod:`repro.verify.fastpath`'s batched
comparer over every registry kernel, over sampled configurations (the
interval timeline compared row by row), and over fuzz-generated
kernels, mirroring the fast-path suite in ``tests/test_fastpath.py``.

Set ``REPRO_FASTPATH_SEEDS=100`` to widen the fuzz batch (the
acceptance run); the default keeps tier-1 fast.
"""

import os

import pytest

from repro.gpu.config import GPUConfig
from repro.kernels.suite import benchmark_names
from repro.verify.fastpath import (
    FastPathOutcome,
    verify_benchmark_batched,
    verify_launch_batched,
)
from repro.verify.generator import GenSpec, generate_launch

FUZZ_SEEDS = int(os.environ.get("REPRO_FASTPATH_SEEDS", "10"))


def test_batched_is_the_default():
    """Batched dispatch ships on, like the rest of the fast path."""
    assert GPUConfig().batched is True


@pytest.mark.parametrize("name", benchmark_names())
def test_registry_kernel_batched_equivalence(name):
    outcome = verify_benchmark_batched(name)
    assert isinstance(outcome, FastPathOutcome)
    assert outcome.cycles > 0
    assert outcome.fields_compared > 0


@pytest.mark.parametrize("name", ["aes", "nw"])
def test_sampled_timeline_batched_equivalence(name):
    """With sampling on, the full interval timeline must match too."""
    config = GPUConfig(sample_interval=64)
    outcome = verify_benchmark_batched(name, config=config)
    assert outcome.cycles > 0


def test_batched_equivalence_under_alternate_policy():
    outcome = verify_benchmark_batched("bfs", policy="baseline")
    assert outcome.cycles > 0


@pytest.mark.parametrize("seed", range(FUZZ_SEEDS))
def test_fuzzed_kernel_batched_equivalence(seed):
    launch = generate_launch(GenSpec(seed=seed))
    outcome = verify_launch_batched(launch)
    assert outcome.cycles > 0
    assert outcome.fields_compared > 0


@pytest.mark.parametrize("name", ["nw", "spmv"])
def test_cycle_equality_across_fastpath_batched_matrix(name):
    """All four fast_path × batched combinations simulate the same run.

    ``nw`` is bank-wakeup bound, the historical trap for wake-hint
    bugs: a warp parked in a pending opcode group must still count as
    wakeable or event-driven skipping overshoots its replay cycle.
    """
    from repro.gpu.gpu import GPU
    from repro.kernels.suite import get_benchmark

    launch = get_benchmark(name).launch("small")
    cycles = {}
    for fast in (True, False):
        for batched in (True, False):
            gmem = launch.fresh_memory()
            gpu = GPU(
                config=GPUConfig(fast_path=fast, batched=batched),
                policy="warped",
                max_cycles=20_000_000,
            )
            result = gpu.run(
                launch.kernel,
                launch.grid_dim,
                launch.cta_dim,
                launch.params,
                gmem,
            )
            cycles[(fast, batched)] = result.cycles
    assert len(set(cycles.values())) == 1, cycles

"""Boundary-value tests: fast codec vs byte-level BDI reference.

The mode boundaries are the signed-delta limits of ``<4,1>`` and
``<4,2>`` (±127/128 and ±32767/32768), exercised at the extreme bases 0
and ``0xFFFFFFFF`` where the wrap-around delta arithmetic is most easily
got wrong.  A hypothesis sweep hammers the neighbourhood of every limit,
and an end-to-end case covers a register write whose predicate is false
for every lane (the all-inactive-write path through both engines).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bdi
from repro.core.bdi import Encoding
from repro.core.codec import (
    CompressionMode,
    choose_mode,
    decode_register,
    encode_register,
)
from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp
from repro.gpu.functional import FunctionalRunner
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.verify.invariants import crosscheck_register
from repro.verify.oracle import run_differential

BASES = (0, 1, 0x7FFF_FFFF, 0x8000_0000, 0xFFFF_FF80, 0xFFFF_FFFF)

#: (delta, expected mode) pairs straddling every boundary of Figure 5.
DELTA_CASES = (
    (0, CompressionMode.B4D0),
    (1, CompressionMode.B4D1),
    (127, CompressionMode.B4D1),
    (-128, CompressionMode.B4D1),
    (128, CompressionMode.B4D2),
    (-129, CompressionMode.B4D2),
    (32767, CompressionMode.B4D2),
    (-32768, CompressionMode.B4D2),
    (32768, CompressionMode.UNCOMPRESSED),
    (-32769, CompressionMode.UNCOMPRESSED),
)


def _lanes(base: int, delta: int) -> np.ndarray:
    """A warp register with one lane offset from a uniform base."""
    lanes = np.full(32, base, dtype=np.uint64)
    lanes[17] = (base + delta) % (1 << 32)
    return lanes.astype(np.uint32)


class TestDeltaBoundaries:
    @pytest.mark.parametrize("base", BASES)
    @pytest.mark.parametrize("delta,expected", DELTA_CASES)
    def test_mode_at_boundary(self, base, delta, expected):
        lanes = _lanes(base, delta)
        assert choose_mode(lanes) is expected
        # Byte-level reference agrees on encodability per parameter set.
        data = lanes.astype("<u4").tobytes()
        for d, mode in ((0, CompressionMode.B4D0),
                        (1, CompressionMode.B4D1),
                        (2, CompressionMode.B4D2)):
            assert bdi.can_encode(data, Encoding(4, d)) == (expected <= mode)
        crosscheck_register(lanes)

    @pytest.mark.parametrize("base", BASES)
    @pytest.mark.parametrize("delta,expected", DELTA_CASES)
    def test_round_trip_at_boundary(self, base, delta, expected):
        lanes = _lanes(base, delta)
        mode, block = encode_register(lanes)
        assert mode is expected
        if block is not None:
            np.testing.assert_array_equal(decode_register(block), lanes)
            assert bdi.decode(block) == lanes.astype("<u4").tobytes()

    def test_wraparound_base_is_one_byte_delta(self):
        """0xFFFFFFFF -> 0 wraps to delta +1, not -(2^32 - 1)."""
        lanes = np.full(32, 0xFFFF_FFFF, dtype=np.uint32)
        lanes[5] = 0
        assert choose_mode(lanes) is CompressionMode.B4D1
        crosscheck_register(lanes)

    def test_full_spread_is_uncompressed(self):
        lanes = np.zeros(32, dtype=np.uint32)
        lanes[1] = 0x8000_0000
        assert choose_mode(lanes) is CompressionMode.UNCOMPRESSED


@settings(max_examples=300, deadline=None)
@given(
    base=st.integers(0, (1 << 32) - 1),
    limit=st.sampled_from([0, 127, 128, 32767, 32768]),
    jitter=st.integers(-2, 2),
    sign=st.sampled_from([1, -1]),
)
def test_property_codec_matches_bdi_near_limits(base, limit, jitter, sign):
    """choose_mode and the BDI reference agree arbitrarily close to every
    mode boundary, for arbitrary bases (wrap-around included)."""
    lanes = _lanes(base, sign * (limit + jitter))
    crosscheck_register(lanes)


class TestAllLanesInactive:
    def _launch(self):
        b = KernelBuilder("dead-write", params=("out",))
        tid = b.global_tid_x()
        out = b.param("out")
        big = b.mov(1_000_000)
        p = b.isetp(Cmp.GT, tid, big)  # false for every lane
        r = b.mov(0xDEAD)
        with b.if_(p):
            b.iadd(r, 1, dst=r)  # never executes in any lane
        addr = b.imad(tid, 4, out)
        b.stg(addr, r)
        kernel = b.build()

        def factory():
            g = GlobalMemory()
            g.alloc(64, "out")
            return g

        gmem = factory()
        out_base = GlobalMemory().alloc(64, "out")
        return kernel, gmem, factory, out_base

    def test_engines_agree_on_fully_predicated_off_write(self):
        kernel, gmem, factory, out_base = self._launch()
        runner = FunctionalRunner(policy="warped")
        runner.run(kernel, (2, 1), (32, 1), [out_base], gmem)
        out = gmem.snapshot()["out"]
        assert (out == 0xDEAD).all()
        launch = LaunchSpec(
            kernel=kernel,
            grid_dim=(2, 1),
            cta_dim=(32, 1),
            params=[out_base],
            gmem_factory=factory,
        )
        run_differential(launch, policy="warped")

    def test_uniform_dead_register_stays_compressible(self):
        """A register only ever written uniformly is <4,0> even when a
        guarded all-inactive write targets it."""
        lanes = np.zeros(32, dtype=np.uint32)
        assert choose_mode(lanes) is CompressionMode.B4D0
        crosscheck_register(lanes)

"""Per-opcode parity: vectorized array kernels vs the scalar reference.

The interpreter executes all 32 lanes of a warp as one numpy operation
per opcode (:func:`repro.gpu.interpreter.compute_vector` and friends);
:mod:`repro.gpu.scalar` spells the same semantics out one lane at a
time with explicit modulo-2**32 masking.  These hypothesis sweeps pin
the two against each other bit-for-bit:

* every pure-arithmetic opcode on random and edge-biased operands —
  integer overflow/wraparound, shift amounts beyond 31, signed
  min/max across the sign boundary;
* float division and transcendental edge cases — zeros, infinities,
  NaNs, denormals — where array/scalar disagreement would hide in
  rarely-hit bit patterns;
* ISETP/FSETP comparators under both signed-int and float views;
* masked writeback for fully active, fully inactive, and partially
  masked warps, both as a pure merge and through the real
  ``Interpreter.execute`` guard path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import scalar as ref
from repro.gpu.interpreter import (
    Interpreter,
    _mask_array,
    _mask_int,
    compare_vector,
    compute_vector,
    make_warp_context,
)
from repro.gpu.isa import Cmp, Imm, Instruction, Op, Pred, Reg
from repro.gpu.memory import GlobalMemory, SharedMemory
from repro.gpu.program import Kernel

WARP = 32

#: Bit patterns that sit on the semantic fault lines: integer sign
#: boundary and all-ones for wraparound, float zeros/inf/NaN/denormal
#: for the IEEE special cases, small shift-relevant values.
EDGE_BITS = (
    0x0000_0000,  # +0.0 / int 0
    0x0000_0001,  # denormal / int 1
    0x0000_001F,  # shift amount 31
    0x0000_0020,  # shift amount 32 (must use low 5 bits only)
    0x3F80_0000,  # 1.0f
    0x7F7F_FFFF,  # float32 max
    0x7F80_0000,  # +inf
    0x7FC0_0000,  # quiet NaN
    0x7FFF_FFFF,  # int32 max
    0x8000_0000,  # int32 min / -0.0
    0x8000_0001,  # negative denormal
    0xBF80_0000,  # -1.0f
    0xFF80_0000,  # -inf
    0xFFC0_0000,  # negative quiet NaN
    0xFFFF_FFFF,  # all ones / NaN payload
)

u32_bits = st.one_of(
    st.sampled_from(EDGE_BITS),
    st.integers(min_value=0, max_value=0xFFFF_FFFF),
)

lane_vectors = st.lists(u32_bits, min_size=WARP, max_size=WARP).map(
    lambda bits: np.array(bits, dtype=np.uint32)
)

warp_masks = st.one_of(
    st.sampled_from((0, 1, 0xFFFF_FFFF, 0x5555_5555, 0x8000_0000)),
    st.integers(min_value=0, max_value=0xFFFF_FFFF),
)

INT_BINOPS = (
    Op.IADD,
    Op.ISUB,
    Op.IMUL,
    Op.IMIN,
    Op.IMAX,
    Op.AND,
    Op.OR,
    Op.XOR,
    Op.SHL,
    Op.SHR,
    Op.SAR,
)
FLOAT_BINOPS = (Op.FADD, Op.FSUB, Op.FMUL, Op.FMIN, Op.FMAX, Op.FDIV)
FLOAT_UNOPS = (
    Op.FABS,
    Op.FNEG,
    Op.FRCP,
    Op.FSQRT,
    Op.FEXP,
    Op.FLOG,
    Op.FSIN,
    Op.FCOS,
)


def _is_nan_bits(bits: int) -> bool:
    return (bits & 0x7F80_0000) == 0x7F80_0000 and (bits & 0x007F_FFFF) != 0


def assert_lanes_equal(
    op, vec: np.ndarray, lanes: list[int], *, float_op: bool = False
) -> None:
    """Bit-exact lane comparison; for float ops, NaN matches any NaN.

    IEEE 754 leaves the sign and payload of a produced NaN unspecified,
    and numpy's array ufuncs and scalar ops genuinely differ on it
    (e.g. ``NaN + (-NaN)`` keeps the first operand's sign in the array
    path but not the scalar path).  Every numeric result must still
    match to the bit.
    """
    __tracebackhide__ = True
    got = [int(v) for v in vec]
    diffs = []
    for i, (g, s) in enumerate(zip(got, lanes)):
        if g == s:
            continue
        if float_op and _is_nan_bits(g) and _is_nan_bits(s):
            continue
        diffs.append(f"lane {i}: vector {g:#010x} != scalar {s:#010x}")
    if diffs:
        pytest.fail(f"{op}: " + "; ".join(diffs))


# ----------------------------------------------------------------------
# Pure-arithmetic opcodes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("op", INT_BINOPS, ids=lambda op: op.name)
@settings(max_examples=60, deadline=None)
@given(a=lane_vectors, b=lane_vectors)
def test_int_binop_parity(op, a, b):
    vec = compute_vector(op, a, b)
    lanes = [ref.scalar_compute(op, int(x), int(y)) for x, y in zip(a, b)]
    assert_lanes_equal(op, vec, lanes)


@pytest.mark.parametrize("op", FLOAT_BINOPS, ids=lambda op: op.name)
@settings(max_examples=60, deadline=None)
@given(a=lane_vectors, b=lane_vectors)
def test_float_binop_parity(op, a, b):
    vec = compute_vector(op, a, b)
    lanes = [ref.scalar_compute(op, int(x), int(y)) for x, y in zip(a, b)]
    assert_lanes_equal(op, vec, lanes, float_op=True)


@pytest.mark.parametrize("op", FLOAT_UNOPS, ids=lambda op: op.name)
@settings(max_examples=60, deadline=None)
@given(a=lane_vectors)
def test_float_unop_parity(op, a):
    vec = compute_vector(op, a)
    lanes = [ref.scalar_compute(op, int(x)) for x in a]
    assert_lanes_equal(op, vec, lanes, float_op=True)


@pytest.mark.parametrize("op", (Op.IMAD, Op.FFMA), ids=lambda op: op.name)
@settings(max_examples=60, deadline=None)
@given(a=lane_vectors, b=lane_vectors, c=lane_vectors)
def test_ternary_parity(op, a, b, c):
    vec = compute_vector(op, a, b, c)
    lanes = [
        ref.scalar_compute(op, int(x), int(y), int(z))
        for x, y, z in zip(a, b, c)
    ]
    assert_lanes_equal(op, vec, lanes, float_op=op is Op.FFMA)


@pytest.mark.parametrize(
    "op", (Op.NOT, Op.I2F, Op.F2I), ids=lambda op: op.name
)
@settings(max_examples=60, deadline=None)
@given(a=lane_vectors)
def test_unary_parity(op, a):
    vec = compute_vector(op, a)
    lanes = [ref.scalar_compute(op, int(x)) for x in a]
    assert_lanes_equal(op, vec, lanes, float_op=op is Op.I2F)


@pytest.mark.parametrize("as_float", (False, True), ids=("int", "float"))
@pytest.mark.parametrize("cmp", list(Cmp), ids=lambda c: c.name)
@settings(max_examples=40, deadline=None)
@given(a=lane_vectors, b=lane_vectors)
def test_compare_parity(cmp, as_float, a, b):
    vec = compare_vector(cmp, a, b, as_float=as_float)
    lanes = [
        ref.scalar_compare(cmp, int(x), int(y), as_float=as_float)
        for x, y in zip(a, b)
    ]
    assert [bool(v) for v in vec] == lanes


# ----------------------------------------------------------------------
# Division and special-value spot checks (deterministic, not sampled)
# ----------------------------------------------------------------------
DIV_EDGES = [
    (0x3F80_0000, 0x0000_0000),  # 1.0 / +0.0  -> +inf
    (0x3F80_0000, 0x8000_0000),  # 1.0 / -0.0  -> -inf
    (0x0000_0000, 0x0000_0000),  # 0.0 / 0.0   -> NaN
    (0x7F80_0000, 0x7F80_0000),  # inf / inf   -> NaN
    (0x7F80_0000, 0x3F80_0000),  # inf / 1.0   -> inf
    (0x7FC0_0000, 0x3F80_0000),  # NaN / 1.0   -> NaN
    (0x0000_0001, 0x7F7F_FFFF),  # denormal / max -> underflow to 0
    (0x7F7F_FFFF, 0x0000_0001),  # max / denormal -> overflow to inf
]


@pytest.mark.parametrize("a_bits,b_bits", DIV_EDGES)
def test_fdiv_edges(a_bits, b_bits):
    a = np.full(WARP, a_bits, dtype=np.uint32)
    b = np.full(WARP, b_bits, dtype=np.uint32)
    vec = compute_vector(Op.FDIV, a, b)
    want = ref.scalar_float_binop(Op.FDIV, a_bits, b_bits)
    assert all(int(v) == want for v in vec)


@pytest.mark.parametrize(
    "op,a_bits",
    [
        (Op.FRCP, 0x0000_0000),  # 1/+0 -> +inf
        (Op.FRCP, 0x8000_0000),  # 1/-0 -> -inf
        (Op.FSQRT, 0xBF80_0000),  # sqrt(-1) -> NaN
        (Op.FLOG, 0x0000_0000),  # log(0) -> -inf
        (Op.FLOG, 0xBF80_0000),  # log(-1) -> NaN
        (Op.FEXP, 0x42F0_0000),  # exp(120) -> overflow to inf
    ],
    ids=lambda v: v.name if isinstance(v, Op) else hex(v),
)
def test_float_unop_edges(op, a_bits):
    a = np.full(WARP, a_bits, dtype=np.uint32)
    vec = compute_vector(op, a)
    want = ref.scalar_float_unop(op, a_bits)
    assert all(int(v) == want for v in vec)


def test_shift_amounts_use_low_five_bits():
    a = np.full(WARP, 0x8000_0001, dtype=np.uint32)
    for amount in (0, 1, 31, 32, 33, 63, 255, 0xFFFF_FFFF):
        b = np.full(WARP, amount, dtype=np.uint32)
        for op in (Op.SHL, Op.SHR, Op.SAR):
            vec = compute_vector(op, a, b)
            want = ref.scalar_int_binop(op, 0x8000_0001, amount)
            assert int(vec[0]) == want, (op, amount)


# ----------------------------------------------------------------------
# Masked writeback: fully / partially / un-masked warps
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(old=lane_vectors, new=lane_vectors, mask=warp_masks)
def test_masked_merge_parity(old, new, mask):
    mask_arr = _mask_array(mask, WARP)
    vec = np.where(mask_arr, new, old)
    lanes = ref.scalar_merge(
        [int(v) for v in old], [int(v) for v in new], mask
    )
    assert [int(v) for v in vec] == lanes


@settings(max_examples=60, deadline=None)
@given(mask=warp_masks)
def test_mask_array_roundtrip(mask):
    assert _mask_int(_mask_array(mask, WARP)) == mask


def _single_warp_context(kernel: Kernel):
    return make_warp_context(
        kernel,
        warp_id=0,
        cta_id=0,
        cta_dim=(WARP, 1),
        grid_dim=(1, 1),
        warp_in_cta=0,
        params=np.zeros(0, dtype=np.uint32),
        gmem=GlobalMemory(4096),
        shared=SharedMemory(256),
    )


@pytest.mark.parametrize(
    "mask", (0xFFFF_FFFF, 0x0000_0001, 0xA5A5_A5A5, 0x8000_0000)
)
def test_guarded_execute_masked_writeback(mask):
    """The real execute path merges guarded lanes like the scalar model.

    A guard predicate deactivates lanes without SIMT divergence; the
    destination register must take the computed value on active lanes
    and keep its old value elsewhere, bit-for-bit.
    """
    kernel = Kernel(
        name="guarded-iadd",
        instructions=[
            Instruction(
                op=Op.IADD,
                dst=Reg(1),
                srcs=(Reg(0), Imm(7)),
                guard=Pred(0),
            ),
            Instruction(op=Op.EXIT),
        ],
        num_registers=2,
    )
    interp = Interpreter(WARP)
    ctx = _single_warp_context(kernel)
    rng = np.random.default_rng(1234)
    ctx.registers[0] = rng.integers(0, 2**32, WARP, dtype=np.uint32)
    ctx.registers[1] = rng.integers(0, 2**32, WARP, dtype=np.uint32)
    old = [int(v) for v in ctx.registers[1]]
    ctx.preds[0] = _mask_array(mask, WARP)

    result = interp.execute(ctx)
    interp.apply(ctx, result)

    assert result.exec_mask == mask
    computed = [
        ref.scalar_int_binop(Op.IADD, int(a), 7) for a in ctx.registers[0]
    ]
    want = ref.scalar_merge(old, computed, mask)
    assert [int(v) for v in ctx.registers[1]] == want


def test_fully_masked_guard_leaves_destination_untouched():
    """mask == 0: no lane executes, the old register image survives."""
    kernel = Kernel(
        name="masked-out",
        instructions=[
            Instruction(
                op=Op.IMUL,
                dst=Reg(0),
                srcs=(Reg(0), Imm(3)),
                guard=Pred(0),
            ),
            Instruction(op=Op.EXIT),
        ],
        num_registers=1,
    )
    interp = Interpreter(WARP)
    ctx = _single_warp_context(kernel)
    ctx.registers[0] = np.arange(WARP, dtype=np.uint32) * 17
    before = ctx.registers[0].copy()
    # preds[0] stays all-False: the guard masks out every lane.

    result = interp.execute(ctx)
    interp.apply(ctx, result)

    assert result.exec_mask == 0
    assert np.array_equal(ctx.registers[0], before)

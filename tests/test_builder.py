"""Unit tests for the kernel-builder DSL and program container."""

import pytest

from repro.gpu.builder import KernelBuilder, fimm, float_bits
from repro.gpu.isa import Cmp, Imm, Instruction, Op, Pred, Reg, SReg
from repro.gpu.program import Kernel


class TestFloatImmediates:
    def test_float_bits_roundtrip(self):
        import struct

        bits = float_bits(1.5)
        assert struct.unpack("<f", struct.pack("<I", bits))[0] == 1.5

    def test_fimm(self):
        assert isinstance(fimm(2.0), Imm)
        assert fimm(0.0).value == 0


class TestAllocation:
    def test_registers_are_fresh(self):
        b = KernelBuilder("k")
        assert b.reg() != b.reg()

    def test_num_registers_tracked(self):
        b = KernelBuilder("k")
        r = b.mov(1)
        b.iadd(r, 2)
        b.exit_()
        assert b.build().num_registers == 2

    def test_predicates_cycle_through_eight(self):
        b = KernelBuilder("k")
        preds = {b.isetp(Cmp.EQ, b.mov(0), 0).index for _ in range(8)}
        assert preds == set(range(8))


class TestStraightLine:
    def test_operand_coercion(self):
        b = KernelBuilder("k")
        r = b.iadd(1, 2)
        instr = b._instrs[-1]
        assert instr.srcs == (Imm(1), Imm(2))
        b.fadd(r, 1.5)
        assert b._instrs[-1].srcs[1] == fimm(1.5)

    def test_bool_operand_rejected(self):
        with pytest.raises(TypeError):
            KernelBuilder("k").iadd(True, 1)

    def test_param_lookup(self):
        b = KernelBuilder("k", params=("n", "x"))
        b.param("x")
        assert b._instrs[-1].param_index == 1
        with pytest.raises(KeyError):
            b.param("missing")

    def test_global_tid(self):
        b = KernelBuilder("k")
        b.global_tid_x()
        ops = [i.op for i in b._instrs]
        assert ops == [Op.S2R, Op.S2R, Op.S2R, Op.IMAD]

    def test_exit_appended_automatically(self):
        b = KernelBuilder("k")
        b.mov(1)
        kernel = b.build()
        assert kernel.instructions[-1].op is Op.EXIT


class TestIf:
    def test_simple_if_branch_targets(self):
        b = KernelBuilder("k")
        p = b.isetp(Cmp.LT, b.mov(0), 5)
        with b.if_(p):
            b.mov(1)
        kernel = b.build()
        bra = next(i for i in kernel.instructions if i.op is Op.BRA)
        # The guard is the negated predicate, jumping to the join point.
        assert bra.guard == ~p
        assert bra.target == bra.reconv

    def test_if_else_structure(self):
        b = KernelBuilder("k")
        p = b.isetp(Cmp.LT, b.mov(0), 5)
        with b.if_(p):
            b.mov(1)
        with b.else_():
            b.mov(2)
        kernel = b.build()
        bras = [i for i in kernel.instructions if i.op is Op.BRA]
        assert len(bras) == 2
        cond, skip = bras
        # Conditional branch lands on the else body (after the skip BRA).
        assert kernel.instructions[cond.target - 1] is skip
        # Both reconverge at the same join point, past the else body.
        assert cond.reconv == skip.reconv == skip.target
        assert skip.guard is None

    def test_else_without_if_rejected(self):
        b = KernelBuilder("k")
        with pytest.raises(RuntimeError):
            with b.else_():
                pass

    def test_else_must_immediately_follow(self):
        b = KernelBuilder("k")
        p = b.isetp(Cmp.LT, b.mov(0), 5)
        with b.if_(p):
            b.mov(1)
        b.mov(3)  # intervening instruction
        with pytest.raises(RuntimeError):
            with b.else_():
                pass


class TestLoops:
    def test_while_loop_back_edge(self):
        b = KernelBuilder("k")
        i = b.mov(0)
        with b.while_loop() as loop:
            loop.break_unless(b.isetp(Cmp.LT, i, 10))
            b.iadd(i, 1, dst=i)
        kernel = b.build()
        bras = [x for x in kernel.instructions if x.op is Op.BRA]
        exit_bra, back_bra = bras
        assert back_bra.guard is None
        assert back_bra.target < exit_bra.target  # jumps back to the head
        assert exit_bra.reconv == exit_bra.target  # exits to the join

    def test_for_range_generates_counter(self):
        b = KernelBuilder("k")
        with b.for_range(3, 9, step=2) as i:
            b.iadd(i, 0)
        kernel = b.build()
        movs = [x for x in kernel.instructions if x.op is Op.MOV]
        assert movs[0].srcs == (Imm(3),)

    def test_for_range_zero_step_rejected(self):
        b = KernelBuilder("k")
        with pytest.raises(ValueError):
            with b.for_range(0, 1, step=0):
                pass

    def test_negative_step_uses_gt(self):
        b = KernelBuilder("k")
        with b.for_range(10, 0, step=-1):
            pass
        setp = next(i for i in b._instrs if i.op is Op.ISETP)
        assert setp.cmp is Cmp.GT


class TestBuild:
    def test_undefined_label_raises(self):
        b = KernelBuilder("k")
        b._emit(
            Instruction(Op.BRA, label_target=".nowhere", label_reconv=".nowhere")
        )
        with pytest.raises(ValueError, match="undefined label"):
            b.build()

    def test_emit_after_build_rejected(self):
        b = KernelBuilder("k")
        b.exit_()
        b.build()
        with pytest.raises(RuntimeError):
            b.mov(1)

    def test_listing_contains_labels(self):
        b = KernelBuilder("k")
        p = b.isetp(Cmp.EQ, b.mov(0), 0)
        with b.if_(p):
            b.mov(1)
        listing = b.build().listing()
        assert ".endif" in listing
        assert "isetp" in listing


class TestKernelValidation:
    def test_empty_kernel_rejected(self):
        with pytest.raises(ValueError):
            Kernel("k", [], num_registers=1)

    def test_missing_exit_rejected(self):
        with pytest.raises(ValueError, match="EXIT"):
            Kernel("k", [Instruction(Op.NOP)], num_registers=1)

    def test_register_bounds_checked(self):
        instrs = [
            Instruction(Op.MOV, dst=Reg(5), srcs=(Imm(0),)),
            Instruction(Op.EXIT),
        ]
        with pytest.raises(ValueError, match="declares"):
            Kernel("k", instrs, num_registers=2)

    def test_unresolved_branch_rejected(self):
        instrs = [Instruction(Op.BRA), Instruction(Op.EXIT)]
        with pytest.raises(ValueError, match="unresolved"):
            Kernel("k", instrs, num_registers=1)

    def test_source_register_operands_reported(self):
        instr = Instruction(Op.IADD, dst=Reg(0), srcs=(Reg(1), Imm(3)))
        assert instr.source_registers() == (1,)
        assert instr.writes_register()


class TestPredOperand:
    def test_negation(self):
        p = Pred(2)
        assert (~p).negated and (~~p) == p

    def test_bounds(self):
        with pytest.raises(ValueError):
            Pred(8)

    def test_sreg_sugar(self):
        b = KernelBuilder("k")
        b.tid_x()
        assert b._instrs[-1].sreg is SReg.TID_X

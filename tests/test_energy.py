"""Unit tests for event-driven energy accounting."""

import pytest

from repro.power.energy import EnergyBreakdown, EnergyModel
from repro.power.params import EnergyParams


def model(**kwargs) -> EnergyModel:
    defaults = dict(params=EnergyParams(), num_banks=32)
    defaults.update(kwargs)
    return EnergyModel(**defaults)


class TestEventRecording:
    def test_reads_and_writes_accumulate_banks(self):
        m = model()
        m.record_read(8)
        m.record_read(3)
        m.record_write(5)
        assert m.bank_reads == 11
        assert m.bank_writes == 5
        assert m.wire_transfers == 16

    def test_finalize_gating_vector_length_checked(self):
        m = model()
        with pytest.raises(ValueError):
            m.finalize(100, [0] * 31)

    def test_finalize_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            model().finalize(-1)


class TestBreakdown:
    def test_dynamic_energy_arithmetic(self):
        m = model()
        m.record_read(10)  # 10 banks
        m.finalize(0)
        b = m.breakdown()
        assert b.bank_access_pj == pytest.approx(70.0)
        assert b.wire_pj == pytest.approx(96.0)  # 10 x 9.6
        assert b.dynamic_pj == pytest.approx(166.0)

    def test_leakage_scales_with_active_banks(self):
        m = model()
        m.finalize(1000)
        full = m.breakdown().bank_leakage_pj
        m.finalize(1000, [1000] * 16 + [0] * 16)  # half the banks gated
        half = m.breakdown().bank_leakage_pj
        assert half == pytest.approx(full / 2)

    def test_unit_energy_and_leakage(self):
        m = model(num_compressors=2, num_decompressors=4)
        m.record_compression(10)
        m.record_decompression(20)
        m.finalize(1400)  # 1 us at 1.4 GHz
        b = m.breakdown()
        # activations + unit leakage (0.12 mW x 2 and 0.08 mW x 4 for 1 us)
        assert b.compression_pj == pytest.approx(10 * 23 + 2 * 0.12 * 1000)
        assert b.decompression_pj == pytest.approx(20 * 21 + 4 * 0.08 * 1000)

    def test_baseline_has_no_unit_leakage(self):
        m = model()
        m.finalize(10_000)
        b = m.breakdown()
        assert b.compression_pj == 0.0
        assert b.decompression_pj == 0.0

    def test_total_is_sum_of_categories(self):
        m = model(num_compressors=2, num_decompressors=4)
        m.record_read(100)
        m.record_write(50)
        m.record_compression(5)
        m.record_decompression(7)
        m.finalize(500, [100] * 32)
        b = m.breakdown()
        assert b.total_pj == pytest.approx(
            b.dynamic_pj + b.bank_leakage_pj + b.compression_pj + b.decompression_pj
        )


class TestNormalization:
    def test_normalized_to_baseline(self):
        base = model()
        base.record_read(100)
        base.finalize(100)
        wc = model()
        wc.record_read(50)
        wc.finalize(100)
        norm = wc.breakdown().normalized_to(base.breakdown())
        assert norm["total"] < 1.0
        assert norm["dynamic"] + norm["leakage"] == pytest.approx(norm["total"])

    def test_zero_baseline_rejected(self):
        empty = EnergyBreakdown(0, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            empty.normalized_to(empty)


class TestReprice:
    def test_reprice_scales_linearly(self):
        m = model()
        m.record_read(10)
        m.finalize(0)
        base = m.breakdown()
        scaled = m.reprice(EnergyParams().scaled(bank_access=2.0))
        assert scaled.bank_access_pj == pytest.approx(2 * base.bank_access_pj)
        assert scaled.wire_pj == pytest.approx(base.wire_pj)

    def test_reprice_restores_params(self):
        m = model()
        original = m.params
        m.reprice(EnergyParams().scaled(bank_access=3.0))
        assert m.params is original

    def test_reprice_equals_breakdown_for_same_params(self):
        m = model(num_compressors=2)
        m.record_read(7)
        m.record_compression(3)
        m.finalize(50)
        assert m.reprice(m.params) == m.breakdown()

"""Unit-level tests for the ablation and extension drivers.

The heavy, full-suite versions run in ``benchmarks/``; these exercise the
drivers on a two-benchmark subset so structural regressions (renamed
columns, broken averaging, missing rows) surface in the fast suite.
"""

import pytest

from repro.harness.ablations import (
    ABLATIONS,
    collectors,
    divergence_policies,
    gate_delay,
)
from repro.harness.extensions import EXTENSIONS, rfc_orthogonality
from repro.harness.runner import ALL_DRIVERS, main
from repro.sim import Session

SUBSET = ["lib", "pathfinder"]


@pytest.fixture(scope="module")
def cache():
    return Session(scale="small", subset=SUBSET, use_disk_cache=False)


class TestRegistries:
    def test_ablation_ids_prefixed(self):
        assert all(k.startswith("abl-") for k in ABLATIONS)

    def test_extension_ids_prefixed(self):
        assert all(k.startswith("ext-") for k in EXTENSIONS)

    def test_all_drivers_disjoint(self):
        assert len(ALL_DRIVERS) == 18 + len(ABLATIONS) + len(EXTENSIONS)


class TestAblationDrivers:
    def test_gate_delay_columns(self, cache):
        result = gate_delay(cache)
        # Paired E@/T@ columns plus the benchmark label.
        assert len(result.headers) == 11
        assert result.rows[-1][0] == "AVERAGE"
        for row in result.rows:
            for cell in row[1:]:
                assert cell > 0

    def test_collectors_normalised_to_default(self, cache):
        result = collectors(cache)
        # The oc=8 column is the reference: exactly 1.0 per benchmark.
        idx = result.headers.index("oc=8")
        for row in result.rows[:-1]:
            assert row[idx] == pytest.approx(1.0)

    def test_divergence_policies_run_full_suite_subset(self, cache):
        result = divergence_policies(cache)
        assert [r[0] for r in result.rows] == SUBSET + ["AVERAGE"]


class TestExtensionDrivers:
    def test_rfc_orthogonality_shape(self, cache):
        result = rfc_orthogonality(cache)
        assert result.headers == ["benchmark", "warped", "rfc", "rfc+warped"]
        combined = result.cell("lib", "rfc+warped")
        assert combined < result.cell("lib", "warped")
        assert combined < result.cell("lib", "rfc")


class TestCliIntegration:
    def test_ablations_keyword_expands(self, capsys):
        code = main(
            [
                "abl-divergence",
                "--scale",
                "small",
                "--benchmarks",
                "lib",
                "--quiet",
                "--no-cache",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "abl-divergence" in out and "lib" in out

    def test_chart_flag(self, capsys):
        code = main(["table1", "--quiet", "--chart", "--no-cache"])
        assert code == 0
        assert "█" in capsys.readouterr().out

"""Regenerate Figure 10: power-gated cycle share per register bank.

Paper shape: compressed data packs into the lowest banks of each
eight-bank cluster, so the gated fraction rises towards the top bank of
every cluster.
"""

import numpy as np

from repro.harness.experiments import fig10


def test_fig10(regenerate):
    result = regenerate(fig10)
    fractions = np.array(result.column("gated_fraction")[:-1])
    assert fractions.shape == (32,)
    assert (fractions >= 0).all() and (fractions <= 1).all()
    for cluster in range(4):
        span = fractions[cluster * 8 : (cluster + 1) * 8]
        # Top bank gated at least as much as bottom bank.
        assert span[7] >= span[0] - 1e-9
        # Overall upward trend within the cluster.
        assert span[4:].mean() >= span[:4].mean() - 1e-9
    # Some gating opportunity exists at all.
    assert fractions.mean() > 0.05

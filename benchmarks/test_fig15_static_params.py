"""Regenerate Figure 15: compression ratio for static parameter choices.

Paper shape: <4,0>-only (the scalarization-equivalent design) compresses
~30% worse than the dynamic three-way choice; <4,1>-only can beat
<4,2>-only on some benchmarks despite reaching fewer registers.
"""

from repro.harness.experiments import fig15


def test_fig15(regenerate):
    result = regenerate(fig15)
    avg = result.row("AVERAGE")
    headers = result.headers
    warped = avg[headers.index("warped")]
    only40 = avg[headers.index("<4,0>")]
    assert warped > 1.2
    # The static <4,0> choice loses a substantial share of the dynamic
    # scheme's compression (paper: ~30%).
    assert only40 < 0.9 * warped
    # Dynamic selection dominates every static choice per benchmark.
    for row in result.rows:
        assert row[1] >= max(row[2:]) - 1e-9, row[0]

"""Extension benches: register-file-cache orthogonality (paper Section 7).

The paper argues compression is orthogonal to prior RF-power approaches
like the register file cache; these benches measure that composition.
"""

from repro.harness.extensions import (
    extended_suite,
    rfc_orthogonality,
    rfc_size_sweep,
)


def test_extension_rfc_orthogonality(regenerate):
    result = regenerate(rfc_orthogonality)
    avg = result.row("AVERAGE")
    warped, rfc, combined = avg[1:]
    # Each technique saves energy on its own.
    assert warped < 1.0
    assert rfc < 1.0
    # The combination beats both individually — the orthogonality claim.
    assert combined < min(warped, rfc)
    # And lands in the ballpark of composing the two savings.
    assert combined < warped * rfc + 0.15


def test_extension_generalises_to_new_workloads(regenerate):
    """The savings are not an artifact of the paper's twelve benchmarks."""
    result = regenerate(extended_suite)
    avg_energy = result.cell("AVERAGE", "wc_total")
    # Savings on never-tuned workloads land in the same band as the
    # paper suite's.
    assert 0.6 <= avg_energy <= 0.9
    # Every extended kernel individually saves energy.
    for row in result.rows:
        assert row[1] < 1.0, row[0]


def test_extension_rfc_size(regenerate):
    result = regenerate(rfc_size_sweep)
    avg = result.row("AVERAGE")
    # Larger caches monotonically (to noise) reduce energy: more reads
    # hit and fewer evictions reach the banks.
    assert avg[-1] <= avg[1] + 0.02
    assert avg[-1] < avg[1]

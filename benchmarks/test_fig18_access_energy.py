"""Regenerate Figure 18: sensitivity to per-bank access energy.

Paper shape: the optimistic scenario — costlier bank accesses with
unchanged compression logic — *increases* the relative saving (paper:
35% at 2.5x vs 25% at baseline constants).
"""

from repro.harness.experiments import fig18


def test_fig18(regenerate):
    result = regenerate(fig18)
    avg = result.row("AVERAGE")
    base, best = avg[1], avg[-1]
    assert base < 1.0
    # Costlier accesses help compression: normalised energy falls.
    assert list(avg[1:]) == sorted(avg[1:], reverse=True)
    assert best < base

"""Regenerate Figure 17: sensitivity to comp/decomp unit energy.

Paper shape: even at 2.5x unit activation energy, warped-compression
still saves a significant share (paper: 14% saved in the worst case vs
25% at baseline constants).
"""

from repro.harness.experiments import fig17


def test_fig17(regenerate):
    result = regenerate(fig17)
    avg = result.row("AVERAGE")
    base, worst = avg[1], avg[-1]
    assert base < 1.0
    # More expensive units monotonically erode the saving...
    assert list(avg[1:]) == sorted(avg[1:])
    # ...but never erase it.
    assert worst < 1.0
    assert worst - base < 0.25

"""Regenerate Figure 12: compressed-register share by phase.

Paper shape: for most benchmarks the compressed share barely changes
between phases (few registers are decompressed during divergence);
benchmarks with no divergence report N/A for the divergent bar.
"""

from repro.harness.experiments import fig12


def test_fig12(regenerate):
    result = regenerate(fig12)
    # N/A bars for benchmarks that never diverge (paper calls out AES).
    for name in ("aes", "kmeans", "lib"):
        assert result.cell(name, "divergent") is None, name
    nd = result.cell("AVERAGE", "nondivergent")
    assert 0.05 <= nd <= 1.0
    # LIB keeps nearly all registers compressed.
    assert result.cell("lib", "nondivergent") > 0.5

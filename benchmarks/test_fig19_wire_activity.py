"""Regenerate Figure 19: sensitivity to wire switching activity.

Paper shape: the more the wires toggle, the more moving fewer bits is
worth — savings grow from the 0%-activity point to 31% at 100%.
"""

from repro.harness.experiments import fig19


def test_fig19(regenerate):
    result = regenerate(fig19)
    avg = result.row("AVERAGE")
    zero_act, full_act = avg[1], avg[-1]
    # Higher wire activity monotonically improves the relative saving.
    assert list(avg[1:]) == sorted(avg[1:], reverse=True)
    assert full_act < zero_act
    assert full_act < 1.0

"""Regenerate Figure 13: execution-time impact of compression.

Paper shape: ~0.1% average slowdown.  Our single-SM scaled-down runs
expose more of the added compression/decompression latency (there are far
fewer concurrent warps to hide it behind), so the band here is wider —
see EXPERIMENTS.md for the discussion.
"""

from repro.harness.experiments import fig13


def test_fig13(regenerate):
    result = regenerate(fig13)
    avg = result.cell("AVERAGE", "slowdown")
    assert 1.0 <= avg <= 1.15
    for row in result.rows:
        assert 0.95 <= row[1] <= 1.3, row[0]

"""Regenerate Figure 9: register-file energy, baseline vs warped.

Paper headline: warped-compression cuts total register-file energy by
~25% on average (35% dynamic, 10% leakage), with LIB the biggest winner
and AES nearly unchanged; compression/decompression overheads stay small.
"""

from repro.harness.experiments import fig09


def test_fig09(regenerate):
    result = regenerate(fig09)
    avg_total = result.cell("AVERAGE", "wc_total")
    # Average saving in the paper's ballpark (25%); allow a wide band for
    # the scaled-down single-SM workloads.
    assert 0.6 <= avg_total <= 0.95
    # Dynamic energy saved substantially on average.
    avg_base_dyn = result.cell("AVERAGE", "base_dyn")
    avg_wc_dyn = result.cell("AVERAGE", "wc_dyn")
    assert avg_wc_dyn < 0.8 * avg_base_dyn
    # Per-benchmark extremes.
    assert result.cell("lib", "wc_total") < 0.5
    assert result.cell("aes", "wc_total") > 0.85
    # Compression/decompression overhead is a small fraction of total.
    assert result.cell("AVERAGE", "wc_comp") < 0.1
    assert result.cell("AVERAGE", "wc_decomp") < 0.1

"""Regenerate Figure 16: energy for static parameter choices.

Paper shape: the dynamic warped-compression scheme consumes less energy
than the <4,0>-only scalarization-equivalent design.
"""

from repro.harness.experiments import fig16


def test_fig16(regenerate):
    result = regenerate(fig16)
    avg = result.row("AVERAGE")
    headers = result.headers
    warped = avg[headers.index("warped")]
    only40 = avg[headers.index("<4,0>")]
    assert warped < 1.0
    # Dynamic selection saves more energy than <4,0> alone on average.
    assert warped < only40

"""Regenerate Figure 5: which <base,delta> wins the full BDI search.

Paper shape: base-8 encodings are rarely selected (thread registers are
written at 4-byte granularity), which is what justifies restricting
warped-compression to the three base-4 choices.
"""

from repro.harness.experiments import fig05


def test_fig05(regenerate):
    result = regenerate(fig05)
    avg = result.row("AVERAGE")
    headers = result.headers
    base4 = sum(avg[headers.index(k)] for k in ("<4,0>", "<4,1>", "<4,2>"))
    base8 = sum(
        avg[headers.index(k)] for k in ("<8,0>", "<8,1>", "<8,2>", "<8,4>")
    )
    # Base-4 dominates base-8 by a wide margin.
    assert base4 > 4 * base8
    # A meaningful share of writes compresses at all.
    assert avg[headers.index("uncompressed")] < 0.6

"""Shared fixtures for the figure-regeneration bench suite.

One :class:`SimulationCache` is shared across every bench module so that
the ~dozen distinct simulations behind the seventeen figures each run
exactly once per pytest session.  Benches run at ``small`` scale so the
whole suite regenerates in a couple of minutes; use the CLI
(``warped-compression all``) for the full-size tables.
"""

import pytest

from repro.harness.sweeps import SimulationCache


@pytest.fixture(scope="session")
def cache():
    return SimulationCache(scale="small")


@pytest.fixture
def regenerate(cache, benchmark):
    """Run one experiment under pytest-benchmark and print its table.

    ``pedantic`` with a single round: re-running a cached experiment
    would only measure cache hits.
    """

    def _run(driver):
        result = benchmark.pedantic(driver, args=(cache,), iterations=1, rounds=1)
        print()
        print(result.render())
        return result

    return _run

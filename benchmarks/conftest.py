"""Shared fixtures for the figure-regeneration bench suite.

One :class:`repro.sim.Session` is shared across every bench module so
that the ~dozen distinct simulations behind the seventeen figures each
run exactly once per pytest session (the session dedupes identical
(kernel, config) pairs and keeps an on-disk result cache in a temporary
directory).  Benches run at ``small`` scale so the whole suite
regenerates in a couple of minutes; use the CLI
(``warped-compression all``) for the full-size tables.
"""

import pytest

from repro.sim import Session


def pytest_collection_modifyitems(items):
    """Everything under ``benchmarks/`` is tier-2 (slow, non-blocking)."""
    for item in items:
        item.add_marker(pytest.mark.tier2)


@pytest.fixture(scope="session")
def cache(tmp_path_factory):
    return Session(
        scale="small", cache_dir=tmp_path_factory.mktemp("result-cache")
    )


@pytest.fixture
def regenerate(cache, benchmark):
    """Run one experiment under pytest-benchmark and print its table.

    ``pedantic`` with a single round: re-running a cached experiment
    would only measure cache hits.
    """

    def _run(driver):
        result = benchmark.pedantic(driver, args=(cache,), iterations=1, rounds=1)
        print()
        print(result.render())
        return result

    return _run

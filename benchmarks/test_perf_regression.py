"""Tier-2 perf regression: measure the quick bench against the baseline.

Two classes of signal from one ``run_bench(quick=True)`` pass:

* **hard** — simulated cycle counts must equal the committed
  ``BENCH_simulator.json`` exactly.  Cycles are machine-independent, and
  the fast path is bit-identical by contract, so any drift means the
  simulation itself changed and the baseline needs regenerating.
* **soft** — wall-clock speedup warnings from
  :func:`repro.harness.bench.compare_reports` are printed, never
  asserted: this suite runs on whatever hardware CI hands us, and the
  ``repro bench`` CLI (with ``--fail-on-regression`` where wanted) is
  the tool for deliberate performance comparisons.
"""

import json
from pathlib import Path

import pytest

from repro.harness.bench import QUICK_KERNELS, compare_reports, run_bench

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"


@pytest.fixture(scope="module")
def baseline() -> dict:
    if not BASELINE_PATH.exists():
        pytest.skip("no committed BENCH_simulator.json baseline")
    return json.loads(BASELINE_PATH.read_text())


@pytest.fixture(scope="module")
def quick_report():
    return run_bench(quick=True).to_dict()


def test_quick_bench_covers_expected_kernels(quick_report):
    assert set(quick_report["kernels"]) == set(QUICK_KERNELS)
    for record in quick_report["kernels"].values():
        assert record["cycles"] > 0
        assert record["fast_seconds"] > 0


def test_cycle_counts_match_committed_baseline(baseline, quick_report):
    for name, record in quick_report["kernels"].items():
        base = baseline["kernels"].get(name)
        assert base is not None, f"{name} missing from committed baseline"
        assert record["cycles"] == base["cycles"], (
            f"{name}: simulated {record['cycles']} cycles but the baseline "
            f"records {base['cycles']} — simulation behaviour changed; "
            "regenerate BENCH_simulator.json with `repro bench` if intended"
        )


def test_wall_clock_comparison_is_advisory(baseline, quick_report):
    warnings = [
        w
        for w in compare_reports(quick_report, baseline)
        if "cycles changed" not in w  # covered by the hard assert above
    ]
    for warning in warnings:
        print(f"PERF WARNING: {warning}")
    # Advisory by design: no assertion on wall-clock derived warnings.

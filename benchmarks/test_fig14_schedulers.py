"""Regenerate Figure 14: energy under GTO vs LRR warp scheduling.

Paper shape: the savings are scheduler-insensitive — LRR averages 26%
vs GTO's 25%.
"""

from repro.harness.experiments import fig14


def test_fig14(regenerate):
    result = regenerate(fig14)
    gto = result.cell("AVERAGE", "gto")
    lrr = result.cell("AVERAGE", "lrr")
    assert gto < 1.0 and lrr < 1.0  # both save energy
    # Scheduler choice moves the average by only a few points.
    assert abs(gto - lrr) < 0.08

"""Regenerate Figure 3: share of non-divergent warp instructions.

Paper shape: 79% of warp executions are non-divergent on average, with
some benchmarks (AES) never diverging and the graph/sparse workloads
(BFS, spmv) heavily divergent.
"""

from repro.harness.experiments import fig03


def test_fig03(regenerate):
    result = regenerate(fig03)
    average = result.cell("AVERAGE", "nondivergent")
    assert 0.55 <= average <= 0.95  # paper: 0.79
    assert result.cell("aes", "nondivergent") == 1.0
    assert result.cell("kmeans", "nondivergent") == 1.0
    assert result.cell("bfs", "nondivergent") < 0.6
    assert result.cell("spmv", "nondivergent") < 0.6

"""Regenerate Figure 20: execution time vs compression latency.

Paper shape: slowdown grows with compressor latency, reaching ~14% at 8
cycles (averaged with the decompression sweep of Figure 21).
"""

from repro.harness.experiments import fig20


def test_fig20(regenerate):
    result = regenerate(fig20)
    avg = result.row("AVERAGE")
    # Monotone growth with latency for the suite average.
    assert list(avg[1:]) == sorted(avg[1:])
    # 8-cycle compression hurts measurably but not catastrophically.
    assert 1.0 <= avg[-1] <= 1.5

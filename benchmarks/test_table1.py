"""Regenerate paper Table 1: compressed sizes per <base,delta> pair."""

from repro.harness.experiments import table1


def test_table1(regenerate):
    result = regenerate(table1)
    # The exact Table 1 rows.
    expected = {
        "<1,0>": (1, 1),
        "<2,1>": (65, 5),
        "<4,0>": (4, 1),
        "<4,1>": (35, 3),
        "<4,2>": (66, 5),
        "<8,0>": (8, 1),
        "<8,1>": (23, 2),
        "<8,2>": (38, 3),
        "<8,4>": (68, 5),
    }
    for row in result.rows:
        name, size, banks = row
        assert (size, banks) == expected[name], name

"""Regenerate Figure 11: dummy-MOV share of the instruction stream.

Paper shape: under 2% on average — only the first divergent update of a
compressed register injects a MOV.
"""

from repro.harness.experiments import fig11


def test_fig11(regenerate):
    result = regenerate(fig11)
    assert result.cell("AVERAGE", "mov_fraction") < 0.03
    # Benchmarks that never diverge never inject.
    assert result.cell("aes", "mov_fraction") == 0.0
    assert result.cell("kmeans", "mov_fraction") == 0.0
    assert result.cell("lib", "mov_fraction") == 0.0
    # Divergent benchmarks inject at least occasionally.
    assert result.cell("pathfinder", "mov_fraction") > 0.0

"""Regenerate Figure 21: execution time vs decompression latency.

Paper shape: like Figure 20, monotone growth, ~14% at 8 cycles;
decompression sits on the operand-read path so it bites reads of
compressed registers.
"""

from repro.harness.experiments import fig21


def test_fig21(regenerate):
    result = regenerate(fig21)
    avg = result.row("AVERAGE")
    assert list(avg[1:]) == sorted(avg[1:])
    assert 1.0 <= avg[-1] <= 1.6
    # Default (1 cycle) is the cheapest point.
    assert avg[1] == min(avg[1:])

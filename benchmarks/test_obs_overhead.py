"""Tier-2 perf guard: observability must stay cheap.

Compares wall-clock of the same kernel under three instrumentation
settings — disabled (the default), interval sampling only, and full
sampling + event tracing.  The pull-based probe design means sampling
costs one registry read per interval, so sampling-on vs off must stay
within a few percent; full span tracing is allowed to cost real time
but not an order of magnitude.  Like the rest of ``benchmarks/``, this
is tier-2: slow and non-blocking in CI (``continue-on-error``), so a
noisy shared runner cannot fail the build.
"""

import time

from repro.gpu.config import GPUConfig
from repro.gpu.launch import run_kernel
from repro.kernels import get_benchmark
from repro.obs.tracer import EventTracer

#: Issue acceptance criterion: interval sampling adds < 5% wall-clock.
MAX_SAMPLING_OVERHEAD = 0.05
ROUNDS = 3


def _best_of(fn, rounds=ROUNDS):
    """Best-of-N wall clock — robust against shared-runner noise."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _run(config=None, tracer=None):
    bench = get_benchmark("pathfinder")
    spec = bench.launch("small")
    gmem = spec.fresh_memory()
    return run_kernel(
        spec.kernel,
        spec.grid_dim,
        spec.cta_dim,
        spec.params,
        gmem,
        config=config,
        tracer=tracer,
    )


def test_sampling_overhead_under_five_percent():
    """Interval sampling (no tracer) vs instrumentation off."""
    warmup = _run()
    assert warmup.cycles > 0
    off = _best_of(lambda: _run())
    sampled = _best_of(lambda: _run(config=GPUConfig(sample_interval=64)))
    overhead = sampled / off - 1.0
    print(f"\nsampling overhead: off={off:.3f}s on={sampled:.3f}s "
          f"(+{overhead:.1%})")
    assert overhead < MAX_SAMPLING_OVERHEAD, (
        f"interval sampling adds {overhead:.1%} wall-clock "
        f"(budget {MAX_SAMPLING_OVERHEAD:.0%})"
    )


def test_full_tracing_overhead_is_bounded():
    """Sampling + per-op span tracing stays within a loose multiple."""
    _run()  # warm-up
    off = _best_of(lambda: _run())
    on = _best_of(
        lambda: _run(
            config=GPUConfig(sample_interval=64), tracer=EventTracer()
        )
    )
    overhead = on / off - 1.0
    print(f"\ntracing overhead: off={off:.3f}s on={on:.3f}s (+{overhead:.1%})")
    # Tracing every pipeline span costs real time (~15% measured), but
    # a multiple of the baseline means a hot-loop regression.
    assert on < off * 2.0, (
        f"full tracing costs {overhead:.0%} — hot-loop regression"
    )

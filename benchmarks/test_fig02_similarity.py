"""Regenerate Figure 2: register-value similarity bins by phase.

Paper shape: in the non-divergent phase most writes are *not* random
(79% on average); the random share grows substantially during divergence
(21% -> 57% in the paper).
"""

import numpy as np

from repro.harness.experiments import fig02


def test_fig02(regenerate):
    result = regenerate(fig02)
    avg = result.row("AVERAGE")
    nd_zero, nd_random = avg[1], avg[4]
    d_zero, d_random = avg[5], avg[8]
    # Majority of non-divergent writes fall outside the random bin.
    assert nd_random < 0.45
    # Similarity drops under divergence: the zero bin collapses and the
    # weight shifts to the coarse bins (merged registers keep stale
    # values in inactive lanes).
    assert d_zero < nd_zero / 2
    d_coarse = avg[7] + avg[8]
    nd_coarse = avg[3] + avg[4]
    assert d_coarse > nd_coarse
    # LIB's constant inputs put nearly everything in the zero bin.
    assert result.cell("lib", "nd_zero") > 0.8
    # AES's random data lands mostly in the random bin; it never
    # diverges, so its divergent bars are N/A.
    assert result.cell("aes", "nd_random") > 0.4
    assert result.cell("aes", "d_zero") is None
    # Non-divergent fractions are distributions.
    for row in result.rows:
        assert np.isclose(sum(row[1:5]), 1.0, atol=1e-6)

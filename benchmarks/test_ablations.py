"""Ablation benches for design choices called out in DESIGN.md.

Not paper figures — these quantify the mechanisms our reconstruction had
to pin down: gating hysteresis, wake-up cost, operand-collector count,
unit provisioning, and the Section 5.2 divergence-handling alternatives.
"""

from repro.harness.ablations import (
    collectors,
    compressor_count,
    divergence_policies,
    gate_delay,
    wakeup_latency,
)


def test_ablation_gate_delay(regenerate):
    result = regenerate(gate_delay)
    avg = result.row("AVERAGE")
    energies = avg[1:6]
    times = avg[6:]
    # Longer hysteresis keeps banks awake longer: leakage (and thus
    # total energy) is monotonically non-decreasing in the delay ...
    assert energies == sorted(energies)
    # ... while the enormous-delay point effectively disables gating and
    # must not be slower than aggressive gating (which stalls on wakes).
    assert times[-1] <= times[0] + 1e-9
    # Even with gating effectively off, compression still saves energy.
    assert energies[-1] < 1.0


def test_ablation_wakeup_latency(regenerate):
    result = regenerate(wakeup_latency)
    avg = result.row("AVERAGE")
    # Wake latency only ever adds stalls.
    assert avg[1] <= avg[-1] + 1e-9
    # At the paper's default hysteresis, wake stalls are rare: going
    # from 0 to 40 cycles moves execution time by only a few percent.
    assert avg[-1] - avg[1] < 0.10


def test_ablation_collectors(regenerate):
    result = regenerate(collectors)
    avg = result.row("AVERAGE")
    # Fewer collectors can only slow things down.
    assert avg[1] >= avg[-1] - 1e-9
    # The default (8) is near the saturation point: doubling to 16
    # barely helps.
    assert abs(avg[3] - avg[4]) < 0.05


def test_ablation_divergence_policies(regenerate):
    result = regenerate(divergence_policies)
    avg = result.row("AVERAGE")
    warped, buffered, per_thread = avg[1:]
    # Every design saves energy on average.
    assert warped < 1.0
    # Buffered recompression compresses more registers, so its RF energy
    # is at most slightly worse than the chosen design's (it pays extra
    # compressor activations but keeps more banks cold).
    assert buffered < 1.0
    # The per-thread window forfeits inter-thread similarity on float
    # data: it must not beat the warp-level window on average.
    assert per_thread >= min(warped, buffered) - 0.05


def test_ablation_compressor_count(regenerate):
    result = regenerate(compressor_count)
    avg = result.row("AVERAGE")
    # More units never hurt.
    assert avg[1] >= avg[-1] - 1e-9
    # The paper's 2c/4d provisioning is already at the knee: quadrupling
    # units gains almost nothing.
    assert abs(avg[3] - avg[4]) < 0.03

"""Regenerate Figure 8: compression ratio, non-divergent vs divergent.

Paper shape: average non-divergent ratio ~2.5x, divergent ~1.3x; LIB
compresses nearly perfectly (8x in bank granularity).
"""

from repro.harness.experiments import fig08


def test_fig08(regenerate):
    result = regenerate(fig08)
    nd = result.cell("AVERAGE", "nondivergent")
    d = result.cell("AVERAGE", "divergent")
    assert 1.8 <= nd <= 5.0  # paper: 2.5
    assert d < nd  # divergence hurts compressibility
    assert result.cell("lib", "nondivergent") > 6.0
    assert result.cell("aes", "nondivergent") < 2.0

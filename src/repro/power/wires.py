"""Wire data-movement energy model.

Register values travel roughly 1 mm between the SRAM banks and the
execution units; the paper models this movement explicitly because it is a
significant fraction of the per-bank access energy (Section 6.1, following
Keckler et al. and the exascale study).  The energy to drive one wire one
transition is ``1/2 * C * V^2``; a 128-bit bank port with switching
activity ``a`` therefore costs::

    E = 1/2 * C_per_mm * V^2 * distance_mm * 128 * a

With the Table 3 values (300 fF/mm, 1.0 V, 1 mm) and the paper's default
activity of 0.5 this evaluates to 9.6 pJ per 128-bit transfer — exactly
the "Wire Energy (128-bit, pJ/mm)" row of Table 3.
"""

from __future__ import annotations

from repro.power.params import EnergyParams


def wire_energy_per_bank_pj(
    params: EnergyParams, activity: float | None = None
) -> float:
    """Energy (pJ) to move one bank-width of data across the wires.

    ``activity`` overrides the parameter set's switching factor; Figure 19
    sweeps it from 0 to 1.
    """
    a = params.wire_activity if activity is None else activity
    if not 0.0 <= a <= 1.0:
        raise ValueError(f"wire activity must be in [0, 1], got {a}")
    capacitance_f = params.wire_capacitance_ff_per_mm * 1e-15
    joules_per_wire = 0.5 * capacitance_f * params.voltage**2
    joules = joules_per_wire * params.wire_distance_mm * params.bank_bits * a
    return joules * 1e12

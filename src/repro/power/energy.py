"""Event-driven register-file energy accounting.

The simulator reports *events* (bank reads/writes, wire transfers,
compressor/decompressor activations, elapsed cycles, per-bank gated
cycles); this module converts them into the energy breakdown the paper
plots in Figure 9:

* **dynamic** — bank access energy plus wire data-movement energy,
* **leakage** — per-bank leakage for every non-gated cycle,
* **compression** / **decompression** — unit activation energy plus the
  (small) leakage of the added units.

All arithmetic is in picojoules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.power.params import EnergyParams
from repro.power.wires import wire_energy_per_bank_pj


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy totals (pJ) in the Figure 9 categories."""

    bank_access_pj: float
    wire_pj: float
    bank_leakage_pj: float
    compression_pj: float
    decompression_pj: float
    #: register-file-cache array accesses (RFC extension; 0 without it)
    rfc_pj: float = 0.0

    @property
    def dynamic_pj(self) -> float:
        """Bank access + wire movement + RFC array energy."""
        return self.bank_access_pj + self.wire_pj + self.rfc_pj

    @property
    def leakage_pj(self) -> float:
        return self.bank_leakage_pj

    @property
    def total_pj(self) -> float:
        return (
            self.dynamic_pj
            + self.bank_leakage_pj
            + self.compression_pj
            + self.decompression_pj
        )

    def normalized_to(self, baseline: "EnergyBreakdown") -> dict[str, float]:
        """Each category as a fraction of ``baseline`` total energy.

        This is exactly how Figure 9 presents its stacked bars: every
        component normalised to the uncompressed design's total.
        """
        total = baseline.total_pj
        if total <= 0:
            raise ValueError("baseline total energy must be positive")
        return {
            "dynamic": self.dynamic_pj / total,
            "leakage": self.leakage_pj / total,
            "compression": self.compression_pj / total,
            "decompression": self.decompression_pj / total,
            "total": self.total_pj / total,
        }

    # ------------------------------------------------------------------
    # Serialisation (RunResult artifacts)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The five stored categories, losslessly (floats round-trip)."""
        return {
            "bank_access_pj": self.bank_access_pj,
            "wire_pj": self.wire_pj,
            "bank_leakage_pj": self.bank_leakage_pj,
            "compression_pj": self.compression_pj,
            "decompression_pj": self.decompression_pj,
            "rfc_pj": self.rfc_pj,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyBreakdown":
        return cls(**{k: float(v) for k, v in data.items()})


@dataclass
class EnergyModel:
    """Accumulates register-file events and prices them with Table 3.

    Parameters
    ----------
    params:
        Energy constants (possibly scaled for a design-space sweep).
    num_banks:
        Banks in the register file (leakage when not gated).
    num_compressors / num_decompressors:
        Added units whose leakage is charged when compression is enabled;
        pass zero for the baseline design.
    """

    params: EnergyParams
    num_banks: int
    num_compressors: int = 0
    num_decompressors: int = 0

    bank_reads: int = field(default=0, init=False)
    bank_writes: int = field(default=0, init=False)
    wire_transfers: int = field(default=0, init=False)
    compressions: int = field(default=0, init=False)
    decompressions: int = field(default=0, init=False)
    rfc_accesses: int = field(default=0, init=False)
    cycles: int = field(default=0, init=False)
    gated_bank_cycles: int = field(default=0, init=False)

    # ------------------------------------------------------------------
    # Event recording
    # ------------------------------------------------------------------
    def record_read(self, banks: int) -> None:
        """A register read touching ``banks`` banks (and their wires)."""
        self.bank_reads += banks
        self.wire_transfers += banks

    def record_write(self, banks: int) -> None:
        """A register write touching ``banks`` banks (and their wires)."""
        self.bank_writes += banks
        self.wire_transfers += banks

    def record_compression(self, count: int = 1) -> None:
        self.compressions += count

    def record_rfc(self, count: int = 1) -> None:
        """Register-file-cache array accesses (read hits and writes)."""
        self.rfc_accesses += count

    def record_decompression(self, count: int = 1) -> None:
        self.decompressions += count

    def attach_metrics(self, registry) -> None:
        """Register event totals into a :class:`repro.obs` registry.

        These are the grant-time access counts the interval sampler
        turns into per-interval bank pressure and codec activity series.
        """
        registry.probe("energy.bank_reads", lambda: self.bank_reads, kind="delta")
        registry.probe(
            "energy.bank_writes", lambda: self.bank_writes, kind="delta"
        )
        registry.probe(
            "energy.compressions", lambda: self.compressions, kind="delta"
        )
        registry.probe(
            "energy.decompressions", lambda: self.decompressions, kind="delta"
        )
        registry.probe(
            "energy.rfc_accesses", lambda: self.rfc_accesses, kind="delta"
        )

    def finalize(
        self, cycles: int, gated_cycles_per_bank: list[int] | None = None
    ) -> None:
        """Record elapsed time and gating results at end of simulation."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        self.cycles = cycles
        if gated_cycles_per_bank is None:
            self.gated_bank_cycles = 0
        else:
            if len(gated_cycles_per_bank) != self.num_banks:
                raise ValueError(
                    f"expected {self.num_banks} per-bank values, got "
                    f"{len(gated_cycles_per_bank)}"
                )
            self.gated_bank_cycles = sum(gated_cycles_per_bank)

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------
    def breakdown(self) -> EnergyBreakdown:
        """Convert accumulated events into the Figure 9 categories."""
        p = self.params
        access = (self.bank_reads + self.bank_writes) * p.bank_access_energy_pj
        wire = self.wire_transfers * wire_energy_per_bank_pj(p)
        active_bank_cycles = self.num_banks * self.cycles - self.gated_bank_cycles
        bank_leak = active_bank_cycles * p.leakage_pj_per_cycle(p.bank_leakage_mw)
        comp = self.compressions * p.compression_energy_pj
        comp += (
            self.num_compressors
            * self.cycles
            * p.leakage_pj_per_cycle(p.compressor_leakage_mw)
        )
        decomp = self.decompressions * p.decompression_energy_pj
        decomp += (
            self.num_decompressors
            * self.cycles
            * p.leakage_pj_per_cycle(p.decompressor_leakage_mw)
        )
        return EnergyBreakdown(
            bank_access_pj=access,
            wire_pj=wire,
            bank_leakage_pj=bank_leak,
            compression_pj=comp,
            decompression_pj=decomp,
            rfc_pj=self.rfc_accesses * p.rfc_access_energy_pj,
        )

    def to_dict(self) -> dict:
        """Event counts + constants: enough to re-price after reload."""
        return {
            "params": self.params.to_dict(),
            "num_banks": self.num_banks,
            "num_compressors": self.num_compressors,
            "num_decompressors": self.num_decompressors,
            "bank_reads": self.bank_reads,
            "bank_writes": self.bank_writes,
            "wire_transfers": self.wire_transfers,
            "compressions": self.compressions,
            "decompressions": self.decompressions,
            "rfc_accesses": self.rfc_accesses,
            "cycles": self.cycles,
            "gated_bank_cycles": self.gated_bank_cycles,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyModel":
        model = cls(
            params=EnergyParams.from_dict(data["params"]),
            num_banks=int(data["num_banks"]),
            num_compressors=int(data["num_compressors"]),
            num_decompressors=int(data["num_decompressors"]),
        )
        for name in (
            "bank_reads",
            "bank_writes",
            "wire_transfers",
            "compressions",
            "decompressions",
            "rfc_accesses",
            "cycles",
            "gated_bank_cycles",
        ):
            setattr(model, name, int(data[name]))
        return model

    def reprice(self, params: EnergyParams) -> EnergyBreakdown:
        """Price the same event counts under different constants.

        The design-space sweeps of Figures 17–19 change only energy
        constants, not microarchitectural behaviour, so one simulation's
        event counts can be re-priced under many parameter sets.
        """
        saved = self.params
        try:
            self.params = params
            return self.breakdown()
        finally:
            self.params = saved

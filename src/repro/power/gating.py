"""Bank-level power gating (paper Section 5.3).

Every register bank carries a sleep transistor and a valid bit per entry.
When a bank holds no valid entries it is gated off, eliminating its
leakage; the next access to a gated bank must first wake it, which takes
``wakeup_latency`` cycles (10 by default, Table 2) and stalls the access.

A bank is not gated the instant it empties: registers that oscillate
between compressed widths would otherwise gate and re-wake their cluster's
high banks every few cycles, and each wake costs a 10-cycle stall — a
thrash the sleep-transistor control must avoid in any realisable design.
The controller therefore applies a hysteresis of ``gate_delay`` idle
cycles before turning a bank off; truly idle banks (the high banks of
each cluster once their registers compress, Figure 10) still spend almost
their whole lifetime gated.

The controller tracks, per bank, the number of valid entries and the
cumulative gated cycles — the latter feeds both the leakage-energy model
and the per-bank gating histogram of Figure 10.

The baseline register file has no gating hardware at all (the paper notes
it has no gating *opportunity* either, because registers are deliberately
spread across all banks to avoid conflicts); the simulator simply does not
instantiate a controller for the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class BankState(Enum):
    """Power state of one register bank."""

    ON = "on"
    GATED = "gated"
    WAKING = "waking"


@dataclass
class _Bank:
    state: BankState
    valid_entries: int = 0
    #: Cycle at which the current gated interval began.
    interval_start: int = 0
    #: Cycle a WAKING bank becomes usable.
    ready_at: int = 0
    #: Cycle the bank last became empty (hysteresis timer), or None.
    empty_since: int | None = None
    gated_cycles: int = 0
    wakeups: int = 0


class BankGatingController:
    """Valid-entry tracking and sleep-transistor control for all banks.

    All methods take the current simulation ``cycle`` so gated intervals
    can be accumulated exactly without a per-cycle sweep.
    """

    def __init__(
        self,
        num_banks: int,
        wakeup_latency: int = 10,
        gate_delay: int = 64,
    ):
        if num_banks <= 0:
            raise ValueError(f"num_banks must be positive, got {num_banks}")
        if wakeup_latency < 0:
            raise ValueError(
                f"wakeup latency must be non-negative, got {wakeup_latency}"
            )
        if gate_delay < 0:
            raise ValueError(f"gate delay must be non-negative, got {gate_delay}")
        self.num_banks = num_banks
        self.wakeup_latency = wakeup_latency
        self.gate_delay = gate_delay
        # Banks power up gated: no valid entries exist at reset.
        self._banks = [
            _Bank(state=BankState.GATED, interval_start=0)
            for _ in range(num_banks)
        ]
        #: Outstanding lazy transitions: a WAKING bank counts one and a
        #: running hysteresis timer counts one (a bank can hold both).
        #: settle() runs every cycle, so it must cost O(1) — not a bank
        #: sweep — when nothing can change.
        self._unsettled = 0
        #: Banks currently in the ON state.  When every bank is ON the
        #: arbiter can grant without a per-bank readiness probe.
        self._on_count = 0

    # ------------------------------------------------------------------
    # Valid-entry bookkeeping
    # ------------------------------------------------------------------
    def entry_allocated(self, bank: int, cycle: int) -> None:
        """A register entry in ``bank`` became valid (register written)."""
        b = self._banks[bank]
        b.valid_entries += 1
        if b.empty_since is not None:
            b.empty_since = None
            self._unsettled -= 1
        if b.state is BankState.GATED:
            # Writing wakes the bank; the access-side stall is modelled by
            # ready_cycle_for_access, which callers use before the write.
            self._wake(b, cycle)

    def entry_freed(self, bank: int, cycle: int) -> None:
        """A register entry in ``bank`` became invalid (freed/compressed)."""
        b = self._banks[bank]
        if b.valid_entries <= 0:
            raise RuntimeError(f"bank {bank} freed more entries than allocated")
        b.valid_entries -= 1
        if b.valid_entries == 0:
            # Start the hysteresis timer; settle() gates the bank once it
            # has stayed empty for gate_delay cycles.
            if b.empty_since is None:
                self._unsettled += 1
            b.empty_since = cycle

    # ------------------------------------------------------------------
    # Access-side interface
    # ------------------------------------------------------------------
    def ready_cycle_for_access(self, bank: int, cycle: int) -> int:
        """Earliest cycle an access issued at ``cycle`` can proceed.

        Accessing an ON bank is immediate.  A GATED bank starts waking and
        is usable after ``wakeup_latency`` cycles; a WAKING bank is usable
        when its wake completes.
        """
        b = self._banks[bank]
        if b.state is BankState.ON:
            return cycle
        if b.state is BankState.GATED:
            self._wake(b, cycle)
            return b.ready_at
        return max(cycle, b.ready_at)

    def settle(self, cycle: int) -> None:
        """Advance lazy state transitions up to ``cycle``.

        Promotes WAKING banks whose wake-up completed, and gates ON banks
        whose hysteresis timer expired (the gated interval is back-dated
        to timer expiry so the accounting does not depend on how often
        settle runs).
        """
        if self._unsettled == 0:
            return
        for b in self._banks:
            if b.state is BankState.WAKING and cycle >= b.ready_at:
                b.state = BankState.ON
                self._on_count += 1
                self._unsettled -= 1
            if (
                b.state is BankState.ON
                and b.empty_since is not None
                and cycle - b.empty_since >= self.gate_delay
            ):
                b.state = BankState.GATED
                self._on_count -= 1
                b.interval_start = b.empty_since + self.gate_delay
                b.empty_since = None
                self._unsettled -= 1

    def all_on(self) -> bool:
        """Whether every bank is ON (no grant needs a readiness probe)."""
        return self._on_count == self.num_banks

    def waking_ready_at(self, bank: int) -> int | None:
        """``ready_at`` of a WAKING bank, ``None`` otherwise.

        Side-effect-free counterpart of :meth:`ready_cycle_for_access`
        for the simulator fast path: an access stalled on a wake-up
        cannot proceed before this cycle, so the run loop may skip to it.
        """
        b = self._banks[bank]
        if b.state is BankState.WAKING:
            return b.ready_at
        return None

    def _wake(self, b: _Bank, cycle: int) -> None:
        b.gated_cycles += max(0, cycle - b.interval_start)
        b.state = BankState.WAKING
        self._unsettled += 1
        b.ready_at = cycle + self.wakeup_latency
        b.wakeups += 1
        # A wake is always in service of an imminent access: restart the
        # idle timer, otherwise a stale timestamp would re-gate the bank
        # the moment it finishes waking.
        if b.empty_since is not None:
            b.empty_since = None
            self._unsettled -= 1

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def finalize(self, end_cycle: int) -> None:
        """Close any open gated intervals at the end of simulation."""
        self.settle(end_cycle)
        for b in self._banks:
            if b.state is BankState.GATED:
                b.gated_cycles += max(0, end_cycle - b.interval_start)
                b.interval_start = end_cycle

    def gated_cycles(self, bank: int) -> int:
        """Cumulative gated cycles of ``bank`` (call finalize first)."""
        return self._banks[bank].gated_cycles

    def gated_fraction(self, bank: int, total_cycles: int) -> float:
        """Fraction of ``total_cycles`` that ``bank`` spent gated."""
        if total_cycles <= 0:
            return 0.0
        return self._banks[bank].gated_cycles / total_cycles

    def gated_fractions(self, total_cycles: int) -> list[float]:
        """Per-bank gated fractions — the Figure 10 series."""
        return [
            self.gated_fraction(i, total_cycles) for i in range(self.num_banks)
        ]

    def total_wakeups(self) -> int:
        return sum(b.wakeups for b in self._banks)

    def gated_bank_count(self) -> int:
        """Banks currently powered off (the live Figure 10 signal)."""
        return sum(1 for b in self._banks if b.state is BankState.GATED)

    def attach_metrics(self, registry) -> None:
        """Register gating state into a :class:`repro.obs` registry."""
        registry.probe("gating.gated_banks", self.gated_bank_count)
        registry.probe("gating.wakeups", self.total_wakeups, kind="delta")

    def state(self, bank: int) -> BankState:
        return self._banks[bank].state

    def valid_entries(self, bank: int) -> int:
        return self._banks[bank].valid_entries

    # ------------------------------------------------------------------
    # Verification support (repro.verify)
    # ------------------------------------------------------------------
    def check_consistency(self, occupancy) -> None:
        """Cross-check valid-entry counters against register-file truth.

        ``occupancy`` is the per-bank valid-entry count recomputed from
        register-file slot state (:meth:`RegisterFile.bank_occupancy`).
        Verifies the two gating invariants: the incrementally-maintained
        counters never drift from the ground truth, and a GATED bank never
        holds live data (gating a bank with valid entries would corrupt
        architectural state in real hardware).
        """
        from repro.verify.invariants import InvariantViolation

        if len(occupancy) != self.num_banks:
            raise InvariantViolation(
                f"occupancy vector covers {len(occupancy)} banks, "
                f"controller has {self.num_banks}"
            )
        for bank, b in enumerate(self._banks):
            expected = int(occupancy[bank])
            if b.valid_entries != expected:
                raise InvariantViolation(
                    f"bank {bank}: gating tracks {b.valid_entries} valid "
                    f"entries but the register file holds {expected}"
                )
            if b.state is BankState.GATED and b.valid_entries != 0:
                raise InvariantViolation(
                    f"bank {bank}: gated while holding "
                    f"{b.valid_entries} valid entries"
                )
        expected_unsettled = sum(
            (b.state is BankState.WAKING) + (b.empty_since is not None)
            for b in self._banks
        )
        if self._unsettled != expected_unsettled:
            raise InvariantViolation(
                f"gating settle short-circuit counter drifted: tracks "
                f"{self._unsettled} outstanding transitions, banks hold "
                f"{expected_unsettled}"
            )
        expected_on = sum(1 for b in self._banks if b.state is BankState.ON)
        if self._on_count != expected_on:
            raise InvariantViolation(
                f"gating ON-bank counter drifted: tracks {self._on_count}, "
                f"banks hold {expected_on}"
            )

"""Energy and power parameters (paper Table 3, 45 nm).

The paper derives these constants from CACTI (SRAM bank access energy and
leakage), published adder energy numbers (compression/decompression unit
activation), and RTL synthesis with the FreePDK 45 nm library (comparator
and delta-storage overheads).  All evaluation figures are linear functions
of these scalars, so we take them verbatim and expose multiplicative
scaling knobs for the sensitivity studies of Figures 17 and 18.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace


@dataclass(frozen=True)
class EnergyParams:
    """Register-file energy model constants.

    Defaults reproduce paper Table 3 and the Table 2 clock.  Energies are
    picojoules, powers are milliwatts, frequency is gigahertz.
    """

    #: SM clock frequency (GHz) — converts leakage power to per-cycle energy.
    clock_ghz: float = 1.4
    #: Operating voltage (V).
    voltage: float = 1.0
    #: Wire capacitance (fF per mm) feeding the wire-energy model.
    wire_capacitance_ff_per_mm: float = 300.0
    #: Distance register data travels between banks and execution units (mm).
    wire_distance_mm: float = 1.0
    #: Fraction of the 128 wires of a bank port that switch per transfer.
    #: The paper assumes half the wires move zeros and half move ones.
    wire_activity: float = 0.5
    #: Dynamic energy of one 16-byte bank access (pJ).
    bank_access_energy_pj: float = 7.0
    #: Leakage power of one bank (mW).
    bank_leakage_mw: float = 5.8
    #: Energy per compressor-unit activation (pJ).
    compression_energy_pj: float = 23.0
    #: Leakage power of one compressor unit (mW).
    compressor_leakage_mw: float = 0.12
    #: Energy per decompressor-unit activation (pJ).
    decompression_energy_pj: float = 21.0
    #: Leakage power of one decompressor unit (mW).
    decompressor_leakage_mw: float = 0.08
    #: Bits moved per bank access (bank width).
    bank_bits: int = 128
    #: Energy of one register-file-cache access (pJ) — the small
    #: per-warp SRAM of the RFC extension, far cheaper than a bank.
    rfc_access_energy_pj: float = 1.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.wire_activity <= 1.0:
            raise ValueError(
                f"wire activity must be in [0, 1], got {self.wire_activity}"
            )
        if self.clock_ghz <= 0:
            raise ValueError(f"clock must be positive, got {self.clock_ghz}")

    @property
    def cycle_time_ns(self) -> float:
        """Duration of one clock cycle in nanoseconds."""
        return 1.0 / self.clock_ghz

    def leakage_pj_per_cycle(self, power_mw: float) -> float:
        """Convert a leakage power (mW) into energy per cycle (pJ).

        1 mW for 1 ns is exactly 1 pJ, so this is ``power_mw / clock_ghz``.
        """
        return power_mw * self.cycle_time_ns

    def scaled(
        self,
        bank_access: float = 1.0,
        comp_decomp: float = 1.0,
        wire_activity: float | None = None,
    ) -> "EnergyParams":
        """A copy with scaled knobs for the design-space sweeps.

        ``bank_access`` multiplies the per-bank access energy (Figure 18);
        ``comp_decomp`` multiplies both unit activation energies
        (Figure 17); ``wire_activity`` replaces the switching factor
        (Figure 19).
        """
        kwargs: dict = {
            "bank_access_energy_pj": self.bank_access_energy_pj * bank_access,
            "compression_energy_pj": self.compression_energy_pj * comp_decomp,
            "decompression_energy_pj": self.decompression_energy_pj
            * comp_decomp,
        }
        if wire_activity is not None:
            kwargs["wire_activity"] = wire_activity
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Serialisation (RunResult artifacts)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """All constants as a JSON-compatible mapping (lossless)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyParams":
        return cls(**data)

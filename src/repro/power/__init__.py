"""Power and energy models for the GPU register file.

Implements the paper's evaluation methodology (Section 6.1, Table 3):

* :mod:`repro.power.params` — the 45 nm energy/power constants of Table 3
  plus scaling helpers for the design-space sweeps of Figures 17–19.
* :mod:`repro.power.wires` — wire data-movement energy as a function of
  wire capacitance, voltage, and switching-activity factor.
* :mod:`repro.power.gating` — bank-level power-gating state machine with
  wake-up latency (Section 5.3).
* :mod:`repro.power.energy` — event-driven energy accounting that turns
  simulator event counts into the Figure 9 energy breakdown.
"""

from repro.power.energy import EnergyBreakdown, EnergyModel
from repro.power.gating import BankGatingController, BankState
from repro.power.params import EnergyParams
from repro.power.wires import wire_energy_per_bank_pj

__all__ = [
    "BankGatingController",
    "BankState",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParams",
    "wire_energy_per_bank_pj",
]

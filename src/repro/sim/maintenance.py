"""``repro cache`` — maintenance CLI for the content-addressed cache.

Three subcommands, all rooted at the same directory every other entry
point resolves (``--cache-dir`` flag, else ``$REPRO_CACHE_DIR``, else
``.repro-cache``; see :func:`repro.sim.cache.resolve_cache_dir`):

* ``stats`` — entry/trace counts and byte totals; with ``--peer
  HOST:PORT`` also scrapes a live coordinator's cache-tier hit/miss
  counters from its ``/v1/metrics``;
* ``gc`` — prune by age (``--max-age 7d``) and/or total size
  (``--max-bytes 500M``, oldest entries first), plus orphaned ``.tmp``
  files and trace artifacts no entry references; ``--dry-run`` prints
  the plan without deleting;
* ``fsck`` — re-verify every entry the hard way (filename == stored
  key == fingerprint of the stored material, result parses).  Corrupt
  entries are **quarantined** to ``<root>/quarantine/``, never
  deleted: a corrupt entry is evidence worth keeping.

Content-addressing is what makes ``gc`` safe: deleting an entry can
never lose information that a re-run cannot regenerate bit-identically.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.sim.cache import fingerprint, resolve_cache_dir
from repro.sim.result import RunResult

_AGE_UNITS = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 604800}
_SIZE_UNITS = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}


def parse_age(text: str) -> float:
    """``"7d"``/``"12h"``/``"90m"``/``"3600"`` → seconds."""
    text = text.strip().lower()
    unit = 1
    if text and text[-1] in _AGE_UNITS:
        unit = _AGE_UNITS[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError as exc:
        raise SystemExit(f"bad age {text!r} (use e.g. 7d, 12h, 3600)") from exc
    return value * unit


def parse_size(text: str) -> int:
    """``"500M"``/``"2G"``/``"1048576"`` → bytes."""
    text = text.strip().lower().rstrip("b")
    unit = 1
    if text and text[-1] in _SIZE_UNITS:
        unit = _SIZE_UNITS[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError as exc:
        raise SystemExit(f"bad size {text!r} (use e.g. 500M, 2G)") from exc
    return int(value * unit)


def _format_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} GiB"  # pragma: no cover - unreachable


def _entry_files(root: Path) -> list[Path]:
    results = root / "results"
    return sorted(results.rglob("*.json")) if results.is_dir() else []


def _trace_files(root: Path) -> list[Path]:
    traces = root / "traces"
    return sorted(traces.rglob("*.npz")) if traces.is_dir() else []


def _tmp_files(root: Path) -> list[Path]:
    results = root / "results"
    return sorted(results.rglob("*.tmp")) if results.is_dir() else []


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
def cmd_stats(args) -> int:
    root = resolve_cache_dir(args.cache_dir)
    entries = _entry_files(root)
    traces = _trace_files(root)
    tmps = _tmp_files(root)
    entry_bytes = sum(p.stat().st_size for p in entries)
    trace_bytes = sum(p.stat().st_size for p in traces)
    print(f"cache root: {root}")
    print(f"  entries: {len(entries)} ({_format_bytes(entry_bytes)})")
    print(f"  traces:  {len(traces)} ({_format_bytes(trace_bytes)})")
    if tmps:
        print(f"  orphaned tmp files: {len(tmps)} (run `repro cache gc`)")
    quarantine = root / "quarantine"
    if quarantine.is_dir():
        bad = list(quarantine.iterdir())
        if bad:
            print(f"  quarantined entries: {len(bad)} (see {quarantine})")
    if args.peer:
        from repro.serve.http import http_json_call, parse_hostport

        host, port = parse_hostport(args.peer, 8650)
        try:
            _status, _headers, payload = http_json_call(
                host, port, "GET", "/v1/metrics", timeout=10.0
            )
        except OSError as exc:
            print(f"  peer {host}:{port} unreachable: {exc}")
            return 1
        metrics = payload.get("metrics", {})
        print(f"  peer {host}:{port} cache-tier counters:")
        for name in sorted(metrics):
            if "cache" in name or name.startswith("cluster.put"):
                print(f"    {name}: {metrics[name]:g}")
    return 0


# ----------------------------------------------------------------------
# gc
# ----------------------------------------------------------------------
def cmd_gc(args) -> int:
    if args.max_age is None and args.max_bytes is None and not args.orphans:
        raise SystemExit(
            "nothing to do: give --max-age, --max-bytes, and/or --orphans"
        )
    root = resolve_cache_dir(args.cache_dir)
    now = time.time()
    doomed: list[Path] = []
    entries = _entry_files(root)

    if args.max_age is not None:
        horizon = now - parse_age(args.max_age)
        expired = [p for p in entries if p.stat().st_mtime < horizon]
        doomed.extend(expired)
        entries = [p for p in entries if p not in set(expired)]

    if args.max_bytes is not None:
        budget = parse_size(args.max_bytes)
        # Oldest first: survivors are the most recently written entries.
        by_age = sorted(entries, key=lambda p: p.stat().st_mtime, reverse=True)
        total = 0
        for path in by_age:
            total += path.stat().st_size
            if total > budget:
                doomed.append(path)

    # Orphans are always collected once gc runs at all: half-written
    # .tmp files, and trace artifacts whose entry is gone (or doomed).
    surviving = {
        p.stem for p in _entry_files(root) if p not in set(doomed)
    }
    orphan_traces = [
        p for p in _trace_files(root) if p.stem not in surviving
    ]
    tmps = _tmp_files(root)

    freed = sum(
        p.stat().st_size for p in (*doomed, *orphan_traces, *tmps)
    )
    verb = "would delete" if args.dry_run else "deleted"
    print(
        f"{verb} {len(doomed)} entries, {len(orphan_traces)} orphan "
        f"traces, {len(tmps)} tmp files ({_format_bytes(freed)}) "
        f"from {root}"
    )
    if args.dry_run:
        for path in (*doomed, *orphan_traces, *tmps):
            print(f"  {path}")
        return 0
    # Entries left referencing a now-deleted trace self-heal: the cache
    # treats a missing trace artifact as a miss and re-captures.
    for path in (*doomed, *orphan_traces, *tmps):
        try:
            path.unlink()
        except OSError as exc:
            print(f"  could not delete {path}: {exc}")
    return 0


# ----------------------------------------------------------------------
# fsck
# ----------------------------------------------------------------------
def cmd_fsck(args) -> int:
    root = resolve_cache_dir(args.cache_dir)
    quarantine = root / "quarantine"
    checked = 0
    quarantined: list[tuple[Path, str]] = []
    for path in _entry_files(root):
        checked += 1
        problem = _check_entry(path)
        if problem is None:
            continue
        quarantined.append((path, problem))
        if not args.dry_run:
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
    verb = "would quarantine" if args.dry_run else "quarantined"
    print(
        f"fsck {root}: {checked} entries checked, "
        f"{len(quarantined)} corrupt ({verb})"
    )
    for path, problem in quarantined:
        print(f"  {path.name}: {problem}")
    # Corruption is an error exit so CI can gate on fsck.
    return 1 if quarantined else 0


def _check_entry(path: Path) -> str | None:
    """One entry's full integrity check; returns the problem or None."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        return f"unreadable JSON: {exc}"
    if not isinstance(payload, dict):
        return "payload is not an object"
    key = payload.get("key")
    if key != path.stem:
        return f"stored key {str(key)[:12]!r}… does not match filename"
    material = payload.get("material")
    if not isinstance(material, dict):
        return "missing key material"
    if fingerprint(material) != key:
        return "key is not the fingerprint of the stored material"
    try:
        RunResult.from_dict(payload["result"])
    except (KeyError, TypeError, ValueError) as exc:
        return f"result does not parse: {exc}"
    return None


# ----------------------------------------------------------------------
# argparse wiring (registered by repro.verify.cli)
# ----------------------------------------------------------------------
def add_cache_parser(sub) -> None:
    cache = sub.add_parser(
        "cache",
        help="inspect and maintain the content-addressed result cache",
        description="Maintenance for the shared result cache used by the "
        "runner, repro serve, and the cluster stack.  All subcommands "
        "resolve the same directory: --cache-dir, else $REPRO_CACHE_DIR, "
        "else .repro-cache.",
    )
    cache.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="cache root (default: .repro-cache or $REPRO_CACHE_DIR)",
    )
    msub = cache.add_subparsers(dest="cache_command", required=True)

    stats = msub.add_parser(
        "stats", help="entry/trace counts, byte totals, peer counters"
    )
    stats.add_argument(
        "--peer",
        metavar="HOST:PORT",
        help="also scrape a live coordinator's cache-tier hit/miss "
        "counters from /v1/metrics",
    )

    gc = msub.add_parser(
        "gc", help="prune entries by age/size plus orphaned files"
    )
    gc.add_argument(
        "--max-age",
        metavar="AGE",
        help="delete entries older than AGE (e.g. 7d, 12h, 3600)",
    )
    gc.add_argument(
        "--max-bytes",
        metavar="SIZE",
        help="keep newest entries up to SIZE total (e.g. 500M, 2G)",
    )
    gc.add_argument(
        "--orphans",
        action="store_true",
        help="collect orphaned tmp/trace files even with no age/size bound",
    )
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="print what would be deleted without deleting",
    )

    fsck = msub.add_parser(
        "fsck",
        help="verify every entry; quarantine (never delete) corruption",
    )
    fsck.add_argument(
        "--dry-run",
        action="store_true",
        help="report corruption without moving files",
    )


def cmd_cache(args) -> int:
    if args.cache_command == "stats":
        return cmd_stats(args)
    if args.cache_command == "gc":
        return cmd_gc(args)
    if args.cache_command == "fsck":
        return cmd_fsck(args)
    raise SystemExit(f"unknown cache command {args.cache_command!r}")

"""Content-addressed on-disk store for :class:`~repro.sim.result.RunResult`.

Every cache entry is keyed by a SHA-256 digest of the *content* that
determines a simulation's outcome: benchmark name, its input seed, the
workload scale, the compression policy, the canonicalized
:class:`~repro.gpu.config.GPUConfig`, and a fingerprint of the simulator
source itself.  Identical requests — however they were phrased (an
explicit latency equal to the default, a config override that lands on
the default value) — hash to the same entry, and any change to the
simulator's code invalidates the whole cache automatically.

Entries are JSON files under ``<root>/results/<digest[:2]>/<digest>.json``
written atomically; captured register traces live next to them under
``<root>/traces/``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.sim.result import RunResult

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default on-disk cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Packages whose source determines simulation outcomes.  ``harness`` and
#: ``sim`` itself are deliberately excluded: they orchestrate and report,
#: they do not change what a simulation computes.  ``obs`` is included
#: because the interval sampler shapes the cached ``timeline`` payload.
_VERSIONED_PACKAGES = ("core", "gpu", "power", "kernels", "analysis", "obs")

_code_version: str | None = None


def code_version() -> str:
    """Fingerprint of the simulator source (cached per process).

    A short SHA-256 over every ``.py`` file of the packages that affect
    simulation results, so stale cache entries can never survive a code
    change.
    """
    global _code_version
    if _code_version is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for package in _VERSIONED_PACKAGES:
            for path in sorted((root / package).rglob("*.py")):
                digest.update(path.relative_to(root).as_posix().encode())
                digest.update(path.read_bytes())
        _code_version = digest.hexdigest()[:16]
    return _code_version


def default_cache_dir() -> Path:
    """Resolve the cache root (``$REPRO_CACHE_DIR`` or ``.repro-cache``)."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


def resolve_cache_dir(explicit: str | Path | None = None) -> Path:
    """The one cache-directory resolution rule for every entry point.

    Precedence: an explicit path (a ``--cache-dir`` flag, a config
    field) wins; otherwise ``$REPRO_CACHE_DIR``; otherwise
    ``.repro-cache`` in the working directory.  The runner, ``repro
    serve``, the cluster coordinator/workers, the fuzzer's artifact
    root, and the ``repro cache`` maintenance CLI all funnel through
    here, so one environment variable points them all at the same
    result universe.
    """
    if explicit is not None and str(explicit):
        return Path(explicit)
    return default_cache_dir()


def fingerprint(material: dict) -> str:
    """SHA-256 of canonical JSON — the cache key for one request."""
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Content-addressed RunResult store rooted at one directory."""

    def __init__(self, root: Path | str):
        self.root = Path(root)

    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        return self.root / "results" / key[:2] / f"{key}.json"

    def trace_path(self, key: str) -> Path:
        """Where a captured register trace for ``key`` belongs."""
        return self.root / "traces" / f"{key}.npz"

    # ------------------------------------------------------------------
    def read_entry(self, key: str) -> dict | None:
        """The raw on-disk payload for ``key`` (``None`` on miss/corrupt).

        This is the wire shape of the shared cache tier: the cluster
        coordinator serves it verbatim over ``GET /v1/cache/<key>`` and
        peers backfill their local tier from it via :meth:`put_payload`.
        """
        try:
            with open(self._entry_path(key)) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("key") != key:
            return None
        return payload

    @staticmethod
    def parse_payload(key: str, payload: dict) -> tuple[dict, RunResult]:
        """Validate a raw entry payload the hard way.

        The result must parse and the key must match the fingerprint of
        the stored material, so a corrupt or mislabelled peer response
        can never poison a local tier.  Raises ``ValueError`` /
        ``KeyError`` / ``TypeError`` on any mismatch.
        """
        material = payload.get("material")
        result = RunResult.from_dict(payload["result"])
        if not isinstance(material, dict) or fingerprint(material) != key:
            raise ValueError(
                f"cache payload material does not hash to key {key[:12]}…"
            )
        return material, result

    def put_payload(self, key: str, payload: dict) -> None:
        """Persist a raw entry payload fetched from a peer tier."""
        material, result = self.parse_payload(key, payload)
        # Write the *base* tier directly: a backfilled peer entry must
        # never be echoed back out through a tiered subclass's put.
        ResultCache.put(self, key, material, result)

    def contains(self, key: str) -> bool:
        """Whether an entry file exists (no validation, no parsing)."""
        return self._entry_path(key).is_file()

    def entry_keys(self) -> list[str]:
        """Keys of every entry file currently on disk (sorted)."""
        results = self.root / "results"
        if not results.is_dir():
            return []
        return sorted(path.stem for path in results.rglob("*.json"))

    # ------------------------------------------------------------------
    def get(self, key: str) -> RunResult | None:
        """Load one entry, or ``None`` on miss/corruption/stale trace."""
        path = self._entry_path(key)
        try:
            with open(path) as fh:
                payload = json.load(fh)
            result = RunResult.from_dict(payload["result"], from_cache=True)
        except (OSError, ValueError, KeyError):
            return None
        # A result advertising a trace must still be able to deliver it.
        if result.trace_path and not os.path.exists(result.trace_path):
            return None
        return result

    def put(self, key: str, material: dict, result: RunResult) -> None:
        """Atomically persist one entry (key material kept for audit).

        The payload is written to a uniquely-named tempfile *in the
        destination directory* (so the rename never crosses a
        filesystem), fsync'd, and moved into place with ``os.replace``.
        Concurrent writers — parallel server workers, or two CLI
        sessions sharing one cache — each publish a complete file; a
        reader can observe the old entry or the new one, never a torn
        mix, and a crash mid-write leaves at worst an orphaned ``.tmp``.
        """
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key": key, "material": material, "result": result.to_dict()}
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        results = self.root / "results"
        if not results.is_dir():
            return 0
        return sum(1 for _ in results.rglob("*.json"))

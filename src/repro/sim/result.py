"""The immutable per-run artifact the whole experiment layer consumes.

A :class:`RunResult` is everything one kernel simulation produced —
timing counters, the energy breakdown and its re-priceable event model,
per-bank gating fractions, value-similarity/divergence statistics, and
(optionally) a handle to the captured register-write trace.  It is

* **immutable** — experiments read it, nothing downstream mutates it;
* **serializable** — :meth:`to_dict` / :meth:`from_dict` round-trip
  losslessly through JSON, which is what lets results live in the
  content-addressed on-disk cache and travel across process boundaries
  in the parallel executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import RunStats, TimingStats, ValueStats
from repro.obs.timeline import Timeline
from repro.power.energy import EnergyBreakdown, EnergyModel

#: Bump when the serialized layout changes (cache entries self-identify).
#: v2: added ``timeline`` (interval-sampled series) and
#: ``timing.issue_idle_cycles``.
SCHEMA_VERSION = 2


@dataclass(frozen=True, eq=False)
class RunResult:
    """Aggregated, serializable outcome of one (kernel, config) run."""

    benchmark: str
    policy: str
    scale: str
    #: canonical GPUConfig as a plain dict; ``None`` for functional runs
    config: dict | None
    #: ``True`` for cycle-level runs, ``False`` for functional runs
    timing_mode: bool
    cycles: int
    value: ValueStats
    timing: TimingStats | None = None
    energy: EnergyBreakdown | None = None
    energy_model: EnergyModel | None = None
    gated_fractions: tuple[float, ...] | None = None
    #: path to the run's register-write trace (``.npz``), if captured
    trace_path: str | None = None
    #: interval-sampled metric series (``GPUConfig.sample_interval > 0``)
    timeline: Timeline | None = None
    #: ``True`` when this result was materialized from the on-disk cache
    from_cache: bool = field(default=False, compare=False)

    # ------------------------------------------------------------------
    # Legacy-shaped accessors
    # ------------------------------------------------------------------
    @property
    def stats(self) -> RunStats:
        """The run as a :class:`RunStats` record (compatibility view)."""
        return RunStats(
            benchmark=self.benchmark,
            policy=self.policy,
            value=self.value,
            timing=self.timing,
            energy_breakdown=self.energy,
            energy_model=self.energy_model,
            gated_fractions=self.gated_fractions,
            timeline=self.timeline,
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless JSON-compatible representation."""
        return {
            "schema": SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "policy": self.policy,
            "scale": self.scale,
            "config": dict(self.config) if self.config is not None else None,
            "timing_mode": self.timing_mode,
            "cycles": int(self.cycles),
            "value": self.value.to_dict(),
            "timing": self.timing.to_dict() if self.timing else None,
            "energy": self.energy.to_dict() if self.energy else None,
            "energy_model": (
                self.energy_model.to_dict() if self.energy_model else None
            ),
            "gated_fractions": (
                list(self.gated_fractions)
                if self.gated_fractions is not None
                else None
            ),
            "trace_path": self.trace_path,
            "timeline": self.timeline.to_dict() if self.timeline else None,
        }

    @classmethod
    def from_dict(cls, data: dict, from_cache: bool = False) -> "RunResult":
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported RunResult schema {schema!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        return cls(
            benchmark=data["benchmark"],
            policy=data["policy"],
            scale=data["scale"],
            config=data["config"],
            timing_mode=bool(data["timing_mode"]),
            cycles=int(data["cycles"]),
            value=ValueStats.from_dict(data["value"]),
            timing=(
                TimingStats.from_dict(data["timing"])
                if data["timing"] is not None
                else None
            ),
            energy=(
                EnergyBreakdown.from_dict(data["energy"])
                if data["energy"] is not None
                else None
            ),
            energy_model=(
                EnergyModel.from_dict(data["energy_model"])
                if data["energy_model"] is not None
                else None
            ),
            gated_fractions=(
                tuple(data["gated_fractions"])
                if data["gated_fractions"] is not None
                else None
            ),
            trace_path=data["trace_path"],
            timeline=(
                Timeline.from_dict(data["timeline"])
                if data.get("timeline") is not None
                else None
            ),
            from_cache=from_cache,
        )

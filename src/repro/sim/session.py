"""Single-run simulation sessions: memoized, cached, parallel execution.

:class:`Session` is the **only** way the experiment layer executes
kernels.  ``Session.run(request)`` returns an immutable
:class:`~repro.sim.result.RunResult`, memoized three ways:

* **in-process** — identical requests within one session share one
  result object;
* **on disk** — results persist in a content-addressed cache (keyed by
  benchmark, input seed, canonical config, and simulator code version),
  so a warm cache re-renders any figure without simulating at all;
* **across request spellings** — keys are computed from the *canonical*
  GPU configuration, so a request that spells out a default value
  explicitly dedupes with one that does not.

Distinct (kernel, config) pairs fan out across CPU cores via
:meth:`Session.run_many` when ``max_workers > 1``.

The module-level :data:`SIM_COUNTER` counts actual simulations (not
cache hits) process-wide, which is how the test suite *proves* the
run-once/replay-many discipline: running the Figure 9 and Figure 14
experiments back-to-back simulates each distinct pair exactly once, and
a warm-cache rerun simulates nothing.

Functional requests additionally support a **trace-replay tier**
(``SimRequest(replay=True)``): the session captures one canonical
register-write trace per (benchmark, scale) and re-prices every
replayed policy/config against it with whole-trace array arithmetic —
so a policy sweep over a warm trace performs zero new simulations.
"""

from __future__ import annotations

import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable

from repro.gpu.config import GPUConfig
from repro.gpu.functional import run_functional
from repro.gpu.launch import run_kernel
from repro.gpu.trace import RegisterTrace, capture_trace, replay_trace
from repro.kernels import benchmark_names, get_benchmark
from repro.obs.log import get_logger
from repro.obs.profiler import HostProfiler
from repro.sim.cache import (
    ResultCache,
    code_version,
    fingerprint,
    resolve_cache_dir,
)
from repro.sim.result import RunResult

logger = get_logger("sim.session")


class SimulationCounter:
    """Process-wide count of kernel simulations actually executed."""

    def __init__(self) -> None:
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0


#: Global counter incremented once per simulation (never per cache hit).
SIM_COUNTER = SimulationCounter()


@dataclass(frozen=True)
class SimRequest:
    """Identity of one simulation: benchmark × configuration × mode."""

    benchmark: str
    policy: str = "warped"
    scheduler: str = "gto"
    compression_latency: int = 2
    decompression_latency: int = 1
    rfc_entries: int = 0
    timing: bool = True
    collect_bdi: bool = False
    scale: str = "default"
    #: extra :class:`GPUConfig` fields, as a sorted tuple of pairs
    config_overrides: tuple[tuple[str, object], ...] = ()
    #: functional runs only: also capture the register-write trace
    capture_trace: bool = False
    #: functional runs only: price this request by replaying the stored
    #: register-write trace instead of executing the kernel.  The session
    #: shares one captured trace per (benchmark, scale) across every
    #: replayed policy/config, so a warm trace re-prices a whole policy
    #: sweep with zero new simulations.  Ignored for timing runs (a
    #: trace carries no cycle information).
    replay: bool = False

    def gpu_config(self) -> GPUConfig | None:
        """The canonical config this request simulates (timing only)."""
        if not self.timing:
            return None
        config = GPUConfig(
            scheduler_policy=self.scheduler,
            compression_latency=self.compression_latency,
            decompression_latency=self.decompression_latency,
            rfc_entries_per_warp=self.rfc_entries,
        )
        if self.config_overrides:
            config = config.with_overrides(**dict(self.config_overrides))
        return config

    def key_material(self) -> dict:
        """Everything that determines this request's outcome.

        Timing-only knobs are folded into the canonical config (or
        dropped entirely for functional runs), so equivalent requests
        share one cache entry regardless of how they were phrased.
        """
        config = self.gpu_config()
        return {
            "benchmark": self.benchmark,
            "seed": int(get_benchmark(self.benchmark).seed),
            "scale": self.scale,
            "policy": self.policy,
            "timing": self.timing,
            "collect_bdi": self.collect_bdi,
            "capture_trace": self.capture_trace and not self.timing,
            "replay": self.replay and not self.timing,
            "config": asdict(config) if config is not None else None,
            "code": code_version(),
        }

    # ------------------------------------------------------------------
    # Wire round trip (the serve submission body and the cluster shard
    # protocol both carry requests in this shape)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-safe representation; :meth:`from_payload` inverts it."""
        payload = asdict(self)
        if self.config_overrides:
            payload["config_overrides"] = dict(self.config_overrides)
        else:
            payload.pop("config_overrides", None)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "SimRequest":
        """Rebuild a request from :meth:`to_payload` output.

        Raises ``TypeError``/``ValueError`` on unknown or malformed
        fields — the cluster worker calls this on coordinator-supplied
        payloads and must fail loudly rather than simulate the wrong
        thing.
        """
        spec = dict(payload)
        overrides = spec.pop("config_overrides", None)
        if overrides:
            if not isinstance(overrides, dict):
                raise TypeError("config_overrides must be an object")
            spec["config_overrides"] = tuple(sorted(overrides.items()))
        unknown = set(spec) - set(cls.__dataclass_fields__)
        if unknown:
            raise TypeError(f"unknown request fields: {sorted(unknown)}")
        return cls(**spec)


def simulate(request: SimRequest, trace_destination: str | None = None) -> RunResult:
    """Execute one request for real (no caching at this layer).

    Increments :data:`SIM_COUNTER`.  For functional requests with
    ``capture_trace``, the register-write trace is saved to
    ``trace_destination`` and the run's statistics are produced by
    replaying it — guaranteeing the stored trace reproduces the result.
    """
    if request.replay and not request.timing:
        raise ValueError(
            "replay requests are priced by the Session's replay tier, "
            "never simulated directly"
        )
    SIM_COUNTER.add()
    bench = get_benchmark(request.benchmark)
    spec = bench.launch(request.scale)
    gmem = spec.fresh_memory()

    if not request.timing:
        trace_path = None
        if request.capture_trace:
            trace = capture_trace(
                spec.kernel, spec.grid_dim, spec.cta_dim, spec.params, gmem
            )
            if trace_destination is not None:
                Path(trace_destination).parent.mkdir(parents=True, exist_ok=True)
                trace.save(trace_destination)
                trace_path = trace_destination
            stats = replay_trace(
                trace,
                policy=request.policy,
                collect_bdi=request.collect_bdi,
            )
        else:
            stats = run_functional(
                spec.kernel,
                spec.grid_dim,
                spec.cta_dim,
                spec.params,
                gmem,
                policy=request.policy,
                collect_bdi=request.collect_bdi,
            )
        return RunResult(
            benchmark=request.benchmark,
            policy=request.policy,
            scale=request.scale,
            config=None,
            timing_mode=False,
            cycles=0,
            value=stats.value,
            trace_path=trace_path,
        )

    config = request.gpu_config()
    sim = run_kernel(
        spec.kernel,
        spec.grid_dim,
        spec.cta_dim,
        spec.params,
        gmem,
        config=config,
        policy=request.policy,
        collect_bdi=request.collect_bdi,
    )
    bench.verify(gmem, spec)
    return RunResult(
        benchmark=request.benchmark,
        policy=request.policy,
        scale=request.scale,
        config=asdict(config),
        timing_mode=True,
        cycles=sim.cycles,
        value=sim.stats.value,
        timing=sim.stats.timing,
        energy=sim.stats.energy_breakdown,
        energy_model=sim.stats.energy_model,
        gated_fractions=sim.stats.gated_fractions,
        timeline=sim.stats.timeline,
    )


def _pool_simulate(job: tuple[SimRequest, str | None]) -> dict:
    """Worker-process entry point: simulate and ship a plain dict back.

    The payload carries the worker's pid and wall-clock so the parent's
    :class:`~repro.obs.profiler.HostProfiler` can attribute throughput.
    """
    request, trace_destination = job
    start = time.perf_counter()
    result = simulate(request, trace_destination).to_dict()
    return {
        "result": result,
        "elapsed": time.perf_counter() - start,
        "worker": os.getpid(),
    }


class Session:
    """Runs simulations on demand; every result is a cached artifact."""

    def __init__(
        self,
        scale: str = "default",
        verbose: bool = False,
        subset: list[str] | None = None,
        *,
        cache_dir: str | Path | None = None,
        use_disk_cache: bool = True,
        max_workers: int = 1,
        profiler: HostProfiler | None = None,
        result_cache: ResultCache | None = None,
    ):
        self.scale = scale
        self.verbose = verbose
        self.subset = subset
        self.max_workers = max_workers
        self.profiler = profiler
        self._memo: dict[str, RunResult] = {}
        self._disk: ResultCache | None = None
        if result_cache is not None:
            # A pre-built cache (e.g. the cluster's tiered local→peer
            # stack) takes precedence over directory-based construction.
            self._disk = result_cache
        elif use_disk_cache:
            self._disk = ResultCache(resolve_cache_dir(cache_dir))
        self._tmp_trace_dir: str | None = None
        # Per-session accounting (SIM_COUNTER is the process-wide proof).
        self.simulated = 0
        self.memo_hits = 0
        self.disk_hits = 0
        self.dedup_hits = 0
        #: Requests priced by the trace-replay tier (no simulation).
        self.replayed = 0

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def register_metrics(self, registry, prefix: str = "session.cache") -> None:
        """Export cache behaviour as pull-based :mod:`repro.obs` probes.

        Registers ``<prefix>.memo_hits`` / ``disk_hits`` / ``dedup_hits``
        / ``simulated`` (delta counters) and ``<prefix>.memo_size`` (a
        gauge), so server dashboards and interval-sampled timelines can
        report cache effectiveness without log-scraping.
        """
        registry.probe(
            f"{prefix}.memo_hits", lambda: self.memo_hits, kind="delta"
        )
        registry.probe(
            f"{prefix}.disk_hits", lambda: self.disk_hits, kind="delta"
        )
        registry.probe(
            f"{prefix}.dedup_hits", lambda: self.dedup_hits, kind="delta"
        )
        registry.probe(
            f"{prefix}.simulated", lambda: self.simulated, kind="delta"
        )
        registry.probe(
            f"{prefix}.replayed", lambda: self.replayed, kind="delta"
        )
        registry.probe(f"{prefix}.memo_size", lambda: len(self._memo))

    # ------------------------------------------------------------------
    # Request construction
    # ------------------------------------------------------------------
    def request(self, benchmark: str, **overrides) -> SimRequest:
        return SimRequest(benchmark=benchmark, scale=self.scale, **overrides)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, request: SimRequest | str, **overrides) -> RunResult:
        """One memoized run (a :class:`SimRequest` or benchmark name)."""
        if isinstance(request, str):
            request = self.request(request, **overrides)
        elif overrides:
            raise TypeError("overrides only apply to benchmark-name requests")
        key, material, hit = self.lookup(request)
        if hit is not None:
            return hit
        result = self._execute(request, key)
        self.store(key, material, result)
        return result

    def run_many(
        self, requests: Iterable[SimRequest]
    ) -> dict[SimRequest, RunResult]:
        """Evaluate many requests, fanning cache misses across cores.

        Only *distinct* (kernel, config) pairs are simulated — duplicate
        and equivalent requests collapse onto one execution — and the
        returned mapping covers every requested key.
        """
        requests = list(dict.fromkeys(requests))
        out: dict[SimRequest, RunResult] = {}
        misses: dict[str, tuple[SimRequest, dict]] = {}
        for request in requests:
            key, material, hit = self.lookup(request)
            if hit is not None:
                out[request] = hit
            elif key in misses:
                # Equivalent request already queued: alias after execution.
                self.dedup_hits += 1
            else:
                misses[key] = (request, material)

        if misses:
            # Replay-tier misses never cross process boundaries: they are
            # priced in-session from the shared trace (and may trigger the
            # one source capture), so only real simulations go to the pool.
            replays = {
                key: job
                for key, job in misses.items()
                if job[0].replay and not job[0].timing
            }
            simulations = {
                key: job for key, job in misses.items() if key not in replays
            }
            if self.max_workers > 1 and len(simulations) > 1:
                self._run_pool(simulations)
            else:
                for key, (request, material) in simulations.items():
                    result = self._execute(request, key)
                    self.store(key, material, result)
            for key, (request, material) in replays.items():
                result = self._execute(request, key)
                self.store(key, material, result)

        # Resolve every original request (including aliases) via the memo.
        for request in requests:
            if request not in out:
                out[request] = self._memo[fingerprint(request.key_material())]
        return out

    def _run_pool(self, misses: dict[str, tuple[SimRequest, dict]]) -> None:
        """Fan cache misses across worker processes with progress beats."""
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            futures = {
                pool.submit(
                    _pool_simulate,
                    (request, self._trace_destination(request, key)),
                ): (key, request, material)
                for key, (request, material) in misses.items()
            }
            done = 0
            for future in as_completed(futures):
                key, request, material = futures[future]
                payload = future.result()
                result = RunResult.from_dict(payload["result"])
                self.simulated += 1
                SIM_COUNTER.add()  # workers counted in their own process
                done += 1
                if self.profiler is not None:
                    self.profiler.record_simulation(
                        payload["elapsed"], worker=payload["worker"]
                    )
                    self.profiler.heartbeat(
                        done, len(futures), label=request.benchmark
                    )
                self._log(request)
                self.store(key, material, result)

    # Convenience wrappers mirroring the retired SimulationCache API.
    def timing_run(self, benchmark: str, **overrides) -> RunResult:
        """A cycle-level run (energy + cycles + value stats)."""
        return self.run(self.request(benchmark, timing=True, **overrides))

    def functional_run(self, benchmark: str, **overrides) -> RunResult:
        """A functional run (value stats only, much faster)."""
        return self.run(self.request(benchmark, timing=False, **overrides))

    def replay_run(self, benchmark: str, **overrides) -> RunResult:
        """A trace-replay-tier run: re-price from the stored trace."""
        return self.run(
            self.request(benchmark, timing=False, replay=True, **overrides)
        )

    def benchmarks(self, subset: list[str] | None = None) -> list[str]:
        return subset or self.subset or benchmark_names()

    # ------------------------------------------------------------------
    # Cache plumbing (public: the serve layer orchestrates around it)
    # ------------------------------------------------------------------
    def lookup(
        self, request: SimRequest
    ) -> tuple[str, dict, RunResult | None]:
        """Resolve ``request`` against the memo and disk cache.

        Returns ``(key, key_material, hit)`` where ``hit`` is ``None``
        on a miss; never executes anything.  External schedulers (the
        ``repro.serve`` job queue) pair this with :meth:`store` to run
        misses on their own executors while sharing the session's
        dedup/caching discipline and hit accounting.
        """
        material = request.key_material()
        key = fingerprint(material)
        if key in self._memo:
            self.memo_hits += 1
            return key, material, self._memo[key]
        if self._disk is not None:
            result = self._disk.get(key)
            if result is not None:
                self.disk_hits += 1
                self._memo[key] = result
                return key, material, result
        return key, material, None

    def _execute(self, request: SimRequest, key: str) -> RunResult:
        if request.replay and not request.timing:
            return self._execute_replay(request)
        self._log(request)
        start = time.perf_counter()
        result = simulate(request, self._trace_destination(request, key))
        self.simulated += 1
        if self.profiler is not None:
            self.profiler.record_simulation(time.perf_counter() - start)
        return result

    # ------------------------------------------------------------------
    # Trace-replay tier
    # ------------------------------------------------------------------
    def _replay_source(self, request: SimRequest) -> SimRequest:
        """The one trace-capture run a replayed request prices against.

        The captured write stream is policy-independent (capture always
        runs the baseline functional interpreter), so every replayed
        policy/config of a (benchmark, scale) pair shares this single
        canonical source — and therefore one simulation, ever.
        """
        return SimRequest(
            benchmark=request.benchmark,
            policy="baseline",
            timing=False,
            scale=request.scale,
            capture_trace=True,
        )

    def _execute_replay(self, request: SimRequest) -> RunResult:
        source = self.run(self._replay_source(request))
        trace = self._load_trace(request, source)
        logger.debug(
            f"  replaying {request.benchmark} [{request.policy}] "
            "from stored trace"
        )
        stats = replay_trace(
            trace,
            policy=request.policy,
            collect_bdi=request.collect_bdi,
        )
        self.replayed += 1
        return RunResult(
            benchmark=request.benchmark,
            policy=request.policy,
            scale=request.scale,
            config=None,
            timing_mode=False,
            cycles=0,
            value=stats.value,
            trace_path=source.trace_path,
        )

    def _load_trace(
        self, request: SimRequest, source: RunResult
    ) -> RegisterTrace:
        path = source.trace_path
        if path is not None and Path(path).exists():
            return RegisterTrace.load(path)
        # The trace artifact went missing (pruned cache directory, dead
        # temp dir from an earlier process): re-capture it once and
        # refresh the cached source entry.
        source_request = self._replay_source(request)
        material = source_request.key_material()
        key = fingerprint(material)
        self._log(source_request)
        start = time.perf_counter()
        result = simulate(
            source_request, self._trace_destination(source_request, key)
        )
        self.simulated += 1
        if self.profiler is not None:
            self.profiler.record_simulation(time.perf_counter() - start)
        self.store(key, material, result)
        if result.trace_path is None or not Path(result.trace_path).exists():
            raise RuntimeError(
                f"trace capture for {request.benchmark!r} produced no "
                "loadable trace artifact"
            )
        return RegisterTrace.load(result.trace_path)

    def store(self, key: str, material: dict, result: RunResult) -> None:
        """Publish one result to the memo and (if enabled) disk cache."""
        self._memo[key] = result
        if self._disk is not None:
            self._disk.put(key, material, result)

    def _trace_destination(
        self, request: SimRequest, key: str
    ) -> str | None:
        if request.timing or not request.capture_trace:
            return None
        if self._disk is not None:
            return str(self._disk.trace_path(key))
        if self._tmp_trace_dir is None:
            self._tmp_trace_dir = tempfile.mkdtemp(prefix="repro-traces-")
        return str(Path(self._tmp_trace_dir) / f"{key}.npz")

    def _log(self, request: SimRequest) -> None:
        config = request.gpu_config()
        default = GPUConfig()
        deltas = ""
        if config is not None:
            changed = {
                name: value
                for name, value in asdict(config).items()
                if value != getattr(default, name)
            }
            deltas = "".join(f", {k}={v}" for k, v in sorted(changed.items()))
        message = (
            f"  simulating {request.benchmark} [{request.policy}"
            f"{'' if request.timing else ', functional'}{deltas}]"
        )
        # ``verbose`` promotes the line to INFO (shown at the default log
        # level); otherwise it is DEBUG-only detail.
        if self.verbose:
            logger.info(message)
        else:
            logger.debug(message)

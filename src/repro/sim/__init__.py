"""Single-run simulation session layer.

The one way experiments execute kernels: :class:`Session` turns a
:class:`SimRequest` into an immutable, serializable :class:`RunResult`,
memoized in-process and in a content-addressed on-disk cache, with a
multiprocess executor fanning distinct (kernel, config) pairs across
cores.  See :mod:`repro.sim.session` for the full story.
"""

from repro.sim.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    ResultCache,
    code_version,
    default_cache_dir,
    resolve_cache_dir,
)
from repro.sim.result import RunResult
from repro.sim.session import SIM_COUNTER, Session, SimRequest, simulate

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "RunResult",
    "SIM_COUNTER",
    "Session",
    "SimRequest",
    "code_version",
    "default_cache_dir",
    "resolve_cache_dir",
    "simulate",
]

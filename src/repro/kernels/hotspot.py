"""hotspot — one step of the thermal simulation stencil.

Each thread updates one cell of a temperature grid (values in a narrow
~322-341 K band, the bounded dynamic range that gives hotspot its value
similarity) from its four neighbours and the local power dissipation.
Border cells clamp their neighbour indices, making the border warps
divergent.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import word_addr

CAP = 0.5  #: thermal capacitance coefficient
K_POWER = 100.0  #: power-to-temperature coefficient

_SCALE = {
    "small": dict(rows=8, cols=32),
    "default": dict(rows=24, cols=64),
}


class Hotspot(Benchmark):
    name = "hotspot"
    description = "thermal stencil over a 322-341K grid (border divergence)"
    diverges = True

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "hotspot", params=("temp", "power", "out", "rows", "log2_cols", "n")
        )
        tid = b.global_tid_x()
        n = b.param("n")
        with b.if_(b.isetp(Cmp.LT, tid, n)):
            log2_cols = b.param("log2_cols")
            cols_mask = b.isub(b.shl(1, log2_cols), 1)
            rows = b.param("rows")
            row = b.shr(tid, log2_cols)
            col = b.and_(tid, cols_mask)
            temp = b.param("temp")

            centre = b.ldg(word_addr(b, temp, tid))
            # Neighbour loads with clamped indices; the clamping branches
            # only fire in border warps.
            up = b.mov(centre)
            with b.if_(b.isetp(Cmp.GT, row, 0)):
                b.ldg(
                    word_addr(b, temp, b.isub(tid, b.shl(1, log2_cols))), dst=up
                )
            down = b.mov(centre)
            with b.if_(b.isetp(Cmp.LT, row, b.isub(rows, 1))):
                b.ldg(
                    word_addr(b, temp, b.iadd(tid, b.shl(1, log2_cols))),
                    dst=down,
                )
            left = b.mov(centre)
            with b.if_(b.isetp(Cmp.GT, col, 0)):
                b.ldg(word_addr(b, temp, b.isub(tid, 1)), dst=left)
            right = b.mov(centre)
            with b.if_(b.isetp(Cmp.LT, col, cols_mask)):
                b.ldg(word_addr(b, temp, b.iadd(tid, 1)), dst=right)

            lap = b.fadd(b.fadd(up, down), b.fadd(left, right))
            lap = b.fsub(lap, b.fmul(centre, 4.0))
            power = b.ldg(word_addr(b, b.param("power"), tid))
            delta = b.ffma(power, K_POWER, b.fmul(lap, CAP))
            new_temp = b.fadd(centre, b.fmul(delta, 0.1))
            b.stg(word_addr(b, b.param("out"), tid), new_temp)
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        rows, cols = cfg["rows"], cfg["cols"]
        n = rows * cols
        log2_cols = cols.bit_length() - 1
        cta = 128
        num_ctas = -(-n // cta)

        rng = self.rng()
        temp = (322.0 + 19.0 * rng.random((rows, cols))).astype(np.float32)
        power = (0.05 * rng.random((rows, cols))).astype(np.float32)

        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["temp"] = gm.alloc_array(temp, "temp")
            addresses["power"] = gm.alloc_array(power, "power")
            addresses["out"] = gm.alloc(n, "out")
            return gm

        gmem_factory()
        params = [
            addresses["temp"],
            addresses["power"],
            addresses["out"],
            rows,
            log2_cols,
            n,
        ]
        return self._spec(
            grid_dim=(num_ctas, 1),
            cta_dim=(cta, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, temp=temp, power=power, n=n),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        m = spec.meta
        rows, cols = m["rows"], m["cols"]
        got = gmem.read_array(spec.buffers["out"], rows * cols, np.float32)
        expected = _reference(m["temp"], m["power"])
        np.testing.assert_allclose(
            got.reshape(rows, cols), expected, rtol=1e-5
        )


def _reference(temp: np.ndarray, power: np.ndarray) -> np.ndarray:
    up = np.vstack([temp[0:1], temp[:-1]])
    down = np.vstack([temp[1:], temp[-1:]])
    left = np.hstack([temp[:, 0:1], temp[:, :-1]])
    right = np.hstack([temp[:, 1:], temp[:, -1:]])
    lap = (up + down) + (left + right) - temp * np.float32(4.0)
    delta = power * np.float32(K_POWER) + lap * np.float32(CAP)
    return temp + delta * np.float32(0.1)

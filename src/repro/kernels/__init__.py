"""Benchmark kernels.

Twelve workloads re-implementing (in the simulator's ISA) the
Rodinia/Parboil/GPGPU-Sim kernels the paper evaluates, each with a
synthetic input generator matching the benchmark's documented dynamic
range and a numpy reference implementation for correctness checking:

========== ==============================================================
aes        table-lookup rounds over random bytes — no divergence,
           near-random register values (paper's worst case)
backprop   neural-net layer forward pass with shared-memory reduction
bfs        frontier-based breadth-first search — heavy divergence
dwt2d      Haar wavelet over an 8-bit image — border divergence
gaussian   Gaussian elimination update step
hotspot    thermal stencil over a narrow-range temperature grid
kmeans     per-point nearest-centroid search
lib        LIBOR Monte-Carlo with constant-initialised inputs — the
           paper's best case (near-perfect compression)
nw         Needleman-Wunsch anti-diagonal DP with small integer scores
pathfinder the paper's Figure 4 running example (walls in 0..9)
spmv       CSR sparse matrix-vector product — variable row lengths
srad       speckle-reducing anisotropic diffusion
========== ==============================================================
"""

from repro.kernels.base import Benchmark
from repro.kernels.suite import (
    BENCHMARKS,
    benchmark_names,
    get_benchmark,
    iter_benchmarks,
)

__all__ = [
    "BENCHMARKS",
    "Benchmark",
    "benchmark_names",
    "get_benchmark",
    "iter_benchmarks",
]

"""Benchmark framework.

A :class:`Benchmark` couples a kernel (built once, cached) with scaled
launch configurations and a verification hook comparing simulated output
buffers against a numpy reference.  Input data is generated from a fixed
seed inside the launch's ``gmem_factory`` so that every simulator
configuration replays bit-identical memory contents — a requirement for
the paper's A/B energy comparisons.

Scales:

* ``small`` — unit tests and pytest benches (sub-second timing runs),
* ``default`` — the harness figures,
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel

SCALES = ("small", "default")


class Benchmark(ABC):
    """One workload: kernel + inputs + reference."""

    #: registry key, e.g. ``"pathfinder"``
    name: str = ""
    #: one-line description for reports
    description: str = ""
    #: whether the workload exercises branch divergence at all
    diverges: bool = True
    seed: int = 0xC0FFEE

    def __init__(self) -> None:
        self._kernel: Kernel | None = None

    # ------------------------------------------------------------------
    @abstractmethod
    def build_kernel(self) -> Kernel:
        """Construct the kernel (called once, result cached)."""

    @abstractmethod
    def launch(self, scale: str = "default") -> LaunchSpec:
        """A replayable launch at the requested scale."""

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        """Assert simulated outputs match the reference (if provided)."""

    # ------------------------------------------------------------------
    @property
    def kernel(self) -> Kernel:
        if self._kernel is None:
            self._kernel = self.build_kernel()
        return self._kernel

    def rng(self) -> np.random.Generator:
        """Deterministic per-benchmark random source."""
        return np.random.default_rng(self.seed)

    def _check_scale(self, scale: str) -> str:
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")
        return scale

    def _spec(
        self,
        grid_dim: tuple[int, int],
        cta_dim: tuple[int, int],
        params: list[int],
        gmem_factory,
        buffers: dict[str, int],
        meta: dict | None = None,
    ) -> LaunchSpec:
        spec = LaunchSpec(
            kernel=self.kernel,
            grid_dim=grid_dim,
            cta_dim=cta_dim,
            params=params,
            gmem_factory=gmem_factory,
        )
        spec.buffers = buffers
        spec.meta = meta or {}
        return spec

"""blackscholes — option pricing (GPGPU-Sim BLK, extended suite).

Per-thread Black-Scholes call pricing with a polynomial CND
approximation: long dependency chains of float arithmetic over inputs of
moderate dynamic range (prices 5..30, times 0.25..10); entirely
branch-free thanks to a select-based CND mirror.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import word_addr

RISK_FREE = 0.02
VOLATILITY = 0.30
INV_SQRT_2PI = 0.3989422804014327

_SCALE = {
    "small": dict(options=256),
    "default": dict(options=2048),
}


class BlackScholes(Benchmark):
    name = "blackscholes"
    description = "Black-Scholes call pricing (deep float chains)"
    # Option counts are warp multiples and the CND mirror uses a
    # branch-free select, so the kernel never diverges.
    diverges = False

    def _cnd(self, b: KernelBuilder, d):
        """Abramowitz-Stegun cumulative normal approximation."""
        k = b.frcp(b.ffma(b.fabs(d), 0.2316419, 1.0))
        poly = b.mov(1.330274429)
        poly = b.ffma(poly, k, -1.821255978)
        poly = b.ffma(poly, k, 1.781477937)
        poly = b.ffma(poly, k, -0.356563782)
        poly = b.ffma(poly, k, 0.319381530)
        poly = b.fmul(poly, k)
        pdf = b.fmul(
            b.fexp(b.fmul(b.fmul(d, d), -0.5)), INV_SQRT_2PI
        )
        cnd = b.fsub(1.0, b.fmul(pdf, poly))
        # Mirror for negative d: CND(d) = 1 - CND(-d).
        negative = b.fsetp(Cmp.LT, d, 0.0)
        return b.sel(negative, b.fsub(1.0, cnd), cnd)

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "blackscholes", params=("price", "strike", "years", "call", "n")
        )
        tid = b.global_tid_x()
        n = b.param("n")
        with b.if_(b.isetp(Cmp.LT, tid, n)):
            s = b.ldg(word_addr(b, b.param("price"), tid))
            x = b.ldg(word_addr(b, b.param("strike"), tid))
            t = b.ldg(word_addr(b, b.param("years"), tid))
            sqrt_t = b.fsqrt(t)
            d1 = b.flog(b.fdiv(s, x))
            d1 = b.ffma(
                t, RISK_FREE + 0.5 * VOLATILITY * VOLATILITY, d1
            )
            d1 = b.fdiv(d1, b.fmul(sqrt_t, VOLATILITY))
            d2 = b.fsub(d1, b.fmul(sqrt_t, VOLATILITY))
            discount = b.fexp(b.fmul(t, -RISK_FREE))
            call = b.fsub(
                b.fmul(s, self._cnd(b, d1)),
                b.fmul(b.fmul(x, discount), self._cnd(b, d2)),
            )
            b.stg(word_addr(b, b.param("call"), tid), call)
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        options = cfg["options"]
        cta = 128
        rng = self.rng()
        price = (5.0 + 25.0 * rng.random(options)).astype(np.float32)
        strike = (1.0 + 99.0 * rng.random(options)).astype(np.float32)
        years = (0.25 + 9.75 * rng.random(options)).astype(np.float32)
        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["price"] = gm.alloc_array(price, "price")
            addresses["strike"] = gm.alloc_array(strike, "strike")
            addresses["years"] = gm.alloc_array(years, "years")
            addresses["call"] = gm.alloc(options, "call")
            return gm

        gmem_factory()
        params = [
            addresses["price"],
            addresses["strike"],
            addresses["years"],
            addresses["call"],
            options,
        ]
        return self._spec(
            grid_dim=(options // cta, 1),
            cta_dim=(cta, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, price=price, strike=strike, years=years),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        m = spec.meta
        options = m["options"]
        got = gmem.read_array(spec.buffers["call"], options, np.float32)
        expected = _reference(m["price"], m["strike"], m["years"])
        np.testing.assert_allclose(got, expected, rtol=2e-3, atol=1e-3)


def _cnd_ref(d: np.ndarray) -> np.ndarray:
    k = np.float32(1.0) / (np.float32(1.0) + np.float32(0.2316419) * np.abs(d))
    poly = np.float32(1.330274429)
    for coeff in (-1.821255978, 1.781477937, -0.356563782, 0.319381530):
        poly = poly * k + np.float32(coeff)
    poly = poly * k
    pdf = np.exp(-0.5 * d * d, dtype=np.float32) * np.float32(INV_SQRT_2PI)
    cnd = np.float32(1.0) - pdf * poly
    return np.where(d < 0, np.float32(1.0) - cnd, cnd).astype(np.float32)


def _reference(price, strike, years):
    sqrt_t = np.sqrt(years, dtype=np.float32)
    d1 = np.log(price / strike, dtype=np.float32)
    d1 = years * np.float32(RISK_FREE + 0.5 * VOLATILITY * VOLATILITY) + d1
    d1 = d1 / (sqrt_t * np.float32(VOLATILITY))
    d2 = d1 - sqrt_t * np.float32(VOLATILITY)
    discount = np.exp(years * np.float32(-RISK_FREE), dtype=np.float32)
    return (
        price * _cnd_ref(d1) - (strike * discount) * _cnd_ref(d2)
    ).astype(np.float32)

"""backprop — neural-network layer forward pass (Rodinia layerforward).

Each CTA computes a block of hidden-layer activations: the input vector
is staged into shared memory by the first threads of the CTA (a guarded,
divergent cooperative load), then every thread accumulates its weighted
sum over the (CTA-barrier-separated) input dimension and applies the
squashing function ``1 / (1 + exp(-x))``.  Weight values are random floats
(low similarity) while address and loop registers are thread-indexed
(high similarity) — backprop's mixed profile in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import word_addr

IN_DIM = 16  #: input nodes staged per CTA pass

_SCALE = {
    "small": dict(hidden=256),
    "default": dict(hidden=1024),
}


class Backprop(Benchmark):
    name = "backprop"
    description = "NN layer forward pass with shared-memory staging"
    diverges = True

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "backprop",
            params=("inputs", "weights", "out", "hidden"),
            shared_bytes=IN_DIM * 4,
        )
        tid = b.tid_x()
        j = b.global_tid_x()
        hidden = b.param("hidden")

        # Cooperative staging of the input vector: only the first IN_DIM
        # threads of the CTA load — the benchmark's divergence source.
        with b.if_(b.isetp(Cmp.LT, tid, IN_DIM)):
            value = b.ldg(word_addr(b, b.param("inputs"), tid))
            b.sts(b.imul(tid, 4), value)
        b.bar()

        with b.if_(b.isetp(Cmp.LT, j, hidden)):
            weights = b.param("weights")
            acc = b.mov(0.0)
            with b.for_range(0, IN_DIM) as k:
                w_idx = b.imad(k, hidden, j)
                w = b.ldg(word_addr(b, weights, w_idx))
                inp = b.lds(b.imul(k, 4))
                b.ffma(w, inp, acc, dst=acc)
            # squash(x) = 1 / (1 + exp(-x))
            act = b.fdiv(1.0, b.fadd(1.0, b.fexp(b.fneg(acc))))
            b.stg(word_addr(b, b.param("out"), j), act)
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        hidden = cfg["hidden"]
        cta = 128
        num_ctas = -(-hidden // cta)

        rng = self.rng()
        inputs = rng.random(IN_DIM).astype(np.float32)
        weights = (rng.standard_normal((IN_DIM, hidden)) * 0.5).astype(
            np.float32
        )

        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["inputs"] = gm.alloc_array(inputs, "inputs")
            addresses["weights"] = gm.alloc_array(weights, "weights")
            addresses["out"] = gm.alloc(hidden, "out")
            return gm

        gmem_factory()
        params = [
            addresses["inputs"],
            addresses["weights"],
            addresses["out"],
            hidden,
        ]
        return self._spec(
            grid_dim=(num_ctas, 1),
            cta_dim=(cta, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, inputs=inputs, weights=weights),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        m = spec.meta
        hidden = m["hidden"]
        got = gmem.read_array(spec.buffers["out"], hidden, np.float32)
        expected = _reference(m["inputs"], m["weights"])
        np.testing.assert_allclose(got, expected, rtol=1e-5)


def _reference(inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
    acc = np.zeros(weights.shape[1], dtype=np.float32)
    for k in range(len(inputs)):
        acc = weights[k] * inputs[k] + acc
    return (
        np.float32(1.0) / (np.float32(1.0) + np.exp(-acc, dtype=np.float32))
    ).astype(np.float32)

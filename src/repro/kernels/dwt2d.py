"""dwt2d — one horizontal wavelet-lifting pass over an 8-bit image.

Each thread transforms one sample pair of one image row into a low-pass
average and a high-pass detail; the predictor uses the right neighbour
with symmetric extension at the row edge, so edge threads take a different
path — the border divergence the paper observes for dwt2d.  Image samples
are smooth 0..255 values, giving high value similarity for the low band
and near-zero high-band coefficients.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import word_addr

_SCALE = {
    "small": dict(rows=8, cols=64),
    "default": dict(rows=24, cols=128),
}


class Dwt2d(Benchmark):
    name = "dwt2d"
    description = "wavelet lifting over an 8-bit image (border divergence)"
    diverges = True

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "dwt2d", params=("image", "out", "cols", "log2_half", "n")
        )
        tid = b.global_tid_x()
        n = b.param("n")
        with b.if_(b.isetp(Cmp.LT, tid, n)):
            cols = b.param("cols")
            log2_half = b.param("log2_half")
            half_mask = b.isub(b.shl(1, log2_half), 1)
            row = b.shr(tid, log2_half)
            pair = b.and_(tid, half_mask)
            image = b.param("image")
            row_base = b.imul(row, cols)
            col = b.shl(pair, 1)
            a = b.ldg(word_addr(b, image, b.iadd(row_base, col)))
            bb = b.ldg(word_addr(b, image, b.iadd(row_base, b.iadd(col, 1))))
            # Predictor neighbour with symmetric extension at the edge.
            nxt = b.iadd(col, 2)
            c = b.mov(a)
            with b.if_(b.isetp(Cmp.LT, nxt, cols)):
                b.ldg(word_addr(b, image, b.iadd(row_base, nxt)), dst=c)
            high = b.fsub(bb, b.fmul(b.fadd(a, c), 0.5))
            low = b.fmul(b.fadd(a, bb), 0.5)
            out = b.param("out")
            half = b.shl(1, log2_half)
            b.stg(word_addr(b, out, b.iadd(row_base, pair)), low)
            b.stg(
                word_addr(b, out, b.iadd(row_base, b.iadd(half, pair))), high
            )
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        rows, cols = cfg["rows"], cfg["cols"]
        half = cols // 2
        log2_half = half.bit_length() - 1
        n = rows * half
        cta = 128
        num_ctas = -(-n // cta)

        rng = self.rng()
        ramp = np.linspace(0, 200, cols, dtype=np.float32)
        noise = rng.integers(0, 40, size=(rows, cols))
        image = np.clip(ramp[None, :] + noise, 0, 255).astype(np.float32)

        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["image"] = gm.alloc_array(image, "image")
            addresses["out"] = gm.alloc(rows * cols, "out")
            return gm

        gmem_factory()
        params = [addresses["image"], addresses["out"], cols, log2_half, n]
        return self._spec(
            grid_dim=(num_ctas, 1),
            cta_dim=(cta, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, image=image, n=n),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        m = spec.meta
        rows, cols = m["rows"], m["cols"]
        got = gmem.read_array(spec.buffers["out"], rows * cols, np.float32)
        expected = _reference(m["image"])
        np.testing.assert_allclose(
            got.reshape(rows, cols), expected, rtol=1e-6
        )


def _reference(image: np.ndarray) -> np.ndarray:
    rows, cols = image.shape
    half = cols // 2
    out = np.zeros_like(image)
    a = image[:, 0::2]
    b = image[:, 1::2]
    c = np.concatenate([image[:, 2::2], image[:, -2:-1]], axis=1)
    out[:, :half] = (a + b) * np.float32(0.5)
    out[:, half:] = b - (a + c) * np.float32(0.5)
    return out

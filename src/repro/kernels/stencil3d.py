"""stencil — 7-point 3D Jacobi stencil (Parboil stencil, extended suite).

Each thread updates one interior cell of a 3D grid from its six
neighbours.  Interior/boundary classification over three dimensions
makes the divergence pattern blockier than hotspot's 2D version, and the
smooth field keeps values in a narrow range.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import pred_and, word_addr

C0 = 0.5
C1 = 1.0 / 12.0

_SCALE = {
    "small": dict(nx=8, ny=8, nz=4),
    "default": dict(nx=16, ny=8, nz=8),
}


class Stencil3d(Benchmark):
    name = "stencil3d"
    description = "7-point 3D Jacobi stencil over a smooth field"
    diverges = True

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "stencil3d",
            params=("grid", "out", "log2_nx", "log2_ny", "nx", "ny", "nz"),
        )
        tid = b.global_tid_x()
        log2_nx = b.param("log2_nx")
        log2_ny = b.param("log2_ny")
        nx = b.param("nx")
        ny = b.param("ny")
        nz = b.param("nz")
        x = b.and_(tid, b.isub(b.shl(1, log2_nx), 1))
        rest = b.shr(tid, log2_nx)
        y = b.and_(rest, b.isub(b.shl(1, log2_ny), 1))
        z = b.shr(rest, log2_ny)
        interior = pred_and(
            b,
            b.isetp(Cmp.GT, x, 0),
            b.isetp(Cmp.LT, x, b.isub(nx, 1)),
            b.isetp(Cmp.GT, y, 0),
            b.isetp(Cmp.LT, y, b.isub(ny, 1)),
            b.isetp(Cmp.GT, z, 0),
            b.isetp(Cmp.LT, z, b.isub(nz, 1)),
        )
        with b.if_(interior):
            grid = b.param("grid")
            centre = b.ldg(word_addr(b, grid, tid))
            plane = b.shl(1, b.iadd(log2_nx, log2_ny))
            neighbours = b.fadd(
                b.fadd(
                    b.ldg(word_addr(b, grid, b.isub(tid, 1))),
                    b.ldg(word_addr(b, grid, b.iadd(tid, 1))),
                ),
                b.fadd(
                    b.ldg(word_addr(b, grid, b.isub(tid, b.shl(1, log2_nx)))),
                    b.ldg(word_addr(b, grid, b.iadd(tid, b.shl(1, log2_nx)))),
                ),
            )
            neighbours = b.fadd(
                neighbours,
                b.fadd(
                    b.ldg(word_addr(b, grid, b.isub(tid, plane))),
                    b.ldg(word_addr(b, grid, b.iadd(tid, plane))),
                ),
            )
            result = b.ffma(centre, C0, b.fmul(neighbours, C1))
            b.stg(word_addr(b, b.param("out"), tid), result)
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        nx, ny, nz = cfg["nx"], cfg["ny"], cfg["nz"]
        n = nx * ny * nz
        cta = 128
        rng = self.rng()
        zz, yy, xx = np.meshgrid(
            np.arange(nz), np.arange(ny), np.arange(nx), indexing="ij"
        )
        field = (
            300.0 + np.sin(0.3 * xx + 0.5 * yy + 0.7 * zz) * 10.0
            + rng.random((nz, ny, nx))
        ).astype(np.float32)
        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["grid"] = gm.alloc_array(field, "grid")
            addresses["out"] = gm.alloc(n, "out")
            return gm

        gmem_factory()
        params = [
            addresses["grid"],
            addresses["out"],
            nx.bit_length() - 1,
            ny.bit_length() - 1,
            nx,
            ny,
            nz,
        ]
        return self._spec(
            grid_dim=(-(-n // cta), 1),
            cta_dim=(cta, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, field=field, n=n),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        m = spec.meta
        field = m["field"]
        nz, ny, nx = field.shape
        got = gmem.read_array(spec.buffers["out"], m["n"], np.float32)
        expected = _reference(field)
        got = got.reshape(nz, ny, nx)
        inner = np.s_[1:-1, 1:-1, 1:-1]
        np.testing.assert_allclose(got[inner], expected[inner], rtol=1e-5)


def _reference(field: np.ndarray) -> np.ndarray:
    out = np.zeros_like(field)
    f = field
    neighbours = (
        (f[1:-1, 1:-1, :-2] + f[1:-1, 1:-1, 2:])
        + (f[1:-1, :-2, 1:-1] + f[1:-1, 2:, 1:-1])
    ) + (f[:-2, 1:-1, 1:-1] + f[2:, 1:-1, 1:-1])
    out[1:-1, 1:-1, 1:-1] = f[1:-1, 1:-1, 1:-1] * np.float32(C0) + (
        neighbours * np.float32(C1)
    )
    return out

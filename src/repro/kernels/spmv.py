"""spmv — CSR sparse matrix-vector product (Parboil-style scalar kernel).

One thread per matrix row walks that row's nonzeros.  Row lengths are
drawn from a skewed distribution, so the warp's threads fall out of the
accumulation loop at different trip counts — sustained divergence — and
the gathered values/column indices are random, limiting similarity to the
address and loop-counter registers.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import word_addr

_SCALE = {
    "small": dict(rows=256, max_nnz=8),
    "default": dict(rows=1024, max_nnz=16),
}


class Spmv(Benchmark):
    name = "spmv"
    description = "CSR sparse matrix-vector product (loop divergence)"
    diverges = True

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "spmv", params=("row_ptr", "col_idx", "vals", "x", "y", "rows")
        )
        tid = b.global_tid_x()
        rows = b.param("rows")
        with b.if_(b.isetp(Cmp.LT, tid, rows)):
            row_ptr = b.param("row_ptr")
            start = b.ldg(word_addr(b, row_ptr, tid))
            end = b.ldg(word_addr(b, row_ptr, b.iadd(tid, 1)))
            col_idx = b.param("col_idx")
            vals = b.param("vals")
            x = b.param("x")
            acc = b.mov(0.0)
            e = b.mov(start)
            with b.while_loop() as loop:
                loop.break_unless(b.isetp(Cmp.LT, e, end))
                col = b.ldg(word_addr(b, col_idx, e))
                val = b.ldg(word_addr(b, vals, e))
                xv = b.ldg(word_addr(b, x, col))
                b.ffma(val, xv, acc, dst=acc)
                b.iadd(e, 1, dst=e)
            b.stg(word_addr(b, b.param("y"), tid), acc)
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        rows, max_nnz = cfg["rows"], cfg["max_nnz"]
        cta = 128
        num_ctas = -(-rows // cta)

        rng = self.rng()
        # Skewed row lengths: many short rows, a few long ones.
        lengths = np.minimum(
            rng.geometric(0.35, size=rows) - 1, max_nnz
        ).astype(np.int64)
        row_ptr = np.zeros(rows + 1, dtype=np.int64)
        np.cumsum(lengths, out=row_ptr[1:])
        nnz = max(int(row_ptr[-1]), 1)
        col_idx = rng.integers(0, rows, size=nnz).astype(np.int64)
        vals = rng.standard_normal(nnz).astype(np.float32)
        x = rng.standard_normal(rows).astype(np.float32)

        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["row_ptr"] = gm.alloc_array(row_ptr, "row_ptr")
            addresses["col_idx"] = gm.alloc_array(col_idx, "col_idx")
            addresses["vals"] = gm.alloc_array(vals, "vals")
            addresses["x"] = gm.alloc_array(x, "x")
            addresses["y"] = gm.alloc(rows, "y")
            return gm

        gmem_factory()
        params = [
            addresses["row_ptr"],
            addresses["col_idx"],
            addresses["vals"],
            addresses["x"],
            addresses["y"],
            rows,
        ]
        return self._spec(
            grid_dim=(num_ctas, 1),
            cta_dim=(cta, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(
                cfg, row_ptr=row_ptr, col_idx=col_idx, vals=vals, x=x
            ),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        m = spec.meta
        rows = m["rows"]
        got = gmem.read_array(spec.buffers["y"], rows, np.float32)
        expected = _reference(m["row_ptr"], m["col_idx"], m["vals"], m["x"])
        np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-6)


def _reference(row_ptr, col_idx, vals, x):
    rows = len(row_ptr) - 1
    y = np.zeros(rows, dtype=np.float32)
    for r in range(rows):
        acc = np.float32(0.0)
        for e in range(row_ptr[r], row_ptr[r + 1]):
            acc = vals[e] * x[col_idx[e]] + acc
        y[r] = acc
    return y

"""Shared kernel-authoring helpers."""

from __future__ import annotations

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp, Pred, Reg


def bool_of(b: KernelBuilder, pred: Pred) -> Reg:
    """Materialise a predicate as a 0/1 register value."""
    return b.sel(pred, 1, 0)


def pred_and(b: KernelBuilder, *preds: Pred) -> Pred:
    """Logical AND of predicates without extra divergence.

    GPUs fuse this into the SETP combine field; here it lowers to a short
    select/AND sequence ending in a compare.
    """
    if not preds:
        raise ValueError("pred_and needs at least one predicate")
    acc = bool_of(b, preds[0])
    for p in preds[1:]:
        acc = b.and_(acc, bool_of(b, p))
    return b.isetp(Cmp.NE, acc, 0)


def pred_or(b: KernelBuilder, *preds: Pred) -> Pred:
    """Logical OR of predicates without extra divergence."""
    if not preds:
        raise ValueError("pred_or needs at least one predicate")
    acc = bool_of(b, preds[0])
    for p in preds[1:]:
        acc = b.or_(acc, bool_of(b, p))
    return b.isetp(Cmp.NE, acc, 0)


def iclamp(b: KernelBuilder, value, lo, hi) -> Reg:
    """Clamp an integer register into [lo, hi]."""
    return b.imin(b.imax(value, lo), hi)


def imin3(b: KernelBuilder, x, y, z) -> Reg:
    """Minimum of three integers (pathfinder's MIN(MIN(l, u), r))."""
    return b.imin(b.imin(x, y), z)


def in_range(b: KernelBuilder, x, lo, hi) -> Pred:
    """The paper's IN_RANGE(x, lo, hi): lo <= x <= hi."""
    return pred_and(
        b, b.isetp(Cmp.GE, x, lo), b.isetp(Cmp.LE, x, hi)
    )


def word_addr(b: KernelBuilder, base, index) -> Reg:
    """base + 4 * index — the canonical word address computation."""
    return b.imad(index, 4, base)

"""kmeans — per-point nearest-centroid assignment.

Each thread owns one point and scans all centroids, accumulating the
squared distance over the (unrolled) feature dimensions and tracking the
argmin.  Centroid loads broadcast the same values to all threads and the
membership writes are small integers — both highly compressible — while
the per-point feature values are random.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import word_addr

FEATURES = 4
CLUSTERS = 5

_SCALE = {
    "small": dict(points=256),
    "default": dict(points=1536),
}


class Kmeans(Benchmark):
    name = "kmeans"
    description = "nearest-centroid search (broadcast loads, small-int writes)"
    # Grid sizes divide the CTA evenly and the argmin uses branch-free
    # selects, so kmeans never diverges (like AES).
    diverges = False

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "kmeans", params=("points", "centroids", "membership", "n")
        )
        tid = b.global_tid_x()
        n = b.param("n")
        with b.if_(b.isetp(Cmp.LT, tid, n)):
            points = b.param("points")
            centroids = b.param("centroids")
            base = b.imul(tid, FEATURES)
            features = [
                b.ldg(word_addr(b, points, b.iadd(base, f)))
                for f in range(FEATURES)
            ]
            best_dist = b.mov(3.0e38)
            best_idx = b.mov(0)
            with b.for_range(0, CLUSTERS) as k:
                cbase = b.imul(k, FEATURES)
                dist = b.mov(0.0)
                for f in range(FEATURES):
                    cf = b.ldg(word_addr(b, centroids, b.iadd(cbase, f)))
                    diff = b.fsub(features[f], cf)
                    b.ffma(diff, diff, dist, dst=dist)
                closer = b.fsetp(Cmp.LT, dist, best_dist)
                b.sel(closer, dist, best_dist, dst=best_dist)
                b.sel(closer, k, best_idx, dst=best_idx)
            b.stg(word_addr(b, b.param("membership"), tid), best_idx)
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        points_n = cfg["points"]
        cta = 128
        num_ctas = -(-points_n // cta)

        rng = self.rng()
        points = (10.0 * rng.random((points_n, FEATURES))).astype(np.float32)
        centroids = (10.0 * rng.random((CLUSTERS, FEATURES))).astype(
            np.float32
        )

        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["points"] = gm.alloc_array(points, "points")
            addresses["centroids"] = gm.alloc_array(centroids, "centroids")
            addresses["membership"] = gm.alloc(points_n, "membership")
            return gm

        gmem_factory()
        params = [
            addresses["points"],
            addresses["centroids"],
            addresses["membership"],
            points_n,
        ]
        return self._spec(
            grid_dim=(num_ctas, 1),
            cta_dim=(cta, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, points=points, centroids=centroids),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        m = spec.meta
        got = gmem.read_array(spec.buffers["membership"], m["points"].shape[0])
        expected = _reference(m["points"], m["centroids"])
        np.testing.assert_array_equal(got.astype(np.int64), expected)


def _reference(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    best = np.zeros(len(points), dtype=np.int64)
    best_dist = np.full(len(points), np.float32(3.0e38), dtype=np.float32)
    for k in range(len(centroids)):
        diff = points - centroids[k]
        dist = np.zeros(len(points), dtype=np.float32)
        for f in range(points.shape[1]):
            dist = diff[:, f] * diff[:, f] + dist
        closer = dist < best_dist
        best_dist = np.where(closer, dist, best_dist)
        best = np.where(closer, k, best)
    return best

"""lib — LIBOR Monte-Carlo with constant-initialised inputs.

The GPGPU-Sim LIB benchmark initialises its forward-rate and volatility
arrays to compile-time constants, so every thread of every warp computes
on *identical* values: the paper singles it out as the benchmark whose
registers compress almost perfectly (zero dynamic range, Section 6.2).

The kernel prices a portfolio of swaptions along one Monte-Carlo path per
thread: it repeatedly updates the forward-rate vector with a deterministic
(constant, since all inputs are constant) quasi-random increment and
accumulates a discounted payoff.  Only the final store uses the thread
index, so virtually every register write lands in the zero-distance bin.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder, float_bits
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import word_addr

NMAT = 8  #: forward-rate maturities simulated
L0 = 0.051  #: constant initial forward rate (as in the original LIB)
LAMBDA = 0.2  #: constant volatility
DELTA = 0.25  #: accrual period

_SCALE = {
    "small": dict(paths=128),
    "default": dict(paths=1024),
}


class Lib(Benchmark):
    name = "lib"
    description = "LIBOR Monte-Carlo, constant-initialised inputs (zero range)"
    diverges = False

    def build_kernel(self) -> Kernel:
        b = KernelBuilder("lib", params=("rates", "vols", "out"))
        tid = b.global_tid_x()
        rates = b.param("rates")
        vols = b.param("vols")

        # Running state: all-constant across threads.
        payoff = b.mov(0.0)
        discount = b.mov(1.0)
        with b.for_range(0, NMAT) as i:
            rate = b.ldg(word_addr(b, rates, i))
            vol = b.ldg(word_addr(b, vols, i))
            # Deterministic Brownian increment (constant inputs -> the
            # same "random" draw on every thread, as in LIB's first path).
            drift = b.fmul(vol, vol)
            drift = b.fmul(drift, -0.5 * DELTA)
            bump = b.fmul(vol, 0.3)
            growth = b.fexp(b.fadd(drift, bump))
            new_rate = b.fmul(rate, growth)
            accrual = b.ffma(new_rate, DELTA, 1.0)
            b.fdiv(discount, accrual, dst=discount)
            gain = b.fmax(b.fsub(new_rate, L0), 0.0)
            b.ffma(gain, discount, payoff, dst=payoff)

        out_addr = word_addr(b, b.param("out"), tid)
        b.stg(out_addr, payoff)
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        paths = cfg["paths"]
        cta = 128
        num_ctas = paths // cta

        rates0 = np.full(NMAT, L0, dtype=np.float32)
        vols0 = np.full(NMAT, LAMBDA, dtype=np.float32)

        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["rates"] = gm.alloc_array(rates0, "rates")
            addresses["vols"] = gm.alloc_array(vols0, "vols")
            addresses["out"] = gm.alloc(paths, "out")
            return gm

        gmem_factory()
        params = [addresses["rates"], addresses["vols"], addresses["out"]]
        return self._spec(
            grid_dim=(num_ctas, 1),
            cta_dim=(cta, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        paths = spec.meta["paths"]
        got = gmem.read_array(spec.buffers["out"], paths, np.float32)
        expected = _reference()
        np.testing.assert_allclose(got, np.full(paths, expected), rtol=1e-5)


def _reference() -> np.float32:
    vol = np.float32(LAMBDA)
    payoff = np.float32(0.0)
    discount = np.float32(1.0)
    for _ in range(NMAT):
        drift = np.float32(vol * vol) * np.float32(-0.5 * DELTA)
        bump = vol * np.float32(0.3)
        rate = np.float32(L0) * np.exp(np.float32(drift + bump), dtype=np.float32)
        discount = discount / (rate * np.float32(DELTA) + np.float32(1.0))
        gain = np.maximum(rate - np.float32(L0), np.float32(0.0))
        payoff = gain * discount + payoff
    return payoff

"""nw — Needleman-Wunsch sequence alignment (wavefront DP).

One CTA fills a score-matrix strip by anti-diagonal waves: thread ``i``
owns matrix row ``i+1`` and, on wave ``d``, computes cell ``(i+1, d-i)``
if that cell lies on the current anti-diagonal — a textbook wavefront
guard that keeps only part of each warp active (strong divergence).
Scores are small integers (match +5 / mismatch -3 / gap -2), so written
values sit in the paper's 128 bin almost exclusively.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import imin3, pred_and, word_addr

MATCH = 5
MISMATCH = -3
GAP = 2
STRIDE_LOG2 = 6  #: score-matrix row stride (64 words)

_SCALE = {
    "small": dict(rows=32, cols=24),
    "default": dict(rows=64, cols=48),
}


class NeedlemanWunsch(Benchmark):
    name = "nw"
    description = "wavefront DP alignment, small integer scores"
    diverges = True

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "nw", params=("score", "seq1", "seq2", "rows", "cols")
        )
        tx = b.tid_x()
        rows = b.param("rows")
        cols = b.param("cols")
        score = b.param("score")
        row = b.iadd(tx, 1)
        my_char = b.ldg(word_addr(b, b.param("seq1"), tx))
        seq2 = b.param("seq2")
        # Anti-diagonals run from d=2 to d=rows+cols inclusive.
        waves_end = b.iadd(b.iadd(rows, cols), 1)
        with b.for_range(2, waves_end) as d:
            j = b.isub(d, row)
            on_wave = pred_and(
                b,
                b.isetp(Cmp.GE, j, 1),
                b.isetp(Cmp.LE, j, cols),
                b.isetp(Cmp.LE, row, rows),
            )
            with b.if_(on_wave):
                other = b.ldg(word_addr(b, seq2, b.isub(j, 1)))
                is_match = b.isetp(Cmp.EQ, my_char, other)
                subst = b.sel(is_match, MATCH, MISMATCH)
                base = b.shl(row, STRIDE_LOG2)
                up_base = b.shl(b.isub(row, 1), STRIDE_LOG2)
                diag = b.ldg(word_addr(b, score, b.iadd(up_base, b.isub(j, 1))))
                up = b.ldg(word_addr(b, score, b.iadd(up_base, j)))
                left = b.ldg(word_addr(b, score, b.iadd(base, b.isub(j, 1))))
                # Maximise alignment score = minimise negated cost.
                best = imin3(
                    b,
                    b.isub(diag, subst),
                    b.iadd(up, GAP),
                    b.iadd(left, GAP),
                )
                b.stg(word_addr(b, score, b.iadd(base, j)), best)
            b.bar()
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        rows, cols = cfg["rows"], cfg["cols"]
        stride = 1 << STRIDE_LOG2
        if cols + 1 > stride:
            raise ValueError("cols exceed the score-matrix row stride")

        rng = self.rng()
        seq1 = rng.integers(0, 4, size=rows).astype(np.int64)
        seq2 = rng.integers(0, 4, size=cols).astype(np.int64)
        score0 = np.zeros((rows + 1, stride), dtype=np.int64)
        score0[0, : cols + 1] = GAP * np.arange(cols + 1)
        score0[:, 0] = GAP * np.arange(rows + 1)

        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["score"] = gm.alloc_array(score0, "score")
            addresses["seq1"] = gm.alloc_array(seq1, "seq1")
            addresses["seq2"] = gm.alloc_array(seq2, "seq2")
            return gm

        gmem_factory()
        params = [
            addresses["score"],
            addresses["seq1"],
            addresses["seq2"],
            rows,
            cols,
        ]
        return self._spec(
            grid_dim=(1, 1),
            cta_dim=(rows, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, seq1=seq1, seq2=seq2, score0=score0),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        m = spec.meta
        rows, cols = m["rows"], m["cols"]
        stride = 1 << STRIDE_LOG2
        got = gmem.read_array(
            spec.buffers["score"], (rows + 1) * stride
        ).astype(np.uint32)
        got = got.view(np.int32).astype(np.int64).reshape(rows + 1, stride)
        expected = _reference(m["seq1"], m["seq2"], m["score0"])
        np.testing.assert_array_equal(
            got[:, : cols + 1], expected[:, : cols + 1]
        )


def _reference(seq1, seq2, score0):
    score = score0.copy()
    rows, cols = len(seq1), len(seq2)
    for i in range(1, rows + 1):
        for j in range(1, cols + 1):
            subst = MATCH if seq1[i - 1] == seq2[j - 1] else MISMATCH
            score[i, j] = min(
                score[i - 1, j - 1] - subst,
                score[i - 1, j] + GAP,
                score[i, j - 1] + GAP,
            )
    return score

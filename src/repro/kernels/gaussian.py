"""gaussian — one elimination step (Rodinia Fan2).

At step ``t`` every thread updates one element of the trailing submatrix:
``a[r][c] -= m[r] * a[t][c]`` for ``r > t``, plus the right-hand side for
the first column of threads.  Threads covering rows at or above the pivot
are masked off — the benchmark's divergence — and the multiplier column
``m`` is identical across a row's threads, giving mixed similarity.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import pred_and, word_addr

_SCALE = {
    "small": dict(size=16, step=3),
    "default": dict(size=32, step=7),
}


class Gaussian(Benchmark):
    name = "gaussian"
    description = "Gaussian-elimination submatrix update (Fan2)"
    diverges = True

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "gaussian", params=("a", "m", "rhs", "size", "log2_size", "step")
        )
        tid = b.global_tid_x()
        size = b.param("size")
        log2_size = b.param("log2_size")
        step = b.param("step")
        row = b.iadd(b.shr(tid, log2_size), b.iadd(step, 1))
        col = b.and_(tid, b.isub(b.shl(1, log2_size), 1))
        valid = pred_and(
            b,
            b.isetp(Cmp.LT, row, size),
            b.isetp(Cmp.GE, col, step),
        )
        with b.if_(valid):
            a = b.param("a")
            multiplier = b.ldg(
                word_addr(b, b.param("m"), row)
            )
            pivot_elem = b.ldg(word_addr(b, a, b.imad(step, size, col)))
            idx = b.imad(row, size, col)
            elem = b.ldg(word_addr(b, a, idx))
            updated = b.fsub(elem, b.fmul(multiplier, pivot_elem))
            b.stg(word_addr(b, a, idx), updated)
            with b.if_(b.isetp(Cmp.EQ, col, step)):
                rhs = b.param("rhs")
                pivot_rhs = b.ldg(word_addr(b, rhs, step))
                my_rhs = b.ldg(word_addr(b, rhs, row))
                new_rhs = b.fsub(my_rhs, b.fmul(multiplier, pivot_rhs))
                b.stg(word_addr(b, rhs, row), new_rhs)
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        size, step = cfg["size"], cfg["step"]
        log2_size = size.bit_length() - 1
        threads = (size - step - 1) * size
        cta = 128
        num_ctas = -(-threads // cta)

        rng = self.rng()
        a = rng.random((size, size)).astype(np.float32) + np.eye(
            size, dtype=np.float32
        ) * np.float32(4.0)
        m = np.zeros(size, dtype=np.float32)
        m[step + 1 :] = (
            a[step + 1 :, step] / a[step, step]
        ).astype(np.float32)
        rhs = rng.random(size).astype(np.float32)

        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["a"] = gm.alloc_array(a, "a")
            addresses["m"] = gm.alloc_array(m, "m")
            addresses["rhs"] = gm.alloc_array(rhs, "rhs")
            return gm

        gmem_factory()
        params = [
            addresses["a"],
            addresses["m"],
            addresses["rhs"],
            size,
            log2_size,
            step,
        ]
        return self._spec(
            grid_dim=(num_ctas, 1),
            cta_dim=(cta, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, a=a, m=m, rhs=rhs),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        meta = spec.meta
        size, step = meta["size"], meta["step"]
        exp_a, exp_rhs = _reference(meta["a"], meta["m"], meta["rhs"], step)
        got_a = gmem.read_array(spec.buffers["a"], size * size, np.float32)
        got_rhs = gmem.read_array(spec.buffers["rhs"], size, np.float32)
        np.testing.assert_allclose(got_a.reshape(size, size), exp_a, rtol=1e-5)
        np.testing.assert_allclose(got_rhs, exp_rhs, rtol=1e-5)


def _reference(a, m, rhs, step):
    a = a.copy()
    rhs = rhs.copy()
    size = a.shape[0]
    pivot_row = a[step].copy()
    for r in range(step + 1, size):
        a[r, step:] = a[r, step:] - m[r] * pivot_row[step:]
        rhs[r] = rhs[r] - m[r] * rhs[step]
    return a, rhs

"""nn — nearest-neighbour distance computation (Rodinia, extended suite).

Each thread computes the Euclidean distance of one record (latitude,
longitude) to a query point: a short, branch-free float kernel whose
only similarity comes from thread-indexed addresses — the profile the
paper's AES-like bars represent, but with SQRT on the SFU path.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import word_addr

_SCALE = {
    # Deliberately not warp-multiples: the last warp runs partially
    # masked, exercising tail divergence.
    "small": dict(records=250),
    "default": dict(records=2020),
}


class NearestNeighbor(Benchmark):
    name = "nn"
    description = "per-record Euclidean distance to a query point"
    diverges = True  # tail-guard only

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "nn", params=("lat", "lng", "dist", "n", "qlat", "qlng")
        )
        tid = b.global_tid_x()
        n = b.param("n")
        with b.if_(b.isetp(Cmp.LT, tid, n)):
            lat = b.ldg(word_addr(b, b.param("lat"), tid))
            lng = b.ldg(word_addr(b, b.param("lng"), tid))
            dlat = b.fsub(lat, b.param("qlat"))
            dlng = b.fsub(lng, b.param("qlng"))
            d2 = b.ffma(dlat, dlat, b.fmul(dlng, dlng))
            b.stg(word_addr(b, b.param("dist"), tid), b.fsqrt(d2))
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        from repro.gpu.builder import float_bits

        cfg = _SCALE[self._check_scale(scale)]
        records = cfg["records"]
        cta = 128
        num_ctas = -(-(records + 17) // cta)  # deliberately ragged tail
        rng = self.rng()
        lat = (rng.random(records) * 180.0 - 90.0).astype(np.float32)
        lng = (rng.random(records) * 360.0 - 180.0).astype(np.float32)
        qlat, qlng = np.float32(30.5), np.float32(-97.6)
        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["lat"] = gm.alloc_array(lat, "lat")
            addresses["lng"] = gm.alloc_array(lng, "lng")
            addresses["dist"] = gm.alloc(records, "dist")
            return gm

        gmem_factory()
        params = [
            addresses["lat"],
            addresses["lng"],
            addresses["dist"],
            records,
            float_bits(float(qlat)),
            float_bits(float(qlng)),
        ]
        return self._spec(
            grid_dim=(num_ctas, 1),
            cta_dim=(cta, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, lat=lat, lng=lng, qlat=qlat, qlng=qlng),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        m = spec.meta
        records = m["records"]
        got = gmem.read_array(spec.buffers["dist"], records, np.float32)
        dlat = m["lat"] - m["qlat"]
        dlng = m["lng"] - m["qlng"]
        expected = np.sqrt(dlat * dlat + dlng * dlng, dtype=np.float32)
        np.testing.assert_allclose(got, expected, rtol=1e-5)

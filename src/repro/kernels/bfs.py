"""bfs — frontier-based breadth-first search (Rodinia BFS kernel 1).

One frontier expansion over a random sparse graph in CSR form.  Most
threads find their node absent from the frontier and do nothing, and the
neighbour loops of frontier threads have differing trip counts — the
combination makes BFS one of the paper's most divergent benchmarks (and
one of the few whose compressed-register share drops noticeably during
divergence, Figure 12).
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import pred_and, word_addr

_SCALE = {
    "small": dict(nodes=256, avg_degree=4, level=1),
    "default": dict(nodes=1536, avg_degree=4, level=2),
}


class Bfs(Benchmark):
    name = "bfs"
    description = "one BFS frontier expansion over a CSR graph (divergent)"
    diverges = True

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "bfs",
            params=(
                "n",
                "row_ptr",
                "col_idx",
                "frontier",
                "visited",
                "cost",
                "new_frontier",
            ),
        )
        tid = b.global_tid_x()
        n = b.param("n")
        in_graph = b.isetp(Cmp.LT, tid, n)
        frontier = b.param("frontier")
        my_flag = b.mov(0)
        with b.if_(in_graph):
            b.ldg(word_addr(b, frontier, tid), dst=my_flag)
        active = pred_and(b, in_graph, b.isetp(Cmp.NE, my_flag, 0))
        with b.if_(active):
            b.stg(word_addr(b, frontier, tid), 0)
            my_cost = b.ldg(word_addr(b, b.param("cost"), tid))
            next_cost = b.iadd(my_cost, 1)
            row_ptr = b.param("row_ptr")
            start = b.ldg(word_addr(b, row_ptr, tid))
            end = b.ldg(word_addr(b, row_ptr, b.iadd(tid, 1)))
            col_idx = b.param("col_idx")
            visited = b.param("visited")
            cost = b.param("cost")
            new_frontier = b.param("new_frontier")
            edge = b.mov(start)
            with b.while_loop() as loop:
                loop.break_unless(b.isetp(Cmp.LT, edge, end))
                neighbour = b.ldg(word_addr(b, col_idx, edge))
                seen = b.ldg(word_addr(b, visited, neighbour))
                with b.if_(b.isetp(Cmp.EQ, seen, 0)):
                    b.stg(word_addr(b, cost, neighbour), next_cost)
                    b.stg(word_addr(b, new_frontier, neighbour), 1)
                b.iadd(edge, 1, dst=edge)
        return b.build()

    # ------------------------------------------------------------------
    def _graph(self, nodes: int, avg_degree: int):
        """A connected random graph: a ring backbone plus random extras.

        The ring guarantees every BFS level is non-empty regardless of
        the random draws; the Poisson extras give warps the uneven
        neighbour-loop trip counts that drive spmv/bfs-style divergence.
        """
        rng = self.rng()
        degrees = 1 + rng.poisson(avg_degree - 1, size=nodes).clip(
            0, 3 * avg_degree
        )
        row_ptr = np.zeros(nodes + 1, dtype=np.int64)
        np.cumsum(degrees, out=row_ptr[1:])
        nnz = int(row_ptr[-1])
        col_idx = rng.integers(0, nodes, size=nnz).astype(np.int64)
        # First edge of every node goes to its ring successor.
        col_idx[row_ptr[:-1]] = (np.arange(nodes) + 1) % nodes
        return row_ptr, col_idx

    @staticmethod
    def _levels(row_ptr, col_idx, nodes: int) -> np.ndarray:
        """Host BFS from node 0 giving each node's level (-1 unreached)."""
        level = np.full(nodes, -1, dtype=np.int64)
        level[0] = 0
        frontier = [0]
        depth = 0
        while frontier:
            depth += 1
            nxt = []
            for u in frontier:
                for e in range(row_ptr[u], row_ptr[u + 1]):
                    v = int(col_idx[e])
                    if level[v] < 0:
                        level[v] = depth
                        nxt.append(v)
            frontier = nxt
        return level

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        nodes, k = cfg["nodes"], cfg["level"]
        row_ptr, col_idx = self._graph(nodes, cfg["avg_degree"])
        level = self._levels(row_ptr, col_idx, nodes)
        frontier0 = (level == k).astype(np.int64)
        visited0 = ((level >= 0) & (level <= k)).astype(np.int64)
        cost0 = np.where(level >= 0, np.minimum(level, k), 0).astype(np.int64)

        cta = 128
        num_ctas = -(-nodes // cta)
        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["row_ptr"] = gm.alloc_array(row_ptr, "row_ptr")
            addresses["col_idx"] = gm.alloc_array(col_idx, "col_idx")
            addresses["frontier"] = gm.alloc_array(frontier0, "frontier")
            addresses["visited"] = gm.alloc_array(visited0, "visited")
            addresses["cost"] = gm.alloc_array(cost0, "cost")
            addresses["new_frontier"] = gm.alloc(nodes, "new_frontier")
            return gm

        gmem_factory()
        params = [
            nodes,
            addresses["row_ptr"],
            addresses["col_idx"],
            addresses["frontier"],
            addresses["visited"],
            addresses["cost"],
            addresses["new_frontier"],
        ]
        return self._spec(
            grid_dim=(num_ctas, 1),
            cta_dim=(cta, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(
                cfg,
                row_ptr=row_ptr,
                col_idx=col_idx,
                frontier0=frontier0,
                visited0=visited0,
                cost0=cost0,
            ),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        m = spec.meta
        nodes = m["nodes"]
        exp_cost, exp_new = _reference(
            m["row_ptr"], m["col_idx"], m["frontier0"], m["visited0"], m["cost0"]
        )
        got_cost = gmem.read_array(spec.buffers["cost"], nodes).astype(np.int64)
        got_new = gmem.read_array(spec.buffers["new_frontier"], nodes).astype(
            np.int64
        )
        np.testing.assert_array_equal(got_cost, exp_cost)
        np.testing.assert_array_equal(got_new, exp_new)


def _reference(row_ptr, col_idx, frontier0, visited0, cost0):
    cost = cost0.copy()
    new_frontier = np.zeros_like(frontier0)
    for u in np.flatnonzero(frontier0):
        for e in range(row_ptr[u], row_ptr[u + 1]):
            v = int(col_idx[e])
            if not visited0[v]:
                cost[v] = cost0[u] + 1
                new_frontier[v] = 1
    return cost, new_frontier

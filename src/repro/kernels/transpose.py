"""transpose — shared-memory tile transpose (extended suite).

Each CTA stages a TILE x TILE block into shared memory and writes it back
transposed: zero arithmetic beyond addressing, so register content is
almost entirely thread-indexed addresses plus raw image data — isolating
the address-similarity component of warped-compression's savings.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import SReg
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import word_addr

TILE = 8

_SCALE = {
    "small": dict(n=32),
    "default": dict(n=64),
}


class Transpose(Benchmark):
    name = "transpose"
    description = "tiled matrix transpose (pure address movement)"
    diverges = False

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "transpose",
            params=("src", "dst", "n"),
            shared_bytes=TILE * TILE * 4,
        )
        tx = b.tid_x()
        ty = b.s2r(SReg.TID_Y)
        bx = b.ctaid_x()
        by = b.s2r(SReg.CTAID_Y)
        n = b.param("n")
        src_row = b.imad(by, TILE, ty)
        src_col = b.imad(bx, TILE, tx)
        value = b.ldg(word_addr(b, b.param("src"), b.imad(src_row, n, src_col)))
        b.sts(b.imul(b.imad(ty, TILE, tx), 4), value)
        b.bar()
        dst_row = b.imad(bx, TILE, ty)
        dst_col = b.imad(by, TILE, tx)
        transposed = b.lds(b.imul(b.imad(tx, TILE, ty), 4))
        b.stg(
            word_addr(b, b.param("dst"), b.imad(dst_row, n, dst_col)),
            transposed,
        )
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        n = cfg["n"]
        rng = self.rng()
        src = rng.integers(0, 256, size=(n, n)).astype(np.int64)
        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["src"] = gm.alloc_array(src, "src")
            addresses["dst"] = gm.alloc(n * n, "dst")
            return gm

        gmem_factory()
        params = [addresses["src"], addresses["dst"], n]
        return self._spec(
            grid_dim=(n // TILE, n // TILE),
            cta_dim=(TILE, TILE),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, src=src),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        m = spec.meta
        n = m["n"]
        got = gmem.read_array(spec.buffers["dst"], n * n).astype(np.int64)
        np.testing.assert_array_equal(got.reshape(n, n), m["src"].T)

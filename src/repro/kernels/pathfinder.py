"""pathfinder — the paper's running example (Figure 4).

Dynamic-programming shortest path over a grid whose wall weights lie in
0..9 (the narrow dynamic range Section 3 credits for this benchmark's
value similarity).  Each CTA owns a block of columns plus halo; every
iteration each thread takes the minimum of its three upstream neighbours
from a shared-memory row and adds its wall weight, with the
``IN_RANGE(tx, i+1, BLOCKSIZE-i-2)`` guard producing the benchmark's
characteristic divergence.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import imin3, in_range, pred_and, word_addr

BLOCK = 64
HALO = 1

_SCALE = {
    "small": dict(cols=128, iteration=4),
    "default": dict(cols=416, iteration=6),
}


class Pathfinder(Benchmark):
    name = "pathfinder"
    description = "grid DP shortest path, wall weights 0..9 (paper Fig. 4)"
    diverges = True

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "pathfinder",
            params=("iteration", "wall", "src", "dst", "cols", "border"),
            shared_bytes=2 * BLOCK * 4,
        )
        tx = b.tid_x()
        bx = b.ctaid_x()
        iteration = b.param("iteration")
        cols = b.param("cols")
        border = b.param("border")
        wall = b.param("wall")

        # small_block_cols = BLOCK - iteration * HALO * 2
        small_block_cols = b.isub(BLOCK, b.imul(iteration, 2 * HALO))
        blk_x = b.isub(b.imul(small_block_cols, bx), border)
        xidx = b.iadd(blk_x, tx)

        is_valid = pred_and(
            b,
            b.isetp(Cmp.GE, xidx, 0),
            b.isetp(Cmp.LT, xidx, cols),
        )

        # prev[tx] = src[xidx] (0 outside the grid)
        prev_addr = b.imul(tx, 4)
        result_addr = b.iadd(prev_addr, BLOCK * 4)
        src_val = b.mov(0)
        with b.if_(is_valid):
            b.ldg(word_addr(b, b.param("src"), xidx), dst=src_val)
        b.sts(prev_addr, src_val)
        computed = b.mov(0)
        result_val = b.mov(0)
        b.bar()

        with b.for_range(0, iteration) as i:
            b.mov(0, dst=computed)
            lo = b.iadd(i, 1)
            hi = b.isub(BLOCK - 2, i)
            cond = pred_and(b, in_range(b, tx, lo, hi), is_valid)
            with b.if_(cond):
                b.mov(1, dst=computed)
                west = b.imax(b.isub(tx, 1), 0)
                east = b.imin(b.iadd(tx, 1), BLOCK - 1)
                left = b.lds(b.imul(west, 4))
                up = b.lds(prev_addr)
                right = b.lds(b.imul(east, 4))
                shortest = imin3(b, left, up, right)
                row = b.iadd(i, 1)
                index = b.imad(row, cols, xidx)
                weight = b.ldg(word_addr(b, wall, index))
                b.iadd(shortest, weight, dst=result_val)
                b.sts(result_addr, result_val)
            b.bar()
            with b.if_(b.isetp(Cmp.NE, computed, 0)):
                b.sts(prev_addr, result_val)
            b.bar()

        with b.if_(b.isetp(Cmp.NE, computed, 0)):
            b.stg(word_addr(b, b.param("dst"), xidx), result_val)
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        cols, iteration = cfg["cols"], cfg["iteration"]
        rows = iteration + 1
        border = HALO * iteration
        small_block_cols = BLOCK - iteration * HALO * 2
        num_ctas = -(-cols // small_block_cols)

        rng = self.rng()
        wall = rng.integers(0, 10, size=(rows, cols), dtype=np.int64)

        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["wall"] = gm.alloc_array(wall, "wall")
            addresses["src"] = gm.alloc_array(wall[0], "src")
            addresses["dst"] = gm.alloc(cols, "dst")
            return gm

        gmem_factory()  # resolve addresses deterministically
        params = [
            iteration,
            addresses["wall"],
            addresses["src"],
            addresses["dst"],
            cols,
            border,
        ]
        return self._spec(
            grid_dim=(num_ctas, 1),
            cta_dim=(BLOCK, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, rows=rows, wall=wall),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        cfg = spec.meta
        cols, iteration = cfg["cols"], cfg["iteration"]
        wall = cfg["wall"]
        expected, written = _reference(wall, cols, iteration)
        got = gmem.read_array(spec.buffers["dst"], cols).astype(np.int64)
        np.testing.assert_array_equal(got[written], expected[written])


def _reference(
    wall: np.ndarray, cols: int, iteration: int
) -> tuple[np.ndarray, np.ndarray]:
    """Numpy mirror of the blocked kernel (same halo/clamp behaviour)."""
    border = HALO * iteration
    small_block_cols = BLOCK - iteration * HALO * 2
    num_ctas = -(-cols // small_block_cols)
    dst = np.zeros(cols, dtype=np.int64)
    written = np.zeros(cols, dtype=bool)
    for bx in range(num_ctas):
        blk_x = small_block_cols * bx - border
        xidx = blk_x + np.arange(BLOCK)
        valid = (xidx >= 0) & (xidx < cols)
        prev = np.where(valid, wall[0][np.clip(xidx, 0, cols - 1)], 0)
        result = np.zeros(BLOCK, dtype=np.int64)
        computed = np.zeros(BLOCK, dtype=bool)
        for i in range(iteration):
            tx = np.arange(BLOCK)
            cond = (tx >= i + 1) & (tx <= BLOCK - 2 - i) & valid
            west = np.maximum(tx - 1, 0)
            east = np.minimum(tx + 1, BLOCK - 1)
            shortest = np.minimum(np.minimum(prev[west], prev[tx]), prev[east])
            weight = wall[i + 1][np.clip(xidx, 0, cols - 1)]
            result = np.where(cond, shortest + weight, result)
            computed = cond
            prev = np.where(cond, result, prev)
        dst[xidx[computed]] = result[computed]
        written[xidx[computed]] = True
    return dst, written

"""histogram — privatised binning (Parboil histo, extended suite).

Race-free privatisation: thread ``t`` owns bin ``t % BINS`` and scans a
strided slice of the input, counting matches with a data-dependent guard
— the same irregular-control profile as the original's atomics, without
needing them.  Input values are bytes (0..255 collapsed to BINS), so the
count registers stay tiny.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import word_addr

BINS = 32
CTA = 128

_SCALE = {
    "small": dict(items=1024),
    "default": dict(items=8192),
}


class Histogram(Benchmark):
    name = "histogram"
    description = "privatised histogram over byte data"
    diverges = True

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "histogram", params=("data", "hist", "items", "nthreads")
        )
        gid = b.global_tid_x()
        nthreads = b.param("nthreads")
        items = b.param("items")
        data = b.param("data")
        my_bin = b.and_(gid, BINS - 1)
        count = b.mov(0)
        i = b.mov(gid)
        with b.while_loop() as loop:
            loop.break_unless(b.isetp(Cmp.LT, i, items))
            value = b.ldg(word_addr(b, data, i))
            binned = b.and_(value, BINS - 1)
            with b.if_(b.isetp(Cmp.EQ, binned, my_bin)):
                b.iadd(count, 1, dst=count)
            b.iadd(i, nthreads, dst=i)
        # hist[gid] holds thread-private counts; the host folds them.
        b.stg(word_addr(b, b.param("hist"), gid), count)
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        items = cfg["items"]
        blocks = 2
        nthreads = blocks * CTA
        rng = self.rng()
        data = rng.integers(0, 256, size=items).astype(np.int64)
        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["data"] = gm.alloc_array(data, "data")
            addresses["hist"] = gm.alloc(nthreads, "hist")
            return gm

        gmem_factory()
        params = [addresses["data"], addresses["hist"], items, nthreads]
        return self._spec(
            grid_dim=(blocks, 1),
            cta_dim=(CTA, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, data=data, nthreads=nthreads),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        m = spec.meta
        nthreads = m["nthreads"]
        got = gmem.read_array(spec.buffers["hist"], nthreads).astype(np.int64)
        data = m["data"]
        binned = data & (BINS - 1)
        for t in range(nthreads):
            expected = int(
                (binned[t::nthreads] == (t & (BINS - 1))).sum()
            )
            assert got[t] == expected, f"thread {t}: {got[t]} != {expected}"

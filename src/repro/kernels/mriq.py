"""mri-q — MRI Q-matrix computation (Parboil, extended suite).

Each thread owns one voxel and accumulates ``cos``/``sin`` phase terms
over the k-space sample list: heavy SFU traffic (the trigonometric units)
with broadcast-identical sample loads across the warp — another strongly
compressible access pattern on top of random float accumulators.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import word_addr

K_SAMPLES = 16

_SCALE = {
    "small": dict(voxels=256),
    "default": dict(voxels=1024),
}


class MriQ(Benchmark):
    name = "mriq"
    description = "MRI Q computation: trig phase accumulation per voxel"
    diverges = False

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "mriq",
            params=("x", "kx", "mag", "q_real", "q_imag", "nk"),
        )
        tid = b.global_tid_x()
        x = b.ldg(word_addr(b, b.param("x"), tid))
        kx = b.param("kx")
        mag = b.param("mag")
        real = b.mov(0.0)
        imag = b.mov(0.0)
        with b.for_range(0, b.param("nk")) as k:
            kval = b.ldg(word_addr(b, kx, k))
            m = b.ldg(word_addr(b, mag, k))
            phase = b.fmul(kval, x)
            b.ffma(m, b.fcos(phase), real, dst=real)
            b.ffma(m, b.fsin(phase), imag, dst=imag)
        b.stg(word_addr(b, b.param("q_real"), tid), real)
        b.stg(word_addr(b, b.param("q_imag"), tid), imag)
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        voxels = cfg["voxels"]
        cta = 128
        rng = self.rng()
        x = (rng.random(voxels) * 2.0 - 1.0).astype(np.float32)
        kx = (rng.random(K_SAMPLES) * 6.0).astype(np.float32)
        mag = rng.random(K_SAMPLES).astype(np.float32)
        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["x"] = gm.alloc_array(x, "x")
            addresses["kx"] = gm.alloc_array(kx, "kx")
            addresses["mag"] = gm.alloc_array(mag, "mag")
            addresses["q_real"] = gm.alloc(voxels, "q_real")
            addresses["q_imag"] = gm.alloc(voxels, "q_imag")
            return gm

        gmem_factory()
        params = [
            addresses["x"],
            addresses["kx"],
            addresses["mag"],
            addresses["q_real"],
            addresses["q_imag"],
            K_SAMPLES,
        ]
        return self._spec(
            grid_dim=(voxels // cta, 1),
            cta_dim=(cta, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, x=x, kx=kx, mag=mag),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        m = spec.meta
        voxels = len(m["x"])
        got_r = gmem.read_array(spec.buffers["q_real"], voxels, np.float32)
        got_i = gmem.read_array(spec.buffers["q_imag"], voxels, np.float32)
        exp_r, exp_i = _reference(m["x"], m["kx"], m["mag"])
        np.testing.assert_allclose(got_r, exp_r, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(got_i, exp_i, rtol=1e-4, atol=1e-5)


def _reference(x, kx, mag):
    real = np.zeros(len(x), dtype=np.float32)
    imag = np.zeros(len(x), dtype=np.float32)
    for k in range(len(kx)):
        phase = kx[k] * x
        real = mag[k] * np.cos(phase, dtype=np.float32) + real
        imag = mag[k] * np.sin(phase, dtype=np.float32) + imag
    return real, imag

"""srad — speckle-reducing anisotropic diffusion (Rodinia srad kernel 1).

Each thread computes the diffusion coefficient of one pixel of an
ultrasound-like image: directional derivatives against four clamped
neighbours, the normalised gradient/Laplacian statistics, and the
coefficient ``1 / (1 + f(q0, q))`` clamped to [0, 1].  Exercises the SFU
path (divides) plus border divergence; image values follow the original's
``exp(I/255)`` preprocessing, a narrow positive range.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import word_addr

Q0_SQR = 0.05  #: speckle scale at the current diffusion step

_SCALE = {
    "small": dict(rows=8, cols=32),
    "default": dict(rows=16, cols=64),
}


class Srad(Benchmark):
    name = "srad"
    description = "anisotropic diffusion coefficients (SFU-heavy, borders)"
    diverges = True

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "srad", params=("image", "coeff", "rows", "log2_cols", "n")
        )
        tid = b.global_tid_x()
        n = b.param("n")
        with b.if_(b.isetp(Cmp.LT, tid, n)):
            log2_cols = b.param("log2_cols")
            cols_mask = b.isub(b.shl(1, log2_cols), 1)
            rows = b.param("rows")
            row = b.shr(tid, log2_cols)
            col = b.and_(tid, cols_mask)
            image = b.param("image")

            jc = b.ldg(word_addr(b, image, tid))
            jn = b.mov(jc)
            with b.if_(b.isetp(Cmp.GT, row, 0)):
                b.ldg(
                    word_addr(b, image, b.isub(tid, b.shl(1, log2_cols))),
                    dst=jn,
                )
            js = b.mov(jc)
            with b.if_(b.isetp(Cmp.LT, row, b.isub(rows, 1))):
                b.ldg(
                    word_addr(b, image, b.iadd(tid, b.shl(1, log2_cols))),
                    dst=js,
                )
            jw = b.mov(jc)
            with b.if_(b.isetp(Cmp.GT, col, 0)):
                b.ldg(word_addr(b, image, b.isub(tid, 1)), dst=jw)
            je = b.mov(jc)
            with b.if_(b.isetp(Cmp.LT, col, cols_mask)):
                b.ldg(word_addr(b, image, b.iadd(tid, 1)), dst=je)

            dn = b.fsub(jn, jc)
            ds = b.fsub(js, jc)
            dw = b.fsub(jw, jc)
            de = b.fsub(je, jc)

            g2_num = b.fadd(
                b.fadd(b.fmul(dn, dn), b.fmul(ds, ds)),
                b.fadd(b.fmul(dw, dw), b.fmul(de, de)),
            )
            jc2 = b.fmul(jc, jc)
            g2 = b.fdiv(g2_num, jc2)
            lap = b.fadd(b.fadd(dn, ds), b.fadd(dw, de))
            l = b.fdiv(lap, jc)
            num = b.fsub(
                b.fmul(g2, 0.5), b.fmul(b.fmul(l, l), 1.0 / 16.0)
            )
            den_inner = b.ffma(l, 0.25, 1.0)
            den = b.fmul(den_inner, den_inner)
            qsqr = b.fdiv(num, den)
            cden = b.fmul(
                b.fsub(qsqr, Q0_SQR), 1.0 / (Q0_SQR * (1.0 + Q0_SQR))
            )
            c = b.fdiv(1.0, b.fadd(1.0, cden))
            c = b.fmin(b.fmax(c, 0.0), 1.0)
            b.stg(word_addr(b, b.param("coeff"), tid), c)
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        rows, cols = cfg["rows"], cfg["cols"]
        n = rows * cols
        log2_cols = cols.bit_length() - 1
        cta = 128
        num_ctas = -(-n // cta)

        rng = self.rng()
        raw = rng.integers(0, 256, size=(rows, cols))
        image = np.exp(raw / 255.0).astype(np.float32)

        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["image"] = gm.alloc_array(image, "image")
            addresses["coeff"] = gm.alloc(n, "coeff")
            return gm

        gmem_factory()
        params = [
            addresses["image"],
            addresses["coeff"],
            rows,
            log2_cols,
            n,
        ]
        return self._spec(
            grid_dim=(num_ctas, 1),
            cta_dim=(cta, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, image=image, n=n),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        m = spec.meta
        rows, cols = m["rows"], m["cols"]
        got = gmem.read_array(spec.buffers["coeff"], rows * cols, np.float32)
        expected = _reference(m["image"])
        np.testing.assert_allclose(
            got.reshape(rows, cols), expected, rtol=2e-5, atol=1e-6
        )


def _reference(image: np.ndarray) -> np.ndarray:
    jc = image
    jn = np.vstack([image[0:1], image[:-1]])
    js = np.vstack([image[1:], image[-1:]])
    jw = np.hstack([image[:, 0:1], image[:, :-1]])
    je = np.hstack([image[:, 1:], image[:, -1:]])
    dn, ds, dw, de = jn - jc, js - jc, jw - jc, je - jc
    g2 = ((dn * dn + ds * ds) + (dw * dw + de * de)) / (jc * jc)
    l = ((dn + ds) + (dw + de)) / jc
    num = g2 * np.float32(0.5) - (l * l) * np.float32(1.0 / 16.0)
    den_inner = l * np.float32(0.25) + np.float32(1.0)
    den = den_inner * den_inner
    qsqr = num / den
    cden = (qsqr - np.float32(Q0_SQR)) * np.float32(
        1.0 / (Q0_SQR * (1.0 + Q0_SQR))
    )
    c = np.float32(1.0) / (np.float32(1.0) + cden)
    return np.clip(c, 0.0, 1.0).astype(np.float32)

"""reduction — shared-memory tree sum (extended suite).

The canonical CUDA reduction: each CTA loads a block of values into
shared memory, then halves the number of active threads each step with a
barrier between steps.  Divergence escalates geometrically (half the
warp, then a quarter, ...), making it a stress test for the dummy-MOV
mechanism and the phase-split statistics.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import word_addr

CTA = 128

_SCALE = {
    "small": dict(blocks=2),
    "default": dict(blocks=12),
}


class Reduction(Benchmark):
    name = "reduction"
    description = "shared-memory tree sum (escalating divergence)"
    diverges = True

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "reduction", params=("data", "out"), shared_bytes=CTA * 4
        )
        tid = b.tid_x()
        gid = b.global_tid_x()
        my_addr = b.imul(tid, 4)
        b.sts(my_addr, b.ldg(word_addr(b, b.param("data"), gid)))
        b.bar()
        stride = CTA // 2
        while stride >= 1:
            with b.if_(b.isetp(Cmp.LT, tid, stride)):
                mine = b.lds(my_addr)
                other = b.lds(b.imul(b.iadd(tid, stride), 4))
                b.sts(my_addr, b.iadd(mine, other))
            b.bar()
            stride //= 2
        with b.if_(b.isetp(Cmp.EQ, tid, 0)):
            block_sum = b.lds(b.mov(0))
            b.stg(word_addr(b, b.param("out"), b.ctaid_x()), block_sum)
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        blocks = cfg["blocks"]
        n = blocks * CTA
        rng = self.rng()
        data = rng.integers(0, 1000, size=n).astype(np.int64)
        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["data"] = gm.alloc_array(data, "data")
            addresses["out"] = gm.alloc(blocks, "out")
            return gm

        gmem_factory()
        params = [addresses["data"], addresses["out"]]
        return self._spec(
            grid_dim=(blocks, 1),
            cta_dim=(CTA, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, data=data, n=n),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        m = spec.meta
        blocks = m["blocks"]
        got = gmem.read_array(spec.buffers["out"], blocks).astype(np.int64)
        expected = m["data"].reshape(blocks, CTA).sum(axis=1)
        np.testing.assert_array_equal(got, expected)

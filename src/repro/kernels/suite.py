"""Benchmark registry.

``BENCHMARKS`` holds the twelve workloads mirroring the paper's
evaluation suite — every figure averages over exactly these.
``EXTRA_BENCHMARKS`` holds nine further kernels (Parboil/CUDA-SDK-style)
used by the extended-suite generalisation study and available to any
experiment via ``--benchmarks``.
"""

from __future__ import annotations

from typing import Iterator

from repro.kernels.base import Benchmark


def _paper_suite() -> dict[str, Benchmark]:
    from repro.kernels.aes import Aes
    from repro.kernels.backprop import Backprop
    from repro.kernels.bfs import Bfs
    from repro.kernels.dwt2d import Dwt2d
    from repro.kernels.gaussian import Gaussian
    from repro.kernels.hotspot import Hotspot
    from repro.kernels.kmeans import Kmeans
    from repro.kernels.lib import Lib
    from repro.kernels.nw import NeedlemanWunsch
    from repro.kernels.pathfinder import Pathfinder
    from repro.kernels.spmv import Spmv
    from repro.kernels.srad import Srad

    benches = [
        Aes(),
        Backprop(),
        Bfs(),
        Dwt2d(),
        Gaussian(),
        Hotspot(),
        Kmeans(),
        Lib(),
        NeedlemanWunsch(),
        Pathfinder(),
        Spmv(),
        Srad(),
    ]
    return {b.name: b for b in benches}


def _extended_suite() -> dict[str, Benchmark]:
    from repro.kernels.blackscholes import BlackScholes
    from repro.kernels.histogram import Histogram
    from repro.kernels.lud import Lud
    from repro.kernels.mriq import MriQ
    from repro.kernels.nn import NearestNeighbor
    from repro.kernels.reduction import Reduction
    from repro.kernels.sgemm import Sgemm
    from repro.kernels.stencil3d import Stencil3d
    from repro.kernels.transpose import Transpose

    benches = [
        BlackScholes(),
        Histogram(),
        Lud(),
        MriQ(),
        NearestNeighbor(),
        Reduction(),
        Sgemm(),
        Stencil3d(),
        Transpose(),
    ]
    return {b.name: b for b in benches}


#: The paper's evaluation suite (drives every figNN experiment).
BENCHMARKS: dict[str, Benchmark] = _paper_suite()

#: Additional workloads for the generalisation study (`ext-suite`).
EXTRA_BENCHMARKS: dict[str, Benchmark] = _extended_suite()

_ALL: dict[str, Benchmark] = {**BENCHMARKS, **EXTRA_BENCHMARKS}


def benchmark_names(extended: bool = False) -> list[str]:
    """Benchmark names in report order (paper suite by default)."""
    return list(EXTRA_BENCHMARKS if extended else BENCHMARKS)


def get_benchmark(name: str) -> Benchmark:
    """Look up one benchmark (paper or extended suite) by name."""
    try:
        return _ALL[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(_ALL)}"
        ) from None


def iter_benchmarks(
    names: list[str] | None = None, extended: bool = False
) -> Iterator[Benchmark]:
    """Iterate benchmarks (a suite, or the named subset in order)."""
    for name in names or benchmark_names(extended):
        yield get_benchmark(name)

"""aes — table-lookup encryption rounds over random bytes.

Models the GPGPU-Sim AES benchmark's register behaviour: every thread
encrypts one 4-byte word column through T-box lookups and round-key XORs.
The data is uniformly random bytes, the lookup results are uniformly
random words, and the kernel is completely branch-free — the paper notes
AES never diverges (its Figure 12 divergent bar is "N/A") and its
registers are largely in the random bin.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import word_addr

ROUNDS = 6
TABLE_WORDS = 256

_SCALE = {
    "small": dict(words=256),
    "default": dict(words=2048),
}


def _tbox(rng: np.random.Generator) -> np.ndarray:
    """A random 256-entry substitution table of 32-bit words."""
    return rng.integers(0, 1 << 32, size=TABLE_WORDS, dtype=np.uint64).astype(
        np.uint32
    )


class Aes(Benchmark):
    name = "aes"
    description = "T-box lookup rounds over random bytes (no divergence)"
    diverges = False

    def build_kernel(self) -> Kernel:
        b = KernelBuilder("aes", params=("state", "tbox", "keys", "n"))
        tid = b.global_tid_x()
        tbox = b.param("tbox")
        keys = b.param("keys")

        state = b.ldg(word_addr(b, b.param("state"), tid))
        with b.for_range(0, ROUNDS) as rnd:
            # Substitute each byte of the state through the T-box.
            acc = b.mov(0)
            for shift in (0, 8, 16, 24):
                byte = b.and_(b.shr(state, shift), 0xFF)
                sub = b.ldg(word_addr(b, tbox, byte))
                # Rotate the substituted word into position and mix.
                rotated = b.or_(
                    b.shl(sub, shift), b.shr(sub, (32 - shift) % 32)
                )
                acc = b.xor(acc, rotated)
            key = b.ldg(word_addr(b, keys, rnd))
            b.xor(acc, key, dst=state)
        b.stg(word_addr(b, b.param("state"), tid), state)
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        words = cfg["words"]
        cta = 128
        num_ctas = words // cta

        rng = self.rng()
        state0 = rng.integers(0, 1 << 32, size=words, dtype=np.uint64).astype(
            np.uint32
        )
        tbox = _tbox(rng)
        round_keys = rng.integers(
            0, 1 << 32, size=ROUNDS, dtype=np.uint64
        ).astype(np.uint32)

        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["state"] = gm.alloc_array(state0, "state")
            addresses["tbox"] = gm.alloc_array(tbox, "tbox")
            addresses["keys"] = gm.alloc_array(round_keys, "keys")
            return gm

        gmem_factory()
        params = [
            addresses["state"],
            addresses["tbox"],
            addresses["keys"],
            words,
        ]
        return self._spec(
            grid_dim=(num_ctas, 1),
            cta_dim=(cta, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, state0=state0, tbox=tbox, keys=round_keys),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        meta = spec.meta
        got = gmem.read_array(spec.buffers["state"], meta["words"])
        expected = _reference(meta["state0"], meta["tbox"], meta["keys"])
        np.testing.assert_array_equal(got, expected)


def _reference(
    state0: np.ndarray, tbox: np.ndarray, keys: np.ndarray
) -> np.ndarray:
    state = state0.astype(np.uint64)
    for rnd in range(ROUNDS):
        acc = np.zeros_like(state)
        for shift in (0, 8, 16, 24):
            byte = (state >> shift) & 0xFF
            sub = tbox[byte].astype(np.uint64)
            rotated = ((sub << shift) | (sub >> ((32 - shift) % 32))) & 0xFFFFFFFF
            acc ^= rotated
        state = acc ^ keys[rnd]
    return state.astype(np.uint32)

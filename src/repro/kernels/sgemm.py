"""sgemm — tiled dense matrix multiply (Parboil, extended suite).

Classic shared-memory tiling: each CTA owns a TILE x TILE output block,
stages A and B tiles cooperatively, and accumulates across the K
dimension with barriers between tiles.  Random float data (low value
similarity) but intensely thread-indexed addressing.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import SReg
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import word_addr

TILE = 8  #: tile edge; CTA = TILE*TILE = 64 threads

_SCALE = {
    "small": dict(n=16),
    "default": dict(n=32),
}


class Sgemm(Benchmark):
    name = "sgemm"
    description = "tiled matrix multiply with shared-memory staging"
    diverges = False

    def build_kernel(self) -> Kernel:
        b = KernelBuilder(
            "sgemm",
            params=("a", "b", "c", "n"),
            shared_bytes=2 * TILE * TILE * 4,
        )
        tx = b.tid_x()
        ty = b.s2r(SReg.TID_Y)
        bx = b.ctaid_x()
        by = b.s2r(SReg.CTAID_Y)
        n = b.param("n")
        a = b.param("a")
        bb = b.param("b")

        row = b.imad(by, TILE, ty)
        col = b.imad(bx, TILE, tx)
        acc = b.mov(0.0)
        a_tile = b.imad(ty, TILE, tx)  # word offset into the A tile
        a_tile_addr = b.imul(a_tile, 4)
        b_tile_addr = b.iadd(a_tile_addr, TILE * TILE * 4)

        ntiles = n  # iterate K in TILE chunks: n / TILE tiles
        with b.for_range(0, b.shr(ntiles, 3)) as t:
            kbase = b.imul(t, TILE)
            a_idx = b.imad(row, n, b.iadd(kbase, tx))
            b_idx = b.imad(b.iadd(kbase, ty), n, col)
            b.sts(a_tile_addr, b.ldg(word_addr(b, a, a_idx)))
            b.sts(b_tile_addr, b.ldg(word_addr(b, bb, b_idx)))
            b.bar()
            for k in range(TILE):
                a_val = b.lds(b.imul(b.imad(ty, TILE, k), 4))
                b_val = b.lds(
                    b.iadd(b.imul(b.imad(k, TILE, tx), 4), TILE * TILE * 4)
                )
                b.ffma(a_val, b_val, acc, dst=acc)
            b.bar()
        c_idx = b.imad(row, n, col)
        b.stg(word_addr(b, b.param("c"), c_idx), acc)
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        n = cfg["n"]
        rng = self.rng()
        a = rng.standard_normal((n, n)).astype(np.float32)
        bmat = rng.standard_normal((n, n)).astype(np.float32)
        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["a"] = gm.alloc_array(a, "a")
            addresses["b"] = gm.alloc_array(bmat, "b")
            addresses["c"] = gm.alloc(n * n, "c")
            return gm

        gmem_factory()
        params = [addresses["a"], addresses["b"], addresses["c"], n]
        return self._spec(
            grid_dim=(n // TILE, n // TILE),
            cta_dim=(TILE, TILE),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, a=a, b=bmat),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        m = spec.meta
        n = m["n"]
        got = gmem.read_array(spec.buffers["c"], n * n, np.float32)
        expected = _reference(m["a"], m["b"])
        np.testing.assert_allclose(
            got.reshape(n, n), expected, rtol=1e-4, atol=1e-5
        )


def _reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    n = a.shape[0]
    acc = np.zeros((n, n), dtype=np.float32)
    # Same FFMA accumulation order as the kernel (k-major within tiles).
    for k in range(n):
        acc = a[:, k : k + 1] * b[k : k + 1, :] + acc
    return acc

"""lud — LU decomposition internal update step (Rodinia, extended suite).

The rank-1 update of the trailing submatrix after one pivot:
``a[r][c] -= l[r] * u[c]`` for ``r, c > t``.  Like gaussian but with a
2D guard (both row and column masked), producing a different divergence
footprint, and the ``l``/``u`` vector loads broadcast within rows and
columns respectively.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.builder import KernelBuilder
from repro.gpu.isa import Cmp
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.program import Kernel
from repro.kernels.base import Benchmark
from repro.kernels.common import pred_and, word_addr

_SCALE = {
    "small": dict(size=16, step=4),
    "default": dict(size=32, step=9),
}


class Lud(Benchmark):
    name = "lud"
    description = "LU trailing-submatrix rank-1 update"
    diverges = True

    def build_kernel(self) -> Kernel:
        b = KernelBuilder("lud", params=("a", "size", "log2_size", "step"))
        tid = b.global_tid_x()
        size = b.param("size")
        log2_size = b.param("log2_size")
        step = b.param("step")
        row = b.shr(tid, log2_size)
        col = b.and_(tid, b.isub(b.shl(1, log2_size), 1))
        active = pred_and(
            b,
            b.isetp(Cmp.GT, row, step),
            b.isetp(Cmp.GT, col, step),
            b.isetp(Cmp.LT, row, size),
        )
        with b.if_(active):
            a = b.param("a")
            l_val = b.ldg(word_addr(b, a, b.imad(row, size, step)))
            u_val = b.ldg(word_addr(b, a, b.imad(step, size, col)))
            idx = b.imad(row, size, col)
            elem = b.ldg(word_addr(b, a, idx))
            b.stg(word_addr(b, a, idx), b.fsub(elem, b.fmul(l_val, u_val)))
        return b.build()

    def launch(self, scale: str = "default") -> LaunchSpec:
        cfg = _SCALE[self._check_scale(scale)]
        size, step = cfg["size"], cfg["step"]
        log2_size = size.bit_length() - 1
        threads = size * size
        cta = 128
        rng = self.rng()
        a = rng.standard_normal((size, size)).astype(np.float32)
        # Normalise the pivot column as the factorisation would have.
        a[step + 1 :, step] = (a[step + 1 :, step] / np.float32(2.0)).astype(
            np.float32
        )
        addresses: dict[str, int] = {}

        def gmem_factory() -> GlobalMemory:
            gm = GlobalMemory()
            addresses["a"] = gm.alloc_array(a, "a")
            return gm

        gmem_factory()
        params = [addresses["a"], size, log2_size, step]
        return self._spec(
            grid_dim=(-(-threads // cta), 1),
            cta_dim=(cta, 1),
            params=params,
            gmem_factory=gmem_factory,
            buffers=dict(addresses),
            meta=dict(cfg, a=a),
        )

    def verify(self, gmem: GlobalMemory, spec: LaunchSpec) -> None:
        m = spec.meta
        size, step = m["size"], m["step"]
        got = gmem.read_array(spec.buffers["a"], size * size, np.float32)
        expected = _reference(m["a"], step)
        np.testing.assert_allclose(
            got.reshape(size, size), expected, rtol=1e-5, atol=1e-6
        )


def _reference(a: np.ndarray, step: int) -> np.ndarray:
    a = a.copy()
    l_col = a[step + 1 :, step].copy()
    u_row = a[step, step + 1 :].copy()
    a[step + 1 :, step + 1 :] -= np.outer(l_col, u_row).astype(np.float32)
    return a

"""The serializable per-interval time series attached to a run.

A :class:`Timeline` is what the interval sampler produces: one row of
metric values every ``interval`` cycles, stored column-wise as named
series.  It rides inside :class:`~repro.sim.result.RunResult`, so it
must round-trip losslessly through ``to_dict``/``from_dict`` (the
content-addressed cache and the process-pool executor both serialize
results to JSON).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Timeline:
    """Column-wise per-interval samples of named metrics.

    ``series[name][i]`` is the value of ``name`` at ``cycles[i]``.
    ``kinds[name]`` is ``"delta"`` (per-interval event count, summed
    when merging SMs) or ``"gauge"`` (instantaneous value, averaged
    when merging).
    """

    interval: int
    cycles: list[int] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)
    kinds: dict[str, str] = field(default_factory=dict)

    def append(self, cycle: int, row: dict[str, float]) -> None:
        """Add one sample row (all series advance together)."""
        self.cycles.append(cycle)
        for name, value in row.items():
            self.series.setdefault(name, []).append(value)

    def __len__(self) -> int:
        return len(self.cycles)

    def get(self, name: str) -> list[float]:
        return self.series[name]

    # ------------------------------------------------------------------
    # Cross-SM merge
    # ------------------------------------------------------------------
    def merge(self, other: "Timeline") -> None:
        """Fold another SM's timeline into this one, interval-aligned.

        Delta series add (events across SMs accumulate); gauge series
        average.  Rows beyond the shorter timeline keep the longer
        timeline's values — an SM that drained early simply stops
        contributing.
        """
        if other.interval != self.interval:
            raise ValueError(
                f"cannot merge timelines with intervals "
                f"{self.interval} and {other.interval}"
            )
        if len(other) > len(self):
            self.cycles = list(other.cycles)
        for name, values in other.series.items():
            kind = other.kinds.get(name, "gauge")
            self.kinds.setdefault(name, kind)
            mine = self.series.setdefault(name, [])
            for i, value in enumerate(values):
                if i < len(mine):
                    if kind == "delta":
                        mine[i] += value
                    else:
                        mine[i] = (mine[i] + value) / 2.0
                else:
                    mine.append(value)

    # ------------------------------------------------------------------
    # Serialisation (RunResult artifacts)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless JSON-compatible representation."""
        return {
            "interval": int(self.interval),
            "cycles": [int(c) for c in self.cycles],
            "series": {
                name: list(values)
                for name, values in sorted(self.series.items())
            },
            "kinds": dict(sorted(self.kinds.items())),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Timeline":
        return cls(
            interval=int(data["interval"]),
            cycles=[int(c) for c in data["cycles"]],
            series={
                name: list(values) for name, values in data["series"].items()
            },
            kinds=dict(data["kinds"]),
        )

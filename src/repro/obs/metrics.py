"""Hierarchical metric registry: counters, gauges, histograms, probes.

Components (SM, register file, arbiter, scoreboard, collectors,
scheduler, gating controller, energy model) *register into* a
:class:`MetricRegistry` under dotted names (``regfile.compressed_fraction``,
``arbiter.read_grants``).  Two properties make the registry safe to
thread through the hot cycle loop:

* **near-zero overhead when disabled** — a disabled registry hands out
  the shared :data:`NULL_COUNTER` / :data:`NULL_GAUGE` /
  :data:`NULL_HISTOGRAM` singletons whose mutators are no-ops, and
  drops probe registrations entirely, so instrumented code pays one
  attribute call at most;
* **pull-based probes** — most simulator state is already counted
  somewhere (the energy model's event totals, the arbiter's grant
  counters, the register file's compressed-slot count).  A
  :class:`Probe` wraps a zero-arg callable evaluated only when the
  interval sampler fires, so steady-state cycles pay nothing at all.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Iterable


class Counter:
    """A monotonically non-decreasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def inc(self) -> None:
        self.value += 1

    def read(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value that can move in either direction."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, n: float = 1) -> None:
        self.value += n

    def read(self) -> float:
        return self.value


class Histogram:
    """Bucketed distribution of observed samples.

    ``bounds`` are inclusive upper bucket edges; samples above the last
    bound land in the implicit overflow bucket.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str = "", bounds: Iterable[float] = ()):
        self.name = name
        self.bounds = tuple(sorted(bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def read(self) -> float:
        return self.mean

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }


class Probe:
    """A pull-based gauge: evaluated only when the sampler fires."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], float]):
        self.name = name
        self.fn = fn

    def read(self) -> float:
        return self.fn()


class _NullInstrument:
    """Shared do-nothing stand-in handed out by a disabled registry."""

    __slots__ = ()
    name = ""
    value = 0

    def add(self, n: int = 1) -> None:
        pass

    def inc(self) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def read(self) -> float:
        return 0.0


#: Singletons returned by a disabled registry — every caller shares them.
NULL_COUNTER = _NullInstrument()
NULL_GAUGE = _NullInstrument()
NULL_HISTOGRAM = _NullInstrument()


class MetricRegistry:
    """Flat namespace of dotted metric names → instruments.

    ``kind`` per metric records how the interval sampler should treat
    it: ``"delta"`` metrics are cumulative counts sampled as per-interval
    differences; ``"gauge"`` metrics are sampled as instantaneous values.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: dict[str, object] = {}
        self._kinds: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _register(self, name: str, metric, kind: str):
        if name in self._metrics:
            raise ValueError(f"metric {name!r} already registered")
        self._metrics[name] = metric
        self._kinds[name] = kind
        return metric

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        return self._register(name, Counter(name), "delta")

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        return self._register(name, Gauge(name), "gauge")

    def histogram(self, name: str, bounds: Iterable[float] = ()) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._register(name, Histogram(name, bounds), "gauge")

    def probe(
        self, name: str, fn: Callable[[], float], kind: str = "gauge"
    ) -> None:
        """Register a pull-based metric; dropped when disabled."""
        if kind not in ("gauge", "delta"):
            raise ValueError(f"probe kind must be gauge or delta: {kind!r}")
        if self.enabled:
            self._register(name, Probe(name, fn), kind)

    # ------------------------------------------------------------------
    # Introspection (the sampler's read side)
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._metrics)

    def kind(self, name: str) -> str:
        return self._kinds[name]

    def read(self, name: str) -> float:
        return self._metrics[name].read()

    def read_all(self) -> dict[str, float]:
        return {name: m.read() for name, m in sorted(self._metrics.items())}

    def histograms(self) -> dict[str, dict]:
        """Full bucket payloads for every histogram (``read_all`` only
        surfaces the mean)."""
        return {
            name: m.to_dict()
            for name, m in sorted(self._metrics.items())
            if isinstance(m, Histogram)
        }

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)


#: The registry instrumented code falls back to when sampling is off.
NULL_REGISTRY = MetricRegistry(enabled=False)

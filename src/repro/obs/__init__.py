"""``repro.obs`` — always-available observability for the simulator.

Four layers, all optional and all near-zero-cost when switched off:

* :mod:`repro.obs.metrics` — a hierarchical counter/gauge/histogram
  registry components register into; a disabled registry hands out
  shared null instruments whose methods are no-ops.
* :mod:`repro.obs.timeline` + :mod:`repro.obs.sampler` — per-N-cycle
  time series (IPC, bank pressure, compressed occupancy, dummy-MOV
  rate, gated banks, stall breakdown) attached to
  :class:`~repro.sim.result.RunResult` as a serializable
  :class:`~repro.obs.timeline.Timeline`.
* :mod:`repro.obs.tracer` — a bounded ring buffer of structured events
  exported as Chrome trace-event JSON (loadable in Perfetto).
* :mod:`repro.obs.profiler` + :mod:`repro.obs.log` — host-side wall
  clock per phase, cache hit/miss counts, per-worker throughput, and
  the one logging layer all progress output routes through.
"""

from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NULL_REGISTRY,
)
from repro.obs.profiler import HostProfiler
from repro.obs.sampler import IntervalSampler
from repro.obs.timeline import Timeline
from repro.obs.tracer import EventTracer, validate_chrome_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_REGISTRY",
    "Timeline",
    "IntervalSampler",
    "EventTracer",
    "validate_chrome_trace",
    "HostProfiler",
    "configure_logging",
    "get_logger",
]

"""Host-side profiling: where does the *simulator's* wall clock go?

The microarchitectural layers answer "why does this kernel stall"; this
module answers "why is the simulation slow".  A :class:`HostProfiler`
threads through the session layer and records

* wall-clock per named phase (``simulate``, ``reduce``, per experiment),
* cache accounting (memo hits, disk hits, actual simulations),
* per-worker throughput in the process-pool engine,
* per-simulation wall-clock as a histogram,

and serializes everything to the ``--metrics-out metrics.json`` payload.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.log import get_logger
from repro.obs.metrics import Histogram

logger = get_logger("profiler")


@dataclass
class WorkerStats:
    """Throughput of one worker process in the pool engine."""

    simulations: int = 0
    busy_seconds: float = 0.0

    @property
    def throughput(self) -> float:
        """Simulations per busy second."""
        if self.busy_seconds <= 0:
            return 0.0
        return self.simulations / self.busy_seconds


@dataclass
class HostProfiler:
    """Wall-clock and throughput accounting for one CLI invocation."""

    phases: dict[str, float] = field(default_factory=dict)
    phase_calls: dict[str, int] = field(default_factory=dict)
    workers: dict[int, WorkerStats] = field(default_factory=dict)
    sim_seconds: Histogram = field(
        default_factory=lambda: Histogram(
            "sim.wall_seconds",
            bounds=(0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0),
        )
    )
    started_at: float = field(default_factory=time.monotonic)
    heartbeat_every: int = 10

    # ------------------------------------------------------------------
    # Phase timing
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Time a named phase; nested/repeated phases accumulate."""
        start = time.monotonic()
        try:
            yield
        finally:
            elapsed = time.monotonic() - start
            self.phases[name] = self.phases.get(name, 0.0) + elapsed
            self.phase_calls[name] = self.phase_calls.get(name, 0) + 1

    def add_phase_seconds(
        self, name: str, seconds: float, calls: int = 1
    ) -> None:
        """Fold externally measured wall-clock into a named phase.

        For callers that already hold timings (e.g. the bench's
        instrumented per-stage pass) and only need them aggregated into
        the same ``phases`` table the :meth:`phase` context manager
        feeds.
        """
        self.phases[name] = self.phases.get(name, 0.0) + seconds
        self.phase_calls[name] = self.phase_calls.get(name, 0) + calls

    # ------------------------------------------------------------------
    # Simulation accounting
    # ------------------------------------------------------------------
    def record_simulation(
        self, seconds: float, worker: int | None = None
    ) -> None:
        """One kernel simulation completed in ``seconds`` (on ``worker``)."""
        self.sim_seconds.observe(seconds)
        stats = self.workers.setdefault(
            worker if worker is not None else os.getpid(), WorkerStats()
        )
        stats.simulations += 1
        stats.busy_seconds += seconds

    def heartbeat(self, done: int, total: int, label: str = "") -> None:
        """Progress line every ``heartbeat_every`` completions (and last)."""
        if done % self.heartbeat_every and done != total:
            return
        elapsed = time.monotonic() - self.started_at
        suffix = f" — {label}" if label else ""
        logger.info(
            "  [%d/%d] %.1fs elapsed%s", done, total, elapsed, suffix
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The ``metrics.json`` payload."""
        return {
            "wall_seconds": time.monotonic() - self.started_at,
            "phases": {
                name: {
                    "seconds": seconds,
                    "calls": self.phase_calls.get(name, 0),
                }
                for name, seconds in sorted(self.phases.items())
            },
            "simulations": {
                "count": self.sim_seconds.total,
                "total_seconds": self.sim_seconds.sum,
                "mean_seconds": self.sim_seconds.mean,
                "histogram": self.sim_seconds.to_dict(),
            },
            "workers": {
                str(pid): {
                    "simulations": w.simulations,
                    "busy_seconds": w.busy_seconds,
                    "throughput_per_s": w.throughput,
                }
                for pid, w in sorted(self.workers.items())
            },
        }

    def hotspot_table(self, limit: int = 20) -> str:
        """Phases sorted by wall-clock, widest first."""
        rows = sorted(self.phases.items(), key=lambda kv: -kv[1])[:limit]
        if not rows:
            return "(no phases recorded)"
        width = max(len(name) for name, _ in rows)
        lines = [f"{'phase':<{width}}  seconds  calls"]
        for name, seconds in rows:
            lines.append(
                f"{name:<{width}}  {seconds:7.2f}  "
                f"{self.phase_calls.get(name, 0):5d}"
            )
        return "\n".join(lines)

"""Interval sampler: registry snapshots every N cycles → Timeline.

The sampler is pull-based: between sample points the simulator pays
nothing beyond the counters it already maintains.  At each sample point
the sampler reads every metric in the registry, converts ``delta``
metrics (cumulative counts) into per-interval differences, and appends
one row to its :class:`~repro.obs.timeline.Timeline`.
"""

from __future__ import annotations

from repro.obs.metrics import MetricRegistry
from repro.obs.timeline import Timeline


class IntervalSampler:
    """Emit one Timeline row per ``interval`` simulated cycles."""

    def __init__(self, registry: MetricRegistry, interval: int):
        if interval <= 0:
            raise ValueError(f"sample interval must be positive: {interval}")
        self.registry = registry
        self.interval = interval
        self.timeline = Timeline(interval=interval)
        self._next_sample = interval
        self._last: dict[str, float] = {}

    @property
    def next_sample(self) -> int:
        """First cycle at which :meth:`tick` will take a sample.

        The fast path (:meth:`repro.gpu.sm.SMCore.wake_hint`) caps cycle
        skips here so every sample boundary lands on a real tick and the
        timeline matches cycle-by-cycle execution row for row.
        """
        return self._next_sample

    def tick(self, cycle: int) -> dict[str, float] | None:
        """Advance to ``cycle``; samples when the interval boundary passes.

        Returns the sampled row when one was taken (the SM forwards it
        to the event tracer as counter-track samples), else ``None``.
        """
        if cycle >= self._next_sample:
            self._next_sample = cycle + self.interval
            return self.sample(cycle)
        return None

    def sample(self, cycle: int) -> dict[str, float]:
        """Force one sample row at ``cycle`` and return it."""
        row: dict[str, float] = {}
        for name in self.registry.names():
            value = self.registry.read(name)
            if self.registry.kind(name) == "delta":
                row[name] = value - self._last.get(name, 0.0)
                self._last[name] = value
            else:
                row[name] = value
            self.timeline.kinds.setdefault(name, self.registry.kind(name))
        self.timeline.append(cycle, row)
        return row

    def finish(self, cycle: int) -> Timeline:
        """Flush a final partial interval (if any) and return the timeline.

        The trailing row covers fewer than ``interval`` cycles when the
        run length is not a multiple of the interval; downstream rate
        computations use the recorded ``cycles`` axis, not the nominal
        interval, so the partial row stays honest.
        """
        last_sampled = self.timeline.cycles[-1] if len(self.timeline) else 0
        if cycle > last_sampled:
            self.sample(cycle)
        return self.timeline

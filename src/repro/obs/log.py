"""The one logging layer all progress output routes through.

Everything that used to be an ad-hoc ``print`` in the harness and the
session layer goes through ``get_logger(...)`` so a single
``--log-level`` flag controls verbosity uniformly.  Result tables are
*output*, not progress, and still print directly.

The handler writes bare messages (no timestamps or level prefixes) to
keep CLI output byte-stable for the tests that compare rendered runs.
"""

from __future__ import annotations

import logging
import sys

#: Root of the observability logging hierarchy.
ROOT = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    return logging.getLogger(f"{ROOT}.{name}" if name else ROOT)


def configure_logging(level: str = "info", stream=None) -> logging.Logger:
    """Install the plain-message handler and set the root level.

    Idempotent: reconfiguring replaces the previous handler instead of
    stacking a duplicate.
    """
    if level not in _LEVELS:
        raise ValueError(
            f"log level must be one of {sorted(_LEVELS)}, got {level!r}"
        )
    root = get_logger()
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stdout)
    handler.setFormatter(logging.Formatter("%(message)s"))
    root.addHandler(handler)
    root.setLevel(_LEVELS[level])
    root.propagate = False
    return root

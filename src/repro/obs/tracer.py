"""Structured event tracer → Chrome trace-event / Perfetto JSON.

The tracer is a bounded ring buffer of span, instant, and counter
events.  The SM emits one span per pipeline stage of every in-flight
instruction onto its warp's named track, spans for the compressor and
decompressor units, and counter samples (bank accesses, compressed
occupancy, gated banks, collector occupancy) at the sampling interval.
``export()`` renders everything as Chrome trace-event JSON — the
``chrome://tracing`` / Perfetto "JSON trace" dialect — with

* ``pid`` = SM index (named ``SM n`` via process_name metadata),
* ``tid`` = warp slot + 1 for warp tracks (named ``warp n``), plus
  reserved tids for the compression pipeline tracks,
* ``ts``/``dur`` in simulated cycles (displayed as microseconds).

When the buffer overflows, the *oldest* events are dropped (the tail of
a run is usually what a stall investigation needs) and the drop count
is reported in the export's metadata.
"""

from __future__ import annotations

from collections import deque

#: Reserved tids for non-warp tracks (warp tracks are warp_slot + 1).
COMPRESSOR_TID = 9001
DECOMPRESSOR_TID = 9002
#: Counter events attach to tid 0 of their SM's pid.
COUNTER_TID = 0

#: Default ring-buffer capacity (events, not bytes).
DEFAULT_CAPACITY = 200_000


class EventTracer:
    """Bounded recorder of trace events for one simulation."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive: {capacity}")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self._track_names: dict[tuple[int, int], str] = {}
        self._process_names: dict[int, str] = {}
        self.emitted = 0

    # ------------------------------------------------------------------
    # Track naming
    # ------------------------------------------------------------------
    def name_process(self, pid: int, name: str) -> None:
        self._process_names[pid] = name

    def name_track(self, pid: int, tid: int, name: str) -> None:
        self._track_names[(pid, tid)] = name

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------
    def _push(self, event: dict) -> None:
        self.emitted += 1
        self._events.append(event)

    def span(
        self,
        pid: int,
        tid: int,
        name: str,
        start: int,
        end: int,
        **args,
    ) -> None:
        """A complete ("X") event covering ``[start, end]`` cycles."""
        self._push(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "name": name,
                "ts": int(start),
                "dur": max(0, int(end) - int(start)),
                "args": args,
            }
        )

    def instant(self, pid: int, tid: int, name: str, ts: int, **args) -> None:
        self._push(
            {
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "name": name,
                "ts": int(ts),
                "args": args,
            }
        )

    def counter(self, pid: int, name: str, ts: int, **values) -> None:
        """A counter ("C") sample — one stacked track per name."""
        self._push(
            {
                "ph": "C",
                "pid": pid,
                "tid": COUNTER_TID,
                "name": name,
                "ts": int(ts),
                "args": {k: float(v) for k, v in values.items()},
            }
        )

    @property
    def dropped(self) -> int:
        return self.emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self) -> dict:
        """Chrome trace-event JSON (the ``traceEvents`` envelope)."""
        meta: list[dict] = []
        for pid, name in sorted(self._process_names.items()):
            meta.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "ts": 0,
                    "name": "process_name",
                    "args": {"name": name},
                }
            )
        for (pid, tid), name in sorted(self._track_names.items()):
            meta.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "ts": 0,
                    "name": "thread_name",
                    "args": {"name": name},
                }
            )
        # Longest span first at equal timestamps so viewers nest
        # contained stage spans under the enclosing instruction span.
        events = sorted(
            self._events,
            key=lambda e: (e["ts"], e["pid"], e["tid"], -e.get("dur", 0)),
        )
        return {
            "traceEvents": meta + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "repro.obs",
                "events_emitted": self.emitted,
                "events_dropped": self.dropped,
                "time_unit": "simulated cycles (shown as us)",
            },
        }


# ---------------------------------------------------------------------------
# Schema validation (CI smoke + tests)
# ---------------------------------------------------------------------------

_REQUIRED_KEYS = {"ph", "pid", "tid", "name", "ts"}


def validate_chrome_trace(payload: dict, strict: bool = False) -> list[str]:
    """Check a trace export against the minimal Chrome-trace schema.

    Validates: a ``traceEvents`` list whose entries carry the required
    keys, non-negative sorted timestamps, non-negative durations, every
    (pid, tid) used by a real event introduced by name metadata, and at
    least one non-empty counter track.  Returns a list of problems;
    with ``strict=True`` raises ``ValueError`` instead when any exist.
    """
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        problems.append("traceEvents missing or empty")
        events = []

    named_pids: set[int] = set()
    named_tracks: set[tuple[int, int]] = set()
    last_ts = None
    counter_tracks: set[str] = set()
    for i, event in enumerate(events):
        missing = _REQUIRED_KEYS - set(event)
        if missing:
            problems.append(f"event {i} missing keys {sorted(missing)}")
            continue
        ph = event["ph"]
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i} has invalid ts {ts!r}")
        if ph == "M":
            if event["name"] == "process_name":
                named_pids.add(event["pid"])
            elif event["name"] == "thread_name":
                named_tracks.add((event["pid"], event["tid"]))
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(f"event {i} timestamps not sorted ({ts} < {last_ts})")
        last_ts = ts
        if event["pid"] not in named_pids:
            problems.append(f"event {i} pid {event['pid']} has no process_name")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i} has invalid dur {dur!r}")
            if (event["pid"], event["tid"]) not in named_tracks:
                problems.append(
                    f"event {i} track ({event['pid']}, {event['tid']}) "
                    "has no thread_name"
                )
        elif ph == "C":
            if not event.get("args"):
                problems.append(f"counter event {i} has empty args")
            else:
                counter_tracks.add(event["name"])
    if not counter_tracks:
        problems.append("no non-empty counter tracks")

    # Deduplicate while preserving order, and cap the report.
    problems = list(dict.fromkeys(problems))[:50]
    if strict and problems:
        raise ValueError("invalid Chrome trace: " + "; ".join(problems))
    return problems

"""Seeded random kernel generator over the builder DSL.

Produces small but adversarial PTX-like programs for the differential
oracle: mixed-width integer/float arithmetic (so compression modes keep
flipping), branch divergence with proper reconvergence, data-dependent
loop trip counts, shared-memory exchange phases, and guarded stores.

Every generated program is **deterministic across warp scheduling
orders** by construction, which is what lets the oracle demand bit-exact
agreement between the functional runner and the cycle-level SM:

* global loads touch only the read-only input buffer or the thread's own
  scratch slots;
* every global store lands in a per-thread-disjoint slice (``tid``-strided
  scratch slots, ``tid``-strided dump rows);
* shared-memory phases happen only at top level as a
  store → barrier → load → barrier sequence, so no lane reads a shared
  word that another warp may not have written yet, and no lane overwrites
  a word before everyone has read it;
* there is no early ``EXIT``, so barrier participation is total.

The epilogue spills every architectural register to the per-thread dump
row, putting the final register state of all 32 lanes into the memory
image the oracle compares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.gpu.builder import KernelBuilder, fimm
from repro.gpu.isa import Cmp, Imm, Pred, Reg, SReg
from repro.gpu.launch import LaunchSpec
from repro.gpu.memory import GlobalMemory

#: Words reserved per thread in the result-dump buffer; the register
#: budget stays below this so the epilogue can spill every register.
DUMP_STRIDE = 64

#: Power-of-two word count of the read-only input buffer (indices are
#: masked with ``& (INPUT_WORDS - 1)`` so any value is a safe index).
INPUT_WORDS = 1024

#: Guard words appended to the input buffer so static load offsets
#: cannot run off the end.
_INPUT_PAD = 8

#: Scratch words owned by each thread.
_SCRATCH_SLOTS = 8

_INT_BIN = ("iadd", "isub", "imul", "imin", "imax", "and_", "or_", "xor")
_SHIFTS = ("shl", "shr", "sar")
_FLOAT_BIN = ("fadd", "fsub", "fmul", "fmin", "fmax", "fdiv")
_FLOAT_UN = ("fabs", "fneg", "frcp", "fsqrt", "fexp", "flog", "fsin", "fcos")
_CMPS = (Cmp.EQ, Cmp.NE, Cmp.LT, Cmp.LE, Cmp.GT, Cmp.GE)
_FLOAT_IMMS = (0.0, 0.5, 1.0, -1.5, 2.0, 3.25, -0.125, 1024.0, 1e-3)


@dataclass(frozen=True)
class GenSpec:
    """Deterministic description of one generated kernel + its inputs.

    Two generators built from equal specs produce byte-identical programs
    and input buffers; the fuzz shrinker minimises failures by shrinking
    these fields (never by editing instructions directly), so a spec is a
    complete, replayable reproducer.
    """

    seed: int
    blocks: int = 6
    max_block_ops: int = 5
    num_ctas: int = 2
    cta_threads: int = 64
    reg_budget: int = 40
    max_loop_trips: int = 3
    allow_divergence: bool = True
    allow_shared: bool = True
    allow_loops: bool = True
    allow_float: bool = True

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.blocks < 1 or self.max_block_ops < 1:
            raise ValueError("blocks and max_block_ops must be >= 1")
        if self.num_ctas < 1:
            raise ValueError("num_ctas must be >= 1")
        if self.cta_threads not in (32, 64, 128):
            raise ValueError(
                f"cta_threads must be 32, 64 or 128, got {self.cta_threads}"
            )
        if not 8 <= self.reg_budget <= DUMP_STRIDE - 8:
            raise ValueError(
                f"reg_budget must be in [8, {DUMP_STRIDE - 8}] so the "
                "epilogue can spill every register"
            )
        if self.max_loop_trips < 1:
            raise ValueError("max_loop_trips must be >= 1")

    def with_(self, **overrides) -> "GenSpec":
        return replace(self, **overrides)


class KernelGenerator:
    """Single-use generator: :meth:`generate` consumes the seeded stream."""

    def __init__(self, spec: GenSpec):
        self.spec = spec
        self.rng = np.random.default_rng(spec.seed)
        self._generated = False

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def generate(self) -> LaunchSpec:
        if self._generated:
            raise RuntimeError("KernelGenerator instances are single-use")
        self._generated = True
        spec = self.spec

        shared_bytes = spec.cta_threads * 4 if spec.allow_shared else 0
        self.b = b = KernelBuilder(
            f"fuzz-{spec.seed}",
            params=("inp", "out", "scratch"),
            shared_bytes=shared_bytes,
        )

        # Preamble: thread indices, parameter bases, seed values.  These
        # registers are protected from reuse — addresses derive from them.
        self.tid = b.global_tid_x()
        self.tidx = b.tid_x()
        self.inp = b.param("inp")
        self.out = b.param("out")
        self.scratch = b.param("scratch")
        self.protected = {
            r.index
            for r in (self.tid, self.tidx, self.inp, self.out, self.scratch)
        }
        self.live: list[Reg] = [self.tid, self.tidx]
        for _ in range(3):
            self._gen_input_load()
        for _ in range(2):
            self.live.append(b.mov(self._imm()))

        for _ in range(spec.blocks):
            self._block(depth=0)

        # Epilogue: spill every architectural register to the dump row.
        dump_addr = b.imad(self.tid, DUMP_STRIDE * 4, self.out)
        ndump = min(b._next_reg, DUMP_STRIDE)
        for r in range(ndump):
            b.stg(dump_addr, Reg(r), offset=4 * r)
        kernel = b.build()
        if kernel.num_registers > DUMP_STRIDE:
            raise AssertionError(
                f"generator used {kernel.num_registers} registers, "
                f"dump row holds {DUMP_STRIDE}"
            )
        return self._launch_spec(kernel, ndump)

    # ------------------------------------------------------------------
    # Launch assembly
    # ------------------------------------------------------------------
    def _launch_spec(self, kernel, ndump: int) -> LaunchSpec:
        spec = self.spec
        total_threads = spec.num_ctas * spec.cta_threads
        inp_data = self._input_array(INPUT_WORDS + _INPUT_PAD)
        out_words = total_threads * DUMP_STRIDE
        scratch_words = total_threads * _SCRATCH_SLOTS

        def factory() -> GlobalMemory:
            g = GlobalMemory()
            g.alloc_array(inp_data, "inp")
            g.alloc(out_words, "out")
            g.alloc(scratch_words, "scratch")
            return g

        probe = GlobalMemory()
        buffers = {
            "inp": probe.alloc_array(inp_data, "inp"),
            "out": probe.alloc(out_words, "out"),
            "scratch": probe.alloc(scratch_words, "scratch"),
        }
        return LaunchSpec(
            kernel=kernel,
            grid_dim=(spec.num_ctas, 1),
            cta_dim=(spec.cta_threads, 1),
            params=[buffers["inp"], buffers["out"], buffers["scratch"]],
            gmem_factory=factory,
            buffers=buffers,
            meta={"spec": spec, "dump_regs": ndump},
        )

    def _input_array(self, nwords: int) -> np.ndarray:
        """Mixed-width input: 32-word groups of varying delta widths.

        Patterned so warp-wide loads hit every compression mode: all-equal
        groups (``<4,0>``), byte-delta (``<4,1>``), 16-bit-delta
        (``<4,2>``), lane-affine ramps, raw random words, and float bit
        patterns — including bases parked at 0 and 0xFFFFFFFF to exercise
        wrap-around deltas.
        """
        rng = self.rng
        out = np.zeros(nwords, dtype=np.uint32)
        i = 0
        while i < nwords:
            n = min(32, nwords - i)
            kind = int(rng.integers(0, 6))
            base = int(
                rng.choice(
                    (
                        0,
                        0xFFFFFFFF,
                        int(rng.integers(0, 1 << 32)),
                        int(rng.integers(0, 4096)),
                    )
                )
            )
            if kind == 0:
                words = np.full(n, base, dtype=np.uint64)
            elif kind == 1:
                words = base + rng.integers(-128, 128, n).astype(np.int64)
            elif kind == 2:
                words = base + rng.integers(-32768, 32768, n).astype(np.int64)
            elif kind == 3:
                stride = int(rng.integers(1, 64))
                words = base + stride * np.arange(n, dtype=np.int64)
            elif kind == 4:
                words = rng.integers(0, 1 << 32, n)
            else:
                scale = float(rng.choice((1.0, 255.0, 1e6)))
                vals = rng.uniform(-scale, scale, n).astype(np.float32)
                words = vals.view(np.uint32).astype(np.int64)
            out[i : i + n] = np.asarray(words, dtype=np.int64) % (1 << 32)
            i += n
        return out

    # ------------------------------------------------------------------
    # Program constructs
    # ------------------------------------------------------------------
    def _block(self, depth: int) -> None:
        spec, rng = self.spec, self.rng
        kinds = ["ops", "ops", "gload", "gstore"]
        if spec.allow_divergence and depth < 2:
            kinds.append("if")
        if spec.allow_loops and depth == 0:
            kinds.append("loop")
        if spec.allow_shared and depth == 0:
            kinds.append("shared")
        kind = kinds[int(rng.integers(len(kinds)))]
        getattr(self, f"_gen_{kind}")(depth)

    def _gen_ops(self, depth: int) -> None:
        count = 1 + int(self.rng.integers(self.spec.max_block_ops))
        for _ in range(count):
            self._emit_op()

    def _gen_if(self, depth: int) -> None:
        b, rng = self.b, self.rng
        pred = self._mk_pred()
        with b.if_(pred):
            self._block(depth + 1)
        if rng.random() < 0.5:
            with b.else_():
                self._block(depth + 1)

    def _gen_loop(self, depth: int) -> None:
        b, rng, spec = self.b, self.rng, self.spec
        pinned: set[int] = set()
        if spec.allow_divergence and rng.random() < 0.5:
            # Data-dependent trip count: lanes exit at different
            # iterations and reconverge at the loop end.
            bound = b.and_(
                self._pick_value(), spec.max_loop_trips, dst=self._dst()
            )
            pinned.add(bound.index)
        else:
            bound = 1 + int(rng.integers(spec.max_loop_trips))
        with b.for_range(0, bound) as i:
            # The induction variable and the bound register must not be
            # recycled as destinations inside the body: the trip count
            # would become unbounded.
            pinned.add(i.index)
            self.protected |= pinned
            self._gen_ops(depth + 1)
            if rng.random() < 0.5:
                self._gen_gstore(depth + 1)
        self.protected -= pinned
        self.live.append(i)

    def _gen_shared(self, depth: int) -> None:
        b, rng, spec = self.b, self.rng, self.spec
        addr = b.shl(self.tidx, 2, dst=self._dst(exclude=()))
        b.sts(addr, self._pick_value())
        b.bar()
        span = int(math.log2(spec.cta_threads))
        mask = 1 << int(rng.integers(0, span))
        partner = b.xor(self.tidx, mask, dst=self._dst())
        paddr = b.shl(partner, 2, dst=self._dst(exclude=(partner,)))
        self.live.append(b.lds(paddr, dst=self._dst(exclude=(paddr,))))
        b.bar()

    def _gen_gstore(self, depth: int) -> None:
        b, rng, spec = self.b, self.rng, self.spec
        slot = int(rng.integers(_SCRATCH_SLOTS))
        value = self._pick_value()
        addr = b.imad(
            self.tid,
            _SCRATCH_SLOTS * 4,
            self.scratch,
            dst=self._dst(exclude=(value,)),
        )
        guard = None
        if spec.allow_divergence and rng.random() < 0.4:
            guard = self._mk_pred()
        b.stg(addr, value, offset=4 * slot, guard=guard)

    def _gen_gload(self, depth: int) -> None:
        b, rng = self.b, self.rng
        if rng.random() < 0.3:
            # Read back the thread's own scratch slots.
            addr = b.imad(
                self.tid, _SCRATCH_SLOTS * 4, self.scratch, dst=self._dst()
            )
            dst = self._dst(exclude=(addr,))
            value = b.ldg(
                addr, offset=4 * int(rng.integers(_SCRATCH_SLOTS)), dst=dst
            )
        else:
            value = self._gen_input_load()
        if value not in self.live:
            self.live.append(value)

    def _gen_input_load(self) -> Reg:
        b, rng = self.b, self.rng
        idx = b.and_(
            self._pick_value(), INPUT_WORDS - 1, dst=self._dst()
        )
        addr = b.imad(idx, 4, self.inp, dst=self._dst(exclude=(idx,)))
        value = b.ldg(
            addr,
            offset=4 * int(rng.integers(_INPUT_PAD)),
            dst=self._dst(exclude=(addr,)),
        )
        if value not in self.live:
            self.live.append(value)
        return value

    # ------------------------------------------------------------------
    # Single instructions
    # ------------------------------------------------------------------
    def _emit_op(self) -> None:
        b, rng, spec = self.b, self.rng, self.spec
        kinds = ["int", "int", "shift", "imad", "mov", "sel", "sreg"]
        if spec.allow_float:
            kinds += ["fbin", "fun", "cvt"]
        kind = kinds[int(rng.integers(len(kinds)))]
        if kind == "int":
            fn = getattr(b, _INT_BIN[int(rng.integers(len(_INT_BIN)))])
            dst = fn(self._pick_value(), self._value_or_imm(), dst=self._dst())
        elif kind == "shift":
            fn = getattr(b, _SHIFTS[int(rng.integers(len(_SHIFTS)))])
            amount = int(rng.integers(0, 32))
            dst = fn(self._pick_value(), amount, dst=self._dst())
        elif kind == "imad":
            dst = b.imad(
                self._pick_value(),
                self._value_or_imm(),
                self._value_or_imm(),
                dst=self._dst(),
            )
        elif kind == "mov":
            dst = b.mov(self._value_or_imm(), dst=self._dst())
        elif kind == "sel":
            pred = self._mk_pred()
            dst = b.sel(
                pred, self._pick_value(), self._value_or_imm(), dst=self._dst()
            )
        elif kind == "sreg":
            sregs = (SReg.LANEID, SReg.TID_X, SReg.CTAID_X, SReg.NTID_X)
            dst = b.s2r(sregs[int(rng.integers(len(sregs)))], dst=self._dst())
        elif kind == "fbin":
            fn = getattr(b, _FLOAT_BIN[int(rng.integers(len(_FLOAT_BIN)))])
            dst = fn(self._pick_value(), self._float_operand(), dst=self._dst())
        elif kind == "fun":
            fn = getattr(b, _FLOAT_UN[int(rng.integers(len(_FLOAT_UN)))])
            dst = fn(self._pick_value(), dst=self._dst())
        else:  # cvt
            fn = b.i2f if rng.random() < 0.5 else b.f2i
            dst = fn(self._pick_value(), dst=self._dst())
        if dst not in self.live:
            self.live.append(dst)

    def _mk_pred(self) -> Pred:
        b, rng, spec = self.b, self.rng, self.spec
        cmp = _CMPS[int(rng.integers(len(_CMPS)))]
        if spec.allow_float and rng.random() < 0.25:
            return b.fsetp(cmp, self._pick_value(), self._float_operand())
        return b.isetp(cmp, self._pick_value(), self._value_or_imm())

    # ------------------------------------------------------------------
    # Operand / destination selection
    # ------------------------------------------------------------------
    def _pick_value(self) -> Reg:
        return self.live[int(self.rng.integers(len(self.live)))]

    def _value_or_imm(self):
        if self.rng.random() < 0.3:
            return self._imm()
        return self._pick_value()

    def _float_operand(self):
        if self.rng.random() < 0.4:
            rng = self.rng
            return float(_FLOAT_IMMS[int(rng.integers(len(_FLOAT_IMMS)))])
        return self._pick_value()

    def _imm(self) -> Imm:
        rng = self.rng
        kind = int(rng.integers(0, 5))
        if kind == 0:
            return Imm(0)
        if kind == 1:
            return Imm(int(rng.integers(-128, 128)))
        if kind == 2:
            return Imm(int(rng.integers(-32768, 32768)))
        if kind == 3:
            return Imm(int(rng.integers(0, 1 << 32)))
        return fimm(float(_FLOAT_IMMS[int(rng.integers(len(_FLOAT_IMMS)))]))

    def _dst(self, exclude: tuple[Reg, ...] = ()) -> Reg | None:
        """Fresh register, or a recycled one once the budget is spent.

        ``exclude`` lists registers whose value must survive this write
        (e.g. an address register consumed by the same construct).
        """
        banned = self.protected | {r.index for r in exclude}
        cands = [r for r in self.live if r.index not in banned]
        force = self.b._next_reg >= self.spec.reg_budget
        if cands and (force or self.rng.random() < 0.35):
            return cands[int(self.rng.integers(len(cands)))]
        return None


def generate_launch(spec: GenSpec) -> LaunchSpec:
    """Generate the deterministic launch described by ``spec``."""
    return KernelGenerator(spec).generate()


__all__ = [
    "DUMP_STRIDE",
    "GenSpec",
    "INPUT_WORDS",
    "KernelGenerator",
    "generate_launch",
]

"""Fuzz loop: sweep seeds, shrink failures, dump replayable artifacts.

Each seed deterministically derives a :class:`~repro.verify.generator.
GenSpec` plus a (policy, config-override) pair from a pool covering the
design points the simulator models — scheduler policies, compression
latencies, gating parameters, multi-SM dispatch, the RFC extension — and
runs the differential oracle on the generated kernel.

On failure the spec is *shrunk*: a greedy pass over field-level
reductions (fewer CTAs, narrower CTAs, fewer blocks, features disabled)
keeps any reduction that still reproduces the failure, converging to a
locally-minimal reproducer.  The result is dumped as a JSON artifact
through the :mod:`repro.sim` cache layer conventions (content-addressed
name under ``<cache-dir>/verify/``, stamped with ``code_version`` and a
schema number) and can be replayed with :func:`replay_artifact` or
``repro verify --replay``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.gpu.config import GPUConfig
from repro.sim.cache import code_version, fingerprint, resolve_cache_dir
from repro.verify.generator import GenSpec, generate_launch
from repro.verify.oracle import run_differential

ARTIFACT_SCHEMA = 1

#: Policies exercised by the fuzz sweep, weighted towards the paper's
#: proposal.  All of them must agree with the functional model.
POLICY_POOL: tuple[str, ...] = (
    "warped",
    "warped",
    "baseline",
    "warped-buffered",
    "static-4-0",
    "static-4-1",
    "static-4-2",
    "per-thread",
)

#: Config-override pool: named design points whose pipelines differ
#: enough to shake out timing-dependent bugs.
CONFIG_POOL: tuple[dict, ...] = (
    {},
    {"scheduler_policy": "lrr"},
    {"num_collectors": 4},
    {"num_compressors": 1, "compression_latency": 3},
    {"decompression_latency": 2},
    {"bank_gate_delay": 0},
    {"bank_wakeup_latency": 0, "bank_gate_delay": 8},
    {"num_schedulers": 1},
    {"num_sms": 2},
    {"rfc_entries_per_warp": 2},
)


@dataclass(frozen=True)
class FuzzCase:
    """One fuzz trial: the generated kernel plus its simulator variant."""

    spec: GenSpec
    policy: str
    config_overrides: dict

    def run(self) -> None:
        """Generate and differentially check; raises on any failure."""
        launch = generate_launch(self.spec)
        config = GPUConfig(**self.config_overrides)
        run_differential(launch, policy=self.policy, config=config)


def case_for_seed(seed: int) -> FuzzCase:
    """Deterministically derive the fuzz case for one seed.

    A separate rng stream (seed XOR a constant) picks the policy and
    config so shrinking the kernel spec never changes the variant.
    """
    rng = np.random.default_rng(seed ^ 0x5EED_CAFE)
    policy = POLICY_POOL[int(rng.integers(len(POLICY_POOL)))]
    overrides = dict(CONFIG_POOL[int(rng.integers(len(CONFIG_POOL)))])
    if overrides.get("rfc_entries_per_warp") and policy == "per-thread":
        # The RFC extension models the warped design point; keep the
        # variant meaningful.
        policy = "warped"
    return FuzzCase(
        spec=GenSpec(seed=seed), policy=policy, config_overrides=overrides
    )


@dataclass
class FuzzFailure:
    """A reproducible failure, before and after shrinking."""

    seed: int
    error: str
    original_spec: GenSpec
    shrunk_spec: GenSpec
    policy: str
    config_overrides: dict
    artifact_path: Path | None = None


@dataclass
class FuzzReport:
    """Outcome of one sweep."""

    seeds_run: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def _reductions(spec: GenSpec) -> list[GenSpec]:
    """Candidate one-step reductions of ``spec``, most aggressive first."""
    out = []
    if spec.num_ctas > 1:
        out.append(spec.with_(num_ctas=1))
    if spec.cta_threads > 32:
        out.append(spec.with_(cta_threads=32))
    if spec.allow_shared:
        out.append(spec.with_(allow_shared=False))
    if spec.allow_loops:
        out.append(spec.with_(allow_loops=False))
    if spec.allow_float:
        out.append(spec.with_(allow_float=False))
    if spec.allow_divergence:
        out.append(spec.with_(allow_divergence=False))
    if spec.blocks > 1:
        out.append(spec.with_(blocks=max(1, spec.blocks // 2)))
        out.append(spec.with_(blocks=spec.blocks - 1))
    if spec.max_block_ops > 1:
        out.append(spec.with_(max_block_ops=max(1, spec.max_block_ops // 2)))
    if spec.max_loop_trips > 1:
        out.append(spec.with_(max_loop_trips=1))
    if spec.reg_budget > 8:
        out.append(spec.with_(reg_budget=max(8, spec.reg_budget // 2)))
    return out


def shrink(
    case: FuzzCase,
    still_fails: Callable[[FuzzCase], bool] | None = None,
    max_attempts: int = 64,
) -> GenSpec:
    """Greedily minimise ``case.spec`` while the failure reproduces.

    ``still_fails`` defaults to re-running the differential oracle and
    catching any exception.  Returns the smallest failing spec found
    (possibly the original).  Shrinking changes the *generator knobs*
    only, so the result is always a valid, replayable spec.
    """
    if still_fails is None:

        def still_fails(c: FuzzCase) -> bool:
            try:
                c.run()
            except Exception:
                return True
            return False

    current = case.spec
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _reductions(current):
            attempts += 1
            if attempts > max_attempts:
                break
            reduced = FuzzCase(
                spec=candidate,
                policy=case.policy,
                config_overrides=case.config_overrides,
            )
            if still_fails(reduced):
                current = candidate
                improved = True
                break
    return current


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------
def artifact_dir(root: Path | str | None = None) -> Path:
    base = resolve_cache_dir(root)
    return base / "verify"


def dump_artifact(failure: FuzzFailure, root: Path | str | None = None) -> Path:
    """Write a replayable JSON reproducer; returns its path.

    The filename is content-addressed (like the sim result cache) so
    re-running a sweep never duplicates artifacts for the same failure.
    """
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "kind": "fuzz-failure",
        "code_version": code_version(),
        "seed": failure.seed,
        "error": failure.error,
        "policy": failure.policy,
        "config_overrides": failure.config_overrides,
        "spec": asdict(failure.shrunk_spec),
        "original_spec": asdict(failure.original_spec),
    }
    directory = artifact_dir(root)
    directory.mkdir(parents=True, exist_ok=True)
    key = fingerprint(
        {k: payload[k] for k in ("seed", "policy", "config_overrides", "spec")}
    )
    path = directory / f"fail-{failure.seed}-{key[:12]}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    failure.artifact_path = path
    return path


def load_artifact(path: Path | str) -> FuzzCase:
    """Rebuild the failing case from an artifact file."""
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "fuzz-failure":
        raise ValueError(f"{path} is not a fuzz-failure artifact")
    if payload.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(
            f"artifact schema {payload.get('schema')} not supported "
            f"(expected {ARTIFACT_SCHEMA})"
        )
    return FuzzCase(
        spec=GenSpec(**payload["spec"]),
        policy=payload["policy"],
        config_overrides=dict(payload["config_overrides"]),
    )


def replay_artifact(path: Path | str) -> None:
    """Re-run a dumped reproducer; raises the original class of failure.

    Artifacts record the ``code_version`` they were produced under; a
    replay against different code still runs (that is the point — to
    check whether the bug is fixed), the stamp just documents provenance.
    """
    load_artifact(path).run()


# ----------------------------------------------------------------------
# Sweep
# ----------------------------------------------------------------------
def fuzz_many(
    seeds: Sequence[int],
    artifact_root: Path | str | None = None,
    do_shrink: bool = True,
    progress: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Differentially check every seed; shrink and dump each failure."""
    report = FuzzReport()
    for seed in seeds:
        case = case_for_seed(int(seed))
        report.seeds_run += 1
        try:
            case.run()
        except Exception as exc:  # noqa: BLE001 - any failure is a finding
            failure = FuzzFailure(
                seed=int(seed),
                error=f"{type(exc).__name__}: {exc}",
                original_spec=case.spec,
                shrunk_spec=case.spec,
                policy=case.policy,
                config_overrides=case.config_overrides,
            )
            if do_shrink:
                failure.shrunk_spec = shrink(case)
            dump_artifact(failure, artifact_root)
            report.failures.append(failure)
            if progress is not None:
                progress(
                    f"seed {seed}: FAIL ({failure.error}) -> "
                    f"{failure.artifact_path}"
                )
        else:
            if progress is not None and report.seeds_run % 25 == 0:
                progress(f"{report.seeds_run} seeds ok")
    return report


__all__ = [
    "ARTIFACT_SCHEMA",
    "CONFIG_POOL",
    "POLICY_POOL",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "artifact_dir",
    "case_for_seed",
    "dump_artifact",
    "fuzz_many",
    "load_artifact",
    "replay_artifact",
    "shrink",
]

"""Runtime invariant checks for the cycle-level pipeline.

The simulator maintains several pieces of state incrementally for speed —
bank valid-entry counters in the gating controller, compressed-slot
counters in the register file, the 2-bit compression-range indicator, the
scoreboard's pending sets, the energy model's event totals.  Each has a
ground truth it must never drift from.  This module makes those
conservation properties executable:

``verify_level=1`` (the default)
    Cheap, event-driven O(1) checks: compression decisions are validated
    for internal consistency on every commit, the scoreboard runs in
    strict exactly-once mode, and end-of-run conservation totals are
    asserted (energy bank-access events == arbiter grants, scoreboard and
    register file fully drained, no gated bank holding live data).

``verify_level=2`` (exhaustive, used by the differential oracle)
    Everything above plus a per-cycle full-state scan — register-file
    metadata vs indicator vs gating counters vs in-flight ops — and a
    codec-vs-BDI cross-check (:func:`crosscheck_register`) on every
    committed warp-register value.

Violations raise :class:`InvariantViolation`, an ``AssertionError``
subclass so plain ``pytest.raises(AssertionError)`` also catches it.
"""

from __future__ import annotations

import numpy as np

from repro.core import bdi
from repro.core.banks import BANKS_PER_WARP_REGISTER
from repro.core.codec import (
    CompressionMode,
    choose_mode,
    decode_register,
    encode_register,
)
from repro.core.policy import CompressionDecision


class InvariantViolation(AssertionError):
    """A pipeline conservation property failed at runtime."""


class CodecMismatch(InvariantViolation):
    """The fast vectorised codec disagrees with the byte-level BDI model."""


#: CompressionMode values paired with their generic BDI encodings, in
#: preference (fewest-banks-first) order — the order ``choose_mode`` uses.
_MODE_TABLE = (
    (CompressionMode.B4D0, bdi.Encoding(4, 0)),
    (CompressionMode.B4D1, bdi.Encoding(4, 1)),
    (CompressionMode.B4D2, bdi.Encoding(4, 2)),
)


def crosscheck_register(values: np.ndarray) -> CompressionMode:
    """Validate the fast codec against the byte-level BDI reference.

    For one 32-lane warp-register value this checks, independently of the
    vectorised implementation:

    1. ``choose_mode`` picks exactly the first warped encoding whose
       byte-level ``can_encode`` accepts the little-endian lane bytes;
    2. the mode's claimed compressed size and bank count match paper
       eq. (1) evaluated through :class:`~repro.core.bdi.Encoding`;
    3. ``encode_register``/``decode_register`` round-trip the lanes
       bit-exactly, and the generic ``encode``/``decode`` plus the
       ``to_bytes``/``from_bytes`` bit layout round-trip the raw bytes.

    Returns the (verified) mode so callers can reuse it.
    """
    lanes = np.asarray(values, dtype=np.uint32)
    data = lanes.astype("<u4").tobytes()
    mode = choose_mode(lanes)

    expected = CompressionMode.UNCOMPRESSED
    for candidate, enc in _MODE_TABLE:
        if bdi.can_encode(data, enc):
            expected = candidate
            break
    if mode is not expected:
        raise CodecMismatch(
            f"choose_mode picked {mode.name} but the byte-level reference "
            f"says {expected.name} for lanes {lanes[:4]}..."
        )

    if mode is CompressionMode.UNCOMPRESSED:
        if mode.banks != BANKS_PER_WARP_REGISTER:
            raise CodecMismatch(
                f"UNCOMPRESSED claims {mode.banks} banks, expected "
                f"{BANKS_PER_WARP_REGISTER}"
            )
        re_mode, re_block = encode_register(lanes)
        if re_mode is not mode or re_block is not None:
            raise CodecMismatch(
                f"encode_register returned ({re_mode.name}, {re_block}) "
                "for an uncompressible register"
            )
        return mode

    enc = mode.encoding
    if mode.compressed_bytes != enc.compressed_size(len(data)):
        raise CodecMismatch(
            f"{mode.name} claims {mode.compressed_bytes} bytes but eq. (1) "
            f"gives {enc.compressed_size(len(data))}"
        )
    if mode.banks != enc.banks(len(data)):
        raise CodecMismatch(
            f"{mode.name} claims {mode.banks} banks but the BDI reference "
            f"needs {enc.banks(len(data))}"
        )

    re_mode, block = encode_register(lanes)
    if re_mode is not mode or block is None:
        raise CodecMismatch(
            f"encode_register mode {re_mode.name} != choose_mode {mode.name}"
        )
    decoded = decode_register(block)
    if not np.array_equal(decoded, lanes):
        raise CodecMismatch(
            f"decode(encode_register(...)) changed the lanes in mode "
            f"{mode.name}: {decoded[:4]}... != {lanes[:4]}..."
        )

    ref_block = bdi.encode(data, enc)
    if bdi.decode(ref_block) != data:
        raise CodecMismatch(f"byte-level decode(encode) mismatch for {enc}")
    if ref_block.base != block.base or ref_block.deltas != block.deltas:
        raise CodecMismatch(
            f"fast and byte-level blocks differ in {mode.name}: "
            f"base {block.base}/{ref_block.base}"
        )
    payload = bdi.to_bytes(ref_block)
    if len(payload) != mode.compressed_bytes:
        raise CodecMismatch(
            f"serialised payload is {len(payload)} bytes, mode claims "
            f"{mode.compressed_bytes}"
        )
    if bdi.from_bytes(payload, enc, len(data)) != ref_block:
        raise CodecMismatch(f"from_bytes(to_bytes(...)) mismatch for {enc}")
    return mode


def check_decision(
    decision: CompressionDecision | None,
    values: np.ndarray,
    *,
    indicator_exact: bool = True,
    level: int = 1,
) -> None:
    """Validate one commit-time compression decision.

    Level 1 checks are O(1) in the warp width: the decision must be
    internally consistent (mode vs bank count vs indicator encoding).
    Level 2 additionally runs the full :func:`crosscheck_register` on the
    committed value and asserts the stored mode can actually represent it
    (storing a tighter mode than achievable would be lossy).
    """
    if decision is None:
        raise InvariantViolation("commit without a compression decision")
    if not 1 <= decision.banks <= BANKS_PER_WARP_REGISTER:
        raise InvariantViolation(
            f"decision bank count {decision.banks} out of [1, 8]"
        )
    if indicator_exact:
        if decision.banks != decision.mode.banks:
            raise InvariantViolation(
                f"decision stores {decision.banks} banks but indicator "
                f"{decision.mode.name} encodes {decision.mode.banks}"
            )
    elif not decision.mode.is_compressed:
        if decision.banks != BANKS_PER_WARP_REGISTER:
            raise InvariantViolation(
                f"uncompressed decision with {decision.banks} banks"
            )
    if level >= 2:
        achievable = crosscheck_register(values)
        if (
            indicator_exact
            and decision.mode.is_compressed
            and decision.mode < achievable
        ):
            raise InvariantViolation(
                f"stored mode {decision.mode.name} is tighter than the "
                f"achievable {achievable.name}: the write would be lossy"
            )


class InvariantChecker:
    """Per-SM runtime checker driven from :meth:`SMCore.tick`.

    Instantiated by the SM when ``config.verify_level >= 1``; the SM calls
    :meth:`check_commit` on every register-file commit, :meth:`check_tick`
    at the end of every cycle, and :meth:`check_finalize` once the run
    drains.  All heavyweight scans are gated behind level 2 so the default
    level adds only O(1) work per event.
    """

    def __init__(self, config, policy):
        self.level = config.verify_level
        self.indicator_exact = getattr(policy, "indicator_exact", True)
        self.commits_checked = 0
        self.ticks_checked = 0

    # ----- event-driven (level >= 1) -----------------------------------
    def check_commit(
        self, values: np.ndarray, decision: CompressionDecision | None
    ) -> None:
        check_decision(
            decision,
            values,
            indicator_exact=self.indicator_exact,
            level=self.level,
        )
        self.commits_checked += 1

    # ----- per-cycle (scan only at level >= 2) -------------------------
    def check_tick(self, sm) -> None:
        if sm.arbiter.cycle != sm.cycle:
            raise InvariantViolation(
                f"arbiter cycle {sm.arbiter.cycle} out of sync with SM "
                f"cycle {sm.cycle}"
            )
        # Port flags are all clear on a grant-free cycle (begin_cycle
        # resets them after any granting cycle), so the cross-check is
        # only informative when something was granted.
        if sm.arbiter.reads_this_cycle or sm.arbiter.writes_this_cycle:
            reads, writes = sm.arbiter.busy_port_counts()
            if reads != sm.arbiter.reads_this_cycle:
                raise InvariantViolation(
                    f"cycle {sm.cycle}: {sm.arbiter.reads_this_cycle} read "
                    f"grants but {reads} read ports claimed (>1 grant per "
                    "bank port)"
                )
            if writes != sm.arbiter.writes_this_cycle:
                raise InvariantViolation(
                    f"cycle {sm.cycle}: {sm.arbiter.writes_this_cycle} write "
                    f"grants but {writes} write ports claimed (>1 grant per "
                    "bank port)"
                )
        if self.level < 2:
            return
        self.ticks_checked += 1
        occupancy = sm.regfile.check_consistency(self.indicator_exact)
        if sm.gating is not None:
            sm.gating.check_consistency(occupancy)
        # The per-state op counters that gate the stage scans must agree
        # with a recount of the inflight list.
        counts = {}
        for op in sm._inflight:
            counts[op.state] = counts.get(op.state, 0) + 1
        from repro.gpu.sm import OpState

        expected = {
            OpState.COLLECT: sm._n_collect,
            OpState.EXEC: sm._n_exec,
            OpState.COMPRESS: sm._n_compress,
            OpState.WRITE: sm._n_write,
        }
        for state, n in expected.items():
            if counts.get(state, 0) != n:
                raise InvariantViolation(
                    f"cycle {sm.cycle}: stage counter for {state.name} is "
                    f"{n} but {counts.get(state, 0)} ops are in that state"
                )
        seen: set[tuple[int, int]] = set()
        for op in sm._inflight:
            dst = op.result.dst
            if dst is None:
                continue
            key = (op.warp_slot, dst)
            if key in seen:
                raise InvariantViolation(
                    f"two in-flight writers of r{dst} in warp "
                    f"{op.warp_slot} (WAW hazard escaped the scoreboard)"
                )
            seen.add(key)
            if not sm.scoreboard.is_pending(op.warp_slot, dst):
                raise InvariantViolation(
                    f"in-flight write of r{dst} in warp {op.warp_slot} "
                    "has no scoreboard reservation"
                )

    # ----- end of run (level >= 1) -------------------------------------
    def check_finalize(self, sm) -> None:
        if sm.rfc is None:
            # RFC hits/evictions move data without arbiter involvement,
            # so the grant==event identity only holds without an RFC.
            if sm.energy.bank_reads != sm.arbiter.read_grants:
                raise InvariantViolation(
                    f"energy charged {sm.energy.bank_reads} bank reads "
                    f"but the arbiter granted {sm.arbiter.read_grants}"
                )
            if sm.energy.bank_writes != sm.arbiter.write_grants:
                raise InvariantViolation(
                    f"energy charged {sm.energy.bank_writes} bank writes "
                    f"but the arbiter granted {sm.arbiter.write_grants}"
                )
        if sm.scoreboard.total_pending() != 0:
            raise InvariantViolation(
                f"{sm.scoreboard.total_pending()} scoreboard entries "
                "still pending after drain"
            )
        if sm._inflight:
            raise InvariantViolation(
                f"{len(sm._inflight)} ops still in flight after drain"
            )
        if sm.regfile.allocated_slots or sm.regfile.compressed_slots:
            raise InvariantViolation(
                f"register file not drained: {sm.regfile.allocated_slots} "
                f"allocated / {sm.regfile.compressed_slots} compressed "
                "slots remain"
            )
        occupancy = sm.regfile.check_consistency(self.indicator_exact)
        if sm.gating is not None:
            sm.gating.check_consistency(occupancy)


__all__ = [
    "CodecMismatch",
    "InvariantChecker",
    "InvariantViolation",
    "check_decision",
    "crosscheck_register",
]

"""``python -m repro.verify`` — alias for the ``repro`` CLI."""

import sys

from repro.verify.cli import main

sys.exit(main())

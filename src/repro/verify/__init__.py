"""Verification subsystem: invariants, differential oracle, kernel fuzzer.

Three layers of defence against simulator drift (see DESIGN.md §"The
verification subsystem"):

* :mod:`repro.verify.invariants` — runtime conservation checks threaded
  through the cycle-level pipeline, controlled by
  ``GPUConfig.verify_level``.
* :mod:`repro.verify.oracle` — runs a kernel through both the functional
  runner and the cycle-level SM and asserts bit-identical final memory,
  cross-checking the fast codec against the byte-level BDI reference on
  every written warp register.
* :mod:`repro.verify.generator` / :mod:`repro.verify.fuzz` — a seeded
  random kernel generator over the builder DSL plus a fuzz loop that
  shrinks failures to minimal replayable artifacts.

Submodules are resolved lazily: ``repro.gpu.sm`` imports the invariant
layer while the oracle imports ``repro.gpu``, so eagerly importing
everything here would create a cycle.
"""

from __future__ import annotations

import importlib

_SUBMODULES = ("cli", "fuzz", "generator", "invariants", "oracle")

_LAZY_ATTRS = {
    "CodecMismatch": "invariants",
    "InvariantChecker": "invariants",
    "InvariantViolation": "invariants",
    "check_decision": "invariants",
    "crosscheck_register": "invariants",
    "DifferentialMismatch": "oracle",
    "CheckedPolicy": "oracle",
    "run_differential": "oracle",
    "verify_benchmark": "oracle",
    "GenSpec": "generator",
    "KernelGenerator": "generator",
    "FuzzFailure": "fuzz",
    "FuzzReport": "fuzz",
    "fuzz_many": "fuzz",
    "replay_artifact": "fuzz",
    "shrink": "fuzz",
}

__all__ = sorted({*_SUBMODULES, *_LAZY_ATTRS})


def __getattr__(name: str):
    if name in _SUBMODULES:
        return importlib.import_module(f"{__name__}.{name}")
    if name in _LAZY_ATTRS:
        module = importlib.import_module(f"{__name__}.{_LAZY_ATTRS[name]}")
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return __all__

"""Differential oracle: functional runner vs cycle-level SM.

Runs one launch through both execution engines on independently-built
global memory images and demands the final memory state be bit-identical.
Generated fuzz kernels spill every architectural register to memory in
their epilogue, so the comparison covers final register state too; for
built-in benchmarks the benchmark's own ``verify`` reference check runs
on top.

Both engines execute with :class:`CheckedPolicy`, which cross-checks the
fast vectorised ``choose_mode`` codec against the byte-level BDI
reference on every written warp register, and the cycle-level run uses
``verify_level=2`` so the exhaustive pipeline invariants are scanned
every cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.policy import CompressionPolicy, make_policy
from repro.gpu.config import GPUConfig
from repro.gpu.functional import FunctionalRunner
from repro.gpu.gpu import GPU
from repro.gpu.launch import LaunchSpec
from repro.verify.invariants import InvariantViolation, crosscheck_register


class DifferentialMismatch(InvariantViolation):
    """The two execution engines disagreed on final memory state."""


class CheckedPolicy(CompressionPolicy):
    """Wraps any policy, cross-checking the codec on every decision.

    Both engines funnel every register write through
    ``policy.decide(values, divergent)``, so wrapping the policy is the
    one place that sees every written warp-register value in either
    engine.  Each call runs :func:`crosscheck_register` (choose_mode vs
    byte-level BDI, encode/decode round-trips) before delegating.
    """

    def __init__(self, inner: CompressionPolicy):
        self.inner = inner
        self.name = inner.name
        self.requires_mov_on_divergent_write = (
            inner.requires_mov_on_divergent_write
        )
        self.enabled = inner.enabled
        self.indicator_exact = inner.indicator_exact
        self.checked_writes = 0

    def decide(self, values: np.ndarray, divergent: bool):
        crosscheck_register(values)
        self.checked_writes += 1
        return self.inner.decide(values, divergent)

    def reset(self) -> None:
        self.inner.reset()


@dataclass(frozen=True)
class OracleOutcome:
    """Successful differential run — agreement plus check volumes."""

    kernel: str
    policy: str
    cycles: int
    functional_writes_checked: int
    cycle_writes_checked: int
    invariant_commits: int
    invariant_ticks: int
    buffers_compared: int


def compare_memory(
    expected: dict[str, np.ndarray],
    actual: dict[str, np.ndarray],
    context: str,
) -> int:
    """Bit-exact comparison of two memory snapshots; returns buffer count."""
    if expected.keys() != actual.keys():
        raise DifferentialMismatch(
            f"{context}: buffer sets differ: {sorted(expected)} vs "
            f"{sorted(actual)}"
        )
    for name in expected:
        e, a = expected[name], actual[name]
        if e.shape != a.shape:
            raise DifferentialMismatch(
                f"{context}: buffer {name!r} shapes differ: "
                f"{e.shape} vs {a.shape}"
            )
        if not np.array_equal(e, a):
            diff = np.flatnonzero(e != a)
            first = int(diff[0])
            raise DifferentialMismatch(
                f"{context}: buffer {name!r} differs at {len(diff)} of "
                f"{e.size} words; first at word {first}: functional "
                f"{e[first]:#010x} vs cycle-level {a[first]:#010x}"
            )
    return len(expected)


def run_differential(
    launch: LaunchSpec,
    policy: str | CompressionPolicy = "warped",
    config: GPUConfig | None = None,
    verify_level: int = 2,
) -> OracleOutcome:
    """Run ``launch`` through both engines; raise on any disagreement.

    Returns an :class:`OracleOutcome` summarising how much checking
    actually happened (useful to assert the oracle is not vacuous).
    """
    outcome, _ = _run_both(launch, policy, config, verify_level)
    return outcome


def _run_both(
    launch: LaunchSpec,
    policy: str | CompressionPolicy,
    config: GPUConfig | None,
    verify_level: int,
):
    base = config or GPUConfig()
    base = base.with_overrides(verify_level=verify_level)

    def wrap(p):
        return CheckedPolicy(make_policy(p) if isinstance(p, str) else p)

    if isinstance(policy, str):
        func_policy, cycle_policy = wrap(policy), wrap(policy)
    else:
        # A policy instance cannot be safely shared across engines (it
        # may carry counters), but decisions must match: reuse the same
        # inner policy sequentially — the functional run completes before
        # the cycle-level run starts.
        func_policy = cycle_policy = wrap(policy)

    gmem_func = launch.fresh_memory()
    runner = FunctionalRunner(policy=func_policy)
    runner.run(
        launch.kernel,
        launch.grid_dim,
        launch.cta_dim,
        launch.params,
        gmem_func,
    )

    gmem_cycle = launch.fresh_memory()
    gpu = GPU(config=base, policy=cycle_policy)
    result = gpu.run(
        launch.kernel,
        launch.grid_dim,
        launch.cta_dim,
        launch.params,
        gmem_cycle,
    )

    nbuffers = compare_memory(
        gmem_func.snapshot(),
        gmem_cycle.snapshot(),
        f"kernel {launch.kernel.name!r} policy {func_policy.name!r}",
    )
    commits = sum(
        sm.checker.commits_checked
        for sm in gpu.last_sms
        if sm.checker is not None
    )
    ticks = sum(
        sm.checker.ticks_checked
        for sm in gpu.last_sms
        if sm.checker is not None
    )
    outcome = OracleOutcome(
        kernel=launch.kernel.name,
        policy=func_policy.name,
        cycles=result.cycles,
        functional_writes_checked=func_policy.checked_writes,
        cycle_writes_checked=cycle_policy.checked_writes,
        invariant_commits=commits,
        invariant_ticks=ticks,
        buffers_compared=nbuffers,
    )
    return outcome, gmem_cycle


def verify_benchmark(
    bench,
    scale: str = "small",
    policy: str | CompressionPolicy = "warped",
    config: GPUConfig | None = None,
    verify_level: int = 2,
) -> OracleOutcome:
    """Differential-check one built-in benchmark at ``scale``.

    Additionally replays the cycle-level memory image through the
    benchmark's own reference ``verify`` so all three implementations
    (reference CPU, functional, cycle-level) must agree.
    """
    spec = bench.launch(scale)
    outcome, gmem_cycle = _run_both(spec, policy, config, verify_level)
    bench.verify(gmem_cycle, spec)
    return outcome


__all__ = [
    "CheckedPolicy",
    "DifferentialMismatch",
    "OracleOutcome",
    "compare_memory",
    "run_differential",
    "verify_benchmark",
]

"""Fast-path equivalence: cycle skipping + memoization change nothing.

The simulator's fast path (``GPUConfig.fast_path`` event-driven cycle
skipping, plus the content-keyed codec memo cache of
:mod:`repro.core.memo`) is only admissible because it is *bit-identical*
to brute-force cycle-by-cycle execution.  This module enforces that end
to end: one launch is run twice —

* **fast**: ``fast_path=True`` with the codec memo cache enabled (the
  production configuration), and
* **slow**: ``fast_path=False`` with the memo cache disabled (every
  cycle ticked, every register image re-encoded from scratch)

— and every observable output is compared bit-for-bit: final global
memory, cycle count, timing counters, value-similarity statistics, the
energy event model and priced breakdown, per-bank gating fractions, and
(when sampling is on) the full interval timeline, row by row.

Any disagreement raises :class:`FastPathMismatch` naming the first
diverging field, which turns a silent performance-hack bug into a loud
test failure.  The equivalence suite in ``tests/test_fastpath.py`` runs
this over every registry kernel and a batch of fuzz-generated kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core.memo import memo_disabled
from repro.core.policy import CompressionPolicy
from repro.gpu.config import GPUConfig
from repro.gpu.gpu import GPU, SimulationResult
from repro.gpu.launch import LaunchSpec
from repro.verify.invariants import InvariantViolation


class FastPathMismatch(InvariantViolation):
    """Fast-path-on and fast-path-off runs disagreed on an output."""


@dataclass(frozen=True)
class FastPathOutcome:
    """Successful equivalence check, with the measured wall-clock gain."""

    kernel: str
    policy: str
    cycles: int
    fast_seconds: float
    slow_seconds: float
    fields_compared: int

    @property
    def speedup(self) -> float:
        """Slow over fast wall-clock ratio (>1 means the fast path won)."""
        if self.fast_seconds <= 0:
            return float("inf")
        return self.slow_seconds / self.fast_seconds


_MEMO_DIAGNOSTIC_PREFIXES = ("codec.memo_",)
#: Batched-dispatch observability series: the batched-off reference run
#: never gathers, so these differ by design, like the memo diagnostics.
_BATCH_DIAGNOSTIC_PREFIXES = _MEMO_DIAGNOSTIC_PREFIXES + (
    "sm.batch_",
    "sm.opcode_group_",
)


def _timeline_fields(
    timeline, exclude_prefixes: tuple[str, ...] = _MEMO_DIAGNOSTIC_PREFIXES
) -> dict | None:
    """Timeline rows minus self-diagnostics of the layer under test.

    ``codec.memo_*`` tracks observe the memoization layer itself — the
    slow run deliberately disables it, so those series differ by design
    and say nothing about simulation fidelity.  The batched comparer
    additionally drops the ``sm.batch_*`` / ``sm.opcode_group_*``
    series for the same reason.
    """
    if timeline is None:
        return None
    data = timeline.to_dict()
    for section in ("series", "kinds"):
        if isinstance(data.get(section), dict):
            data[section] = {
                k: v
                for k, v in data[section].items()
                if not k.startswith(exclude_prefixes)
            }
    return data


def _result_fields(
    result: SimulationResult,
    exclude_prefixes: tuple[str, ...] = _MEMO_DIAGNOSTIC_PREFIXES,
) -> dict:
    """Every comparable output of one run, as a JSON-ish nested dict."""
    stats = result.stats
    return {
        "cycles": result.cycles,
        "value": stats.value.to_dict(),
        "timing": stats.timing.to_dict() if stats.timing else None,
        "energy": (
            stats.energy_breakdown.to_dict() if stats.energy_breakdown else None
        ),
        "energy_model": (
            stats.energy_model.to_dict() if stats.energy_model else None
        ),
        "gated_fractions": (
            list(stats.gated_fractions)
            if stats.gated_fractions is not None
            else None
        ),
        "timeline": _timeline_fields(stats.timeline, exclude_prefixes),
    }


def _diff_path(fast, slow, path: str, diffs: list[str]) -> int:
    """Recursively compare two nested values; returns leaves compared."""
    if isinstance(fast, dict) and isinstance(slow, dict):
        count = 0
        for key in sorted(set(fast) | set(slow)):
            if key not in fast or key not in slow:
                diffs.append(f"{path}.{key}: present in only one run")
                continue
            count += _diff_path(fast[key], slow[key], f"{path}.{key}", diffs)
        return count
    if isinstance(fast, (list, tuple)) and isinstance(slow, (list, tuple)):
        if len(fast) != len(slow):
            diffs.append(f"{path}: length {len(fast)} vs {len(slow)}")
            return 1
        count = 0
        for i, (f, s) in enumerate(zip(fast, slow)):
            count += _diff_path(f, s, f"{path}[{i}]", diffs)
        return count
    if isinstance(fast, float) and isinstance(slow, float):
        # Bit-identical floats, with NaN == NaN (dormant statistics).
        same = fast == slow or (math.isnan(fast) and math.isnan(slow))
        if not same:
            diffs.append(f"{path}: {fast!r} vs {slow!r}")
        return 1
    if fast != slow:
        diffs.append(f"{path}: {fast!r} vs {slow!r}")
    return 1


def _compare_memory(fast: dict, slow: dict, context: str) -> None:
    if fast.keys() != slow.keys():
        raise FastPathMismatch(
            f"{context}: buffer sets differ: {sorted(fast)} vs {sorted(slow)}"
        )
    for name in fast:
        if not np.array_equal(fast[name], slow[name]):
            diff = np.flatnonzero(fast[name] != slow[name])
            raise FastPathMismatch(
                f"{context}: buffer {name!r} differs at {len(diff)} of "
                f"{fast[name].size} words (first at word {int(diff[0])})"
            )


def _run_once(
    launch: LaunchSpec,
    policy: str | CompressionPolicy,
    config: GPUConfig,
    max_cycles: int,
) -> tuple[SimulationResult, dict, float]:
    gmem = launch.fresh_memory()
    gpu = GPU(config=config, policy=policy, max_cycles=max_cycles)
    start = perf_counter()
    result = gpu.run(
        launch.kernel, launch.grid_dim, launch.cta_dim, launch.params, gmem
    )
    elapsed = perf_counter() - start
    return result, gmem.snapshot(), elapsed


def verify_launch_fastpath(
    launch: LaunchSpec,
    policy: str | CompressionPolicy = "warped",
    config: GPUConfig | None = None,
    max_cycles: int = 20_000_000,
) -> FastPathOutcome:
    """Assert fast-on == fast-off for one launch; raise on any difference.

    The supplied ``config`` (minus ``fast_path``) is used for both runs;
    string policies are re-instantiated per run so no counter state leaks
    across.  Policy *instances* cannot be shared between two runs, so
    pass the spec string for anything stateful.
    """
    base = config or GPUConfig()
    context = f"kernel {launch.kernel.name!r}"

    fast_result, fast_mem, fast_secs = _run_once(
        launch, policy, base.with_overrides(fast_path=True), max_cycles
    )
    with memo_disabled():
        slow_result, slow_mem, slow_secs = _run_once(
            launch, policy, base.with_overrides(fast_path=False), max_cycles
        )

    _compare_memory(fast_mem, slow_mem, context)
    diffs: list[str] = []
    compared = _diff_path(
        _result_fields(fast_result), _result_fields(slow_result), "run", diffs
    )
    if diffs:
        shown = "; ".join(diffs[:5])
        raise FastPathMismatch(
            f"{context}: fast path diverges in {len(diffs)} field(s): {shown}"
        )
    return FastPathOutcome(
        kernel=launch.kernel.name,
        policy=fast_result.stats.policy,
        cycles=fast_result.cycles,
        fast_seconds=fast_secs,
        slow_seconds=slow_secs,
        fields_compared=compared,
    )


def verify_benchmark_fastpath(
    name: str,
    scale: str = "small",
    policy: str | CompressionPolicy = "warped",
    config: GPUConfig | None = None,
) -> FastPathOutcome:
    """Fast-path equivalence for one registry benchmark at ``scale``."""
    from repro.kernels.suite import get_benchmark

    return verify_launch_fastpath(
        get_benchmark(name).launch(scale), policy, config
    )


def verify_launch_batched(
    launch: LaunchSpec,
    policy: str | CompressionPolicy = "warped",
    config: GPUConfig | None = None,
    max_cycles: int = 20_000_000,
) -> FastPathOutcome:
    """Assert batched-on == batched-off for one launch.

    Both runs keep ``fast_path=True`` and the memo cache enabled, so the
    *only* varied ingredient is the cross-warp batched dispatch of
    :mod:`repro.gpu.batch` — any cycle, stats, energy, gating, timeline
    or memory divergence is attributable to it alone.  The batching
    observability series (``sm.batch_*``, ``sm.opcode_group_*``) and the
    memo diagnostics are excluded from the timeline comparison: the
    reference run never gathers, so they differ by design.
    """
    base = config or GPUConfig()
    context = f"kernel {launch.kernel.name!r} (batched)"

    on_result, on_mem, on_secs = _run_once(
        launch, policy, base.with_overrides(batched=True), max_cycles
    )
    off_result, off_mem, off_secs = _run_once(
        launch, policy, base.with_overrides(batched=False), max_cycles
    )

    _compare_memory(on_mem, off_mem, context)
    diffs: list[str] = []
    compared = _diff_path(
        _result_fields(on_result, _BATCH_DIAGNOSTIC_PREFIXES),
        _result_fields(off_result, _BATCH_DIAGNOSTIC_PREFIXES),
        "run",
        diffs,
    )
    if diffs:
        shown = "; ".join(diffs[:5])
        raise FastPathMismatch(
            f"{context}: batched dispatch diverges in "
            f"{len(diffs)} field(s): {shown}"
        )
    return FastPathOutcome(
        kernel=launch.kernel.name,
        policy=on_result.stats.policy,
        cycles=on_result.cycles,
        fast_seconds=on_secs,
        slow_seconds=off_secs,
        fields_compared=compared,
    )


def verify_benchmark_batched(
    name: str,
    scale: str = "small",
    policy: str | CompressionPolicy = "warped",
    config: GPUConfig | None = None,
) -> FastPathOutcome:
    """Batched-dispatch equivalence for one registry benchmark."""
    from repro.kernels.suite import get_benchmark

    return verify_launch_batched(
        get_benchmark(name).launch(scale), policy, config
    )


__all__ = [
    "FastPathMismatch",
    "FastPathOutcome",
    "verify_benchmark_batched",
    "verify_benchmark_fastpath",
    "verify_launch_batched",
    "verify_launch_fastpath",
]

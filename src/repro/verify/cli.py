"""``repro`` CLI — verification and observability entry point.

Examples::

    repro verify --seeds 200              # fuzz sweep + built-in suite
    repro verify --seeds 50 --no-suite    # generated kernels only
    repro verify --start-seed 1000 --seeds 500
    repro verify --replay .repro-cache/verify/fail-42-0123456789ab.json
    repro trace vecadd --timeline out.json   # Perfetto-loadable timeline
    repro profile vecadd --limit 15          # host-side hot-spot table
    repro bench --quick                      # simulator perf smoke test
    repro bench --output BENCH_simulator.json  # full perf-regression bench
    repro serve --port 8642 --workers 4      # simulation-as-a-service
    repro loadgen --requests 50 --out load.json  # drive a live server
    repro cluster coordinator --port 8650    # distributed sweep control
    repro cluster worker --coordinator 127.0.0.1:8650
    repro cluster run fig09 --coordinator 127.0.0.1:8650
    repro cache stats                        # cache size/entry report
    repro cache gc --max-age 7d --max-bytes 2G
    repro cache fsck                         # quarantine corrupt entries

Exit status is non-zero on any functional-vs-cycle mismatch,
codec-vs-BDI mismatch, pipeline invariant violation, or (for ``trace``)
a trace export that fails the Chrome-trace schema check.  ``bench``
regressions only warn by default; ``--strict`` (used by the tier-2 perf
job) turns cycle drift or a >20% per-kernel speedup regression into a
non-zero exit.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.verify import fuzz as fuzz_mod
from repro.verify.oracle import verify_benchmark


def _verify_suite(policies: list[str], quiet: bool) -> list[str]:
    """Differential-check every built-in benchmark; returns failures."""
    from repro.kernels.suite import benchmark_names, iter_benchmarks

    names = benchmark_names() + benchmark_names(extended=True)
    failures = []
    for bench in iter_benchmarks(names):
        for policy in policies:
            start = time.time()
            try:
                outcome = verify_benchmark(bench, policy=policy)
            except Exception as exc:  # noqa: BLE001 - report, keep going
                failures.append(
                    f"{bench.name} [{policy}]: {type(exc).__name__}: {exc}"
                )
                print(f"  {bench.name} [{policy}]: FAIL ({exc})")
                continue
            if not quiet:
                print(
                    f"  {bench.name} [{policy}]: ok — {outcome.cycles} "
                    f"cycles, {outcome.cycle_writes_checked} writes "
                    f"checked ({time.time() - start:.1f}s)"
                )
    return failures


def _cmd_trace(args) -> int:
    """Run one kernel with full sampling + tracing; export Chrome JSON."""
    import json

    from repro.analysis.timeline import timeline_summary
    from repro.gpu.config import GPUConfig
    from repro.gpu.launch import run_kernel
    from repro.kernels import get_benchmark
    from repro.obs.tracer import EventTracer, validate_chrome_trace

    bench = get_benchmark(args.benchmark)
    spec = bench.launch(args.scale)
    gmem = spec.fresh_memory()
    config = GPUConfig(sample_interval=args.interval)
    tracer = EventTracer(capacity=args.capacity)
    sim = run_kernel(
        spec.kernel,
        spec.grid_dim,
        spec.cta_dim,
        spec.params,
        gmem,
        config=config,
        policy=args.policy,
        tracer=tracer,
    )
    payload = tracer.export()
    problems = validate_chrome_trace(payload)
    with open(args.timeline, "w") as fh:
        json.dump(payload, fh)
    print(
        f"wrote {args.timeline}: {len(payload['traceEvents'])} events "
        f"({tracer.dropped} dropped) over {sim.cycles} cycles "
        f"[{args.benchmark}, {args.policy}] — load in ui.perfetto.dev or "
        "chrome://tracing"
    )
    if sim.stats.timeline is not None:
        print(timeline_summary(sim.stats.timeline))
    for problem in problems:
        print(f"  schema problem: {problem}")
    return 1 if problems else 0


def _cmd_profile(args) -> int:
    """cProfile one kernel simulation; print a sorted hot-spot table."""
    import cProfile
    import io
    import pstats

    from repro.gpu.config import GPUConfig
    from repro.gpu.launch import run_kernel
    from repro.kernels import get_benchmark

    bench = get_benchmark(args.benchmark)
    spec = bench.launch(args.scale)
    gmem = spec.fresh_memory()
    config = GPUConfig()
    profile = cProfile.Profile()
    profile.enable()
    sim = run_kernel(
        spec.kernel,
        spec.grid_dim,
        spec.cta_dim,
        spec.params,
        gmem,
        config=config,
        policy=args.policy,
    )
    profile.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profile, stream=buffer)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    print(
        f"profiled {args.benchmark} [{args.policy}]: {sim.cycles} "
        f"simulated cycles"
    )
    print(buffer.getvalue().rstrip())
    return 0


def _cmd_bench(args) -> int:
    """Time the simulator fast vs slow; emit/compare BENCH_simulator.json."""
    import json
    import os

    from repro.harness.bench import DEFAULT_TOLERANCE, compare_reports, run_bench

    baseline = None
    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(args.output):
        # Re-benching over a committed baseline: compare before overwriting.
        baseline_path = args.output
    if baseline_path is not None and os.path.exists(baseline_path):
        with open(baseline_path) as fh:
            baseline = json.load(fh)

    report = run_bench(
        names=args.kernels or None,
        scale=args.scale,
        policy=args.policy,
        repeats=args.repeats,
        quick=args.quick,
        progress=None if args.quiet else lambda msg: print(f"  {msg}"),
    )
    print(report.render())
    data = report.to_dict()
    if baseline is not None and "reference" in baseline:
        # Keep the one-time provenance entries (e.g. the pre-fast-path
        # seed measurement) when refreshing a baseline in place, but let
        # this run's own environment block win: the whole point of
        # recording numpy/thread-env is describing the machine that
        # produced *these* wall-clock numbers.
        merged = dict(baseline["reference"])
        merged.update(data.get("reference", {}))
        data["reference"] = merged
    with open(args.output, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if baseline is None:
        print("no baseline to compare against")
        return 0
    warnings = compare_reports(data, baseline, tolerance=DEFAULT_TOLERANCE)
    if not warnings:
        print(f"no regressions vs {baseline_path}")
        return 0
    for warning in warnings:
        print(f"  PERF WARNING: {warning}")
    return 1 if (args.strict or args.fail_on_regression) else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit verification commands",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    verify = sub.add_parser(
        "verify",
        help="differential oracle + invariant fuzzing",
        description="Cross-check the functional and cycle-level engines "
        "on randomly generated kernels and the built-in benchmark suite.",
    )
    verify.add_argument(
        "--seeds",
        type=int,
        default=200,
        metavar="N",
        help="number of generated kernels to check (default 200)",
    )
    verify.add_argument(
        "--start-seed",
        type=int,
        default=0,
        metavar="S",
        help="first seed of the sweep (default 0)",
    )
    verify.add_argument(
        "--no-suite",
        action="store_true",
        help="skip the built-in benchmark suite pass",
    )
    verify.add_argument(
        "--suite-policies",
        nargs="+",
        default=["warped"],
        metavar="POLICY",
        help="policies for the suite pass (default: warped)",
    )
    verify.add_argument(
        "--no-shrink",
        action="store_true",
        help="dump failing seeds without minimising them first",
    )
    verify.add_argument(
        "--artifact-dir",
        metavar="DIR",
        help="root for failure artifacts (default: the sim cache dir; "
        "artifacts land in <root>/verify/)",
    )
    verify.add_argument(
        "--replay",
        metavar="ARTIFACT",
        help="re-run one dumped failure artifact and exit",
    )
    verify.add_argument(
        "--quiet", action="store_true", help="suppress per-kernel progress"
    )

    trace = sub.add_parser(
        "trace",
        help="export a Chrome-trace / Perfetto timeline of one kernel",
        description="Run one benchmark kernel cycle-accurately with full "
        "interval sampling and event tracing, write the Chrome "
        "trace-event JSON, and print per-series sparklines.",
    )
    trace.add_argument("benchmark", help="benchmark name (see --list)")
    trace.add_argument(
        "--timeline",
        required=True,
        metavar="FILE",
        help="output path for the Chrome trace-event JSON",
    )
    trace.add_argument(
        "--scale",
        choices=("small", "default"),
        default="small",
        help="workload scale (default: small — traces grow fast)",
    )
    trace.add_argument(
        "--policy", default="warped", help="compression policy (default: warped)"
    )
    trace.add_argument(
        "--interval",
        type=int,
        default=64,
        metavar="N",
        help="counter-sampling period in cycles (default 64)",
    )
    trace.add_argument(
        "--capacity",
        type=int,
        default=200_000,
        metavar="N",
        help="event ring-buffer capacity (oldest events drop beyond it)",
    )

    profile = sub.add_parser(
        "profile",
        help="host-side cProfile hot-spot table for one kernel",
        description="Simulate one benchmark under cProfile and print the "
        "hottest simulator functions.",
    )
    profile.add_argument("benchmark", help="benchmark name")
    profile.add_argument(
        "--scale", choices=("small", "default"), default="small"
    )
    profile.add_argument("--policy", default="warped")
    profile.add_argument(
        "--limit",
        type=int,
        default=20,
        metavar="N",
        help="rows of the hot-spot table (default 20)",
    )
    profile.add_argument(
        "--sort",
        default="cumulative",
        choices=("cumulative", "tottime", "calls"),
        help="pstats sort key (default: cumulative)",
    )

    bench = sub.add_parser(
        "bench",
        help="simulator perf-regression bench (fast path vs reference)",
        description="Time every registry kernel with the production fast "
        "path (cycle skipping + codec memo) and with it disabled, write "
        "BENCH_simulator.json, and warn when machine-independent signals "
        "(per-kernel speedup ratio, simulated cycle counts) regress "
        "against a baseline.",
    )
    bench.add_argument(
        "--output",
        "-o",
        default="BENCH_simulator.json",
        metavar="FILE",
        help="output JSON path (default: BENCH_simulator.json)",
    )
    bench.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline JSON to compare against (default: the output path, "
        "when it already exists)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: four representative kernels, one repetition",
    )
    bench.add_argument(
        "--kernels",
        nargs="+",
        metavar="NAME",
        help="explicit kernel subset (default: full registry suite)",
    )
    bench.add_argument(
        "--scale", choices=("small", "default"), default="small"
    )
    bench.add_argument("--policy", default="warped")
    bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="repetitions per kernel, best-of (default 3; --quick forces 1)",
    )
    bench.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any per-kernel cycle count drifts or a "
        "speedup regresses >20%% against the baseline (default: warn "
        "only)",
    )
    bench.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="legacy alias for --strict",
    )
    bench.add_argument(
        "--quiet", action="store_true", help="suppress per-kernel progress"
    )

    # The serving stack registers its own subcommands (serve, loadgen),
    # as do the cluster stack and the cache-maintenance tools.
    from repro.cluster.cli import add_cluster_parser
    from repro.serve.cli import add_loadgen_parser, add_serve_parser
    from repro.sim.maintenance import add_cache_parser

    add_serve_parser(sub)
    add_loadgen_parser(sub)
    add_cluster_parser(sub)
    add_cache_parser(sub)

    args = parser.parse_args(argv)

    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        from repro.obs.log import configure_logging

        from repro.serve.cli import cmd_serve

        configure_logging("info")
        return cmd_serve(args)
    if args.command == "loadgen":
        from repro.serve.cli import cmd_loadgen

        return cmd_loadgen(args)
    if args.command == "cluster":
        from repro.obs.log import configure_logging

        from repro.cluster.cli import cmd_cluster

        configure_logging("info")
        return cmd_cluster(args)
    if args.command == "cache":
        from repro.sim.maintenance import cmd_cache

        return cmd_cache(args)

    if args.replay:
        try:
            fuzz_mod.replay_artifact(args.replay)
        except Exception as exc:  # noqa: BLE001 - the reproducer output
            print(f"replay still fails: {type(exc).__name__}: {exc}")
            return 1
        print("replay passed — the recorded failure no longer reproduces")
        return 0

    start = time.time()
    seeds = range(args.start_seed, args.start_seed + args.seeds)
    progress = None if args.quiet else lambda msg: print(f"  {msg}")
    print(f"fuzzing {args.seeds} generated kernels (seeds {seeds.start}..."
          f"{seeds.stop - 1}) ...")
    report = fuzz_mod.fuzz_many(
        seeds,
        artifact_root=args.artifact_dir,
        do_shrink=not args.no_shrink,
        progress=progress,
    )
    print(
        f"generated kernels: {report.seeds_run} checked, "
        f"{len(report.failures)} failed ({time.time() - start:.1f}s)"
    )
    for failure in report.failures:
        print(f"  seed {failure.seed}: {failure.error}")
        print(f"    reproducer: {failure.artifact_path}")
        print(
            "    replay with: repro verify --replay "
            f"{failure.artifact_path}"
        )

    suite_failures: list[str] = []
    if not args.no_suite:
        print(f"built-in suite ({', '.join(args.suite_policies)}) ...")
        suite_failures = _verify_suite(args.suite_policies, args.quiet)
        print(
            f"built-in suite: {len(suite_failures)} failures "
            f"({time.time() - start:.1f}s total)"
        )

    if report.failures or suite_failures:
        return 1
    print("verification passed: engines agree, codec matches BDI, "
          "all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

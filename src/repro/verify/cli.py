"""``repro`` CLI — verification entry point.

Examples::

    repro verify --seeds 200              # fuzz sweep + built-in suite
    repro verify --seeds 50 --no-suite    # generated kernels only
    repro verify --start-seed 1000 --seeds 500
    repro verify --replay .repro-cache/verify/fail-42-0123456789ab.json

Exit status is non-zero on any functional-vs-cycle mismatch,
codec-vs-BDI mismatch, or pipeline invariant violation.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.verify import fuzz as fuzz_mod
from repro.verify.oracle import verify_benchmark


def _verify_suite(policies: list[str], quiet: bool) -> list[str]:
    """Differential-check every built-in benchmark; returns failures."""
    from repro.kernels.suite import benchmark_names, iter_benchmarks

    names = benchmark_names() + benchmark_names(extended=True)
    failures = []
    for bench in iter_benchmarks(names):
        for policy in policies:
            start = time.time()
            try:
                outcome = verify_benchmark(bench, policy=policy)
            except Exception as exc:  # noqa: BLE001 - report, keep going
                failures.append(
                    f"{bench.name} [{policy}]: {type(exc).__name__}: {exc}"
                )
                print(f"  {bench.name} [{policy}]: FAIL ({exc})")
                continue
            if not quiet:
                print(
                    f"  {bench.name} [{policy}]: ok — {outcome.cycles} "
                    f"cycles, {outcome.cycle_writes_checked} writes "
                    f"checked ({time.time() - start:.1f}s)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit verification commands",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    verify = sub.add_parser(
        "verify",
        help="differential oracle + invariant fuzzing",
        description="Cross-check the functional and cycle-level engines "
        "on randomly generated kernels and the built-in benchmark suite.",
    )
    verify.add_argument(
        "--seeds",
        type=int,
        default=200,
        metavar="N",
        help="number of generated kernels to check (default 200)",
    )
    verify.add_argument(
        "--start-seed",
        type=int,
        default=0,
        metavar="S",
        help="first seed of the sweep (default 0)",
    )
    verify.add_argument(
        "--no-suite",
        action="store_true",
        help="skip the built-in benchmark suite pass",
    )
    verify.add_argument(
        "--suite-policies",
        nargs="+",
        default=["warped"],
        metavar="POLICY",
        help="policies for the suite pass (default: warped)",
    )
    verify.add_argument(
        "--no-shrink",
        action="store_true",
        help="dump failing seeds without minimising them first",
    )
    verify.add_argument(
        "--artifact-dir",
        metavar="DIR",
        help="root for failure artifacts (default: the sim cache dir; "
        "artifacts land in <root>/verify/)",
    )
    verify.add_argument(
        "--replay",
        metavar="ARTIFACT",
        help="re-run one dumped failure artifact and exit",
    )
    verify.add_argument(
        "--quiet", action="store_true", help="suppress per-kernel progress"
    )
    args = parser.parse_args(argv)

    if args.replay:
        try:
            fuzz_mod.replay_artifact(args.replay)
        except Exception as exc:  # noqa: BLE001 - the reproducer output
            print(f"replay still fails: {type(exc).__name__}: {exc}")
            return 1
        print("replay passed — the recorded failure no longer reproduces")
        return 0

    start = time.time()
    seeds = range(args.start_seed, args.start_seed + args.seeds)
    progress = None if args.quiet else lambda msg: print(f"  {msg}")
    print(f"fuzzing {args.seeds} generated kernels (seeds {seeds.start}..."
          f"{seeds.stop - 1}) ...")
    report = fuzz_mod.fuzz_many(
        seeds,
        artifact_root=args.artifact_dir,
        do_shrink=not args.no_shrink,
        progress=progress,
    )
    print(
        f"generated kernels: {report.seeds_run} checked, "
        f"{len(report.failures)} failed ({time.time() - start:.1f}s)"
    )
    for failure in report.failures:
        print(f"  seed {failure.seed}: {failure.error}")
        print(f"    reproducer: {failure.artifact_path}")
        print(
            "    replay with: repro verify --replay "
            f"{failure.artifact_path}"
        )

    suite_failures: list[str] = []
    if not args.no_suite:
        print(f"built-in suite ({', '.join(args.suite_policies)}) ...")
        suite_failures = _verify_suite(args.suite_policies, args.quiet)
        print(
            f"built-in suite: {len(suite_failures)} failures "
            f"({time.time() - start:.1f}s total)"
        )

    if report.failures or suite_failures:
        return 1
    print("verification passed: engines agree, codec matches BDI, "
          "all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

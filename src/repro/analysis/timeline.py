"""Timeline reductions and terminal sparklines.

The interval sampler produces raw per-interval rows; this module turns
them into the quantities a stall investigation actually reads — rates
per cycle, moving averages, peaks — and renders compact one-line
sparklines so a run's temporal shape is visible straight from the
terminal (``repro trace`` prints one per series).
"""

from __future__ import annotations

from repro.obs.timeline import Timeline

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def rates(timeline: Timeline, name: str) -> list[float]:
    """A delta series as per-cycle rates (e.g. ``sm.issued`` → IPC).

    Uses the recorded cycle axis, not the nominal interval, so the
    trailing partial interval stays honest.
    """
    values = timeline.get(name)
    out: list[float] = []
    prev = 0
    for cycle, value in zip(timeline.cycles, values):
        span = cycle - prev
        out.append(value / span if span > 0 else 0.0)
        prev = cycle
    return out


def moving_average(values: list[float], window: int = 4) -> list[float]:
    """Simple trailing moving average (window clipped at the start)."""
    if window <= 0:
        raise ValueError(f"window must be positive: {window}")
    out = []
    acc = 0.0
    for i, v in enumerate(values):
        acc += v
        if i >= window:
            acc -= values[i - window]
        out.append(acc / min(i + 1, window))
    return out


def peak(timeline: Timeline, name: str) -> tuple[int, float]:
    """(cycle, value) of the series' maximum."""
    values = timeline.get(name)
    if not values:
        raise ValueError(f"series {name!r} is empty")
    i = max(range(len(values)), key=values.__getitem__)
    return timeline.cycles[i], values[i]


def sparkline(values: list[float], width: int = 60) -> str:
    """Render values as one line of eighth-block characters.

    Longer series are bucket-averaged down to ``width`` columns; the
    vertical axis spans [0, max] so zero is always the baseline.
    """
    if not values:
        return ""
    if len(values) > width:
        bucket = len(values) / width
        values = [
            _mean(values[int(i * bucket) : max(int((i + 1) * bucket), int(i * bucket) + 1)])
            for i in range(width)
        ]
    top = max(values)
    if top <= 0:
        return _SPARK_BLOCKS[0] * len(values)
    return "".join(
        _SPARK_BLOCKS[
            min(len(_SPARK_BLOCKS) - 1, int(max(0.0, v) / top * (len(_SPARK_BLOCKS) - 1) + 0.5))
        ]
        for v in values
    )


def _mean(chunk: list[float]) -> float:
    return sum(chunk) / len(chunk) if chunk else 0.0


def timeline_summary(timeline: Timeline, width: int = 60) -> str:
    """One sparkline + min/mean/max per series, as a terminal block.

    Delta series are shown as per-cycle rates (their natural reading);
    gauge series as-is.
    """
    if not len(timeline):
        return "(empty timeline)"
    lines = [
        f"timeline: {len(timeline)} samples every "
        f"{timeline.interval} cycles (to cycle {timeline.cycles[-1]})"
    ]
    name_width = max(len(n) for n in timeline.series)
    for name in sorted(timeline.series):
        values = (
            rates(timeline, name)
            if timeline.kinds.get(name) == "delta"
            else timeline.get(name)
        )
        if not values:
            continue
        lines.append(
            f"  {name:<{name_width}} {sparkline(values, width)} "
            f"min {min(values):.3g} mean {_mean(values):.3g} "
            f"max {max(values):.3g}"
        )
    return "\n".join(lines)

"""Terminal bar charts for experiment results.

The paper's figures are bar charts; for terminal workflows the harness
can render any experiment column as horizontal bars so trends are
visible without leaving the shell (``warped-compression fig09 --chart``).
"""

from __future__ import annotations

from repro.analysis.report import ExperimentResult

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, scale: float, width: int) -> str:
    if scale <= 0:
        return ""
    cells = max(0.0, value) / scale * width
    full = int(cells)
    remainder = cells - full
    partial = _BLOCKS[int(remainder * 8)] if full < width else ""
    return "█" * full + partial


def bar_chart(
    labels: list[str],
    values: list[float],
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """Render one horizontal bar per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not labels:
        raise ValueError("nothing to plot")
    scale = max((v for v in values if v is not None), default=0.0)
    label_width = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        if value is None:
            lines.append(f"{label:>{label_width}} │ N/A")
            continue
        bar = _bar(value, scale, width)
        lines.append(f"{label:>{label_width}} │{bar} {value:.3f}{unit}")
    return "\n".join(lines)


def chart_experiment(
    result: ExperimentResult, column: str | None = None, width: int = 40
) -> str:
    """Bar-chart one column of an experiment (default: the last).

    Benchmarks are the bars; the AVERAGE row is kept as the final bar so
    the suite mean is visible at a glance.
    """
    if not result.rows:
        raise ValueError(f"experiment {result.exp_id} has no rows")
    column = column or result.headers[-1]
    idx = result.headers.index(column)
    labels = [str(row[0]) for row in result.rows]
    values = [row[idx] for row in result.rows]
    title = f"{result.exp_id}: {result.title} [{column}]"
    return bar_chart(labels, values, title=title, width=width)

"""Value-similarity characterisation and run statistics.

* :mod:`repro.analysis.similarity` — arithmetic-distance binning of warp
  register writes (paper Section 3, Figure 2) and the exhaustive
  ``<base, delta>`` selection study (Figure 5).
* :mod:`repro.analysis.stats` — counters accumulated during simulation and
  the aggregate result records experiments consume.
* :mod:`repro.analysis.report` — plain-text table rendering for the
  harness.
"""

from repro.analysis.similarity import (
    SimilarityBin,
    best_bdi_choice,
    classify_write,
)
from repro.analysis.stats import RunStats, TimingStats, ValueStats

__all__ = [
    "RunStats",
    "SimilarityBin",
    "TimingStats",
    "ValueStats",
    "best_bdi_choice",
    "classify_write",
]

"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from dataclasses import dataclass, field


def fmt(value, width: int = 8, digits: int = 3) -> str:
    """Format one table cell: floats rounded, None as N/A."""
    if value is None:
        return "N/A".rjust(width)
    if isinstance(value, float):
        return f"{value:.{digits}f}".rjust(width)
    return str(value).rjust(width)


@dataclass
class ExperimentResult:
    """One regenerated table/figure: id, title, and tabular data."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *cells) -> None:
        self.rows.append(list(cells))

    def column(self, name: str) -> list:
        """All values of one column (for assertions in benches/tests)."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def row(self, label: str) -> list:
        """The row whose first cell equals ``label``."""
        for r in self.rows:
            if r[0] == label:
                return r
        raise KeyError(f"no row labelled {label!r} in {self.exp_id}")

    def cell(self, label: str, column: str):
        return self.row(label)[self.headers.index(column)]

    def render(self) -> str:
        """Fixed-width text table."""
        label_width = max(
            [len(str(r[0])) for r in self.rows] + [len(self.headers[0]), 10]
        )
        cell_width = max(
            [len(h) for h in self.headers[1:]] + [9]
        )
        lines = [f"== {self.exp_id}: {self.title} =="]
        header = self.headers[0].ljust(label_width) + "".join(
            h.rjust(cell_width + 1) for h in self.headers[1:]
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            cells = str(row[0]).ljust(label_width) + "".join(
                " " + fmt(c, cell_width) for c in row[1:]
            )
            lines.append(cells)
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

"""Statistics accumulated during simulation.

:class:`ValueStats` gathers every per-write and per-instruction counter
the paper's characterisation and evaluation figures need; it is shared by
the functional runner and the timing SM so the same figures can be
produced from either.  :class:`TimingStats` adds cycle-level counters, and
:class:`RunStats` is the per-run record the harness consumes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.similarity import (
    BDI_BATCH_ORDER,
    SimilarityBin,
    best_bdi_choice,
    best_bdi_choice_indices,
    classify_write,
    classify_write_full,
    classify_writes_batch,
)
from repro.core.banks import BANKS_PER_WARP_REGISTER
from repro.core.codec import MODE_BANKS_BY_ID, MODES_BY_ID, CompressionMode
from repro.core.memo import PROFILE_CACHE

_NONDIV, _DIV = 0, 1


class ValueStats:
    """Value-similarity and compression counters (phase-split).

    Phase index 0 is non-divergent, 1 is divergent, following the paired
    bars of Figures 2, 8 and 12.

    The accumulators are plain Python ints/floats internally: the hot
    recorders fire once per instruction or write, and a list-element
    increment is an order of magnitude cheaper than a numpy scalar one.
    The historical numpy-array attributes (``similarity``, ``writes``,
    ...) survive as properties that materialise a fresh array per read —
    cheap, because readers are end-of-run analysis code.
    """

    def __init__(self, collect_bdi: bool = False):
        self.collect_bdi = collect_bdi
        self._similarity = [0] * 8  # (2 phases x 4 bins), row-major
        self.instructions = 0
        self.divergent_instructions = 0
        self._writes = [0, 0]
        self._achievable_banks = [0, 0]
        self._stored_banks = [0, 0]
        self.mode_histogram: Counter = Counter()
        self.bdi_histogram: Counter = Counter()
        self.movs_injected = 0
        self._occupancy_sum = [0.0, 0.0]
        self._occupancy_samples = [0, 0]

    # ------------------------------------------------------------------
    # Array views (historical public attributes)
    # ------------------------------------------------------------------
    @property
    def similarity(self) -> np.ndarray:
        return np.asarray(self._similarity, dtype=np.int64).reshape(2, 4)

    @similarity.setter
    def similarity(self, value) -> None:
        self._similarity = [int(x) for x in np.asarray(value).ravel()]

    @property
    def writes(self) -> np.ndarray:
        return np.asarray(self._writes, dtype=np.int64)

    @writes.setter
    def writes(self, value) -> None:
        self._writes = [int(x) for x in np.asarray(value).ravel()]

    @property
    def achievable_banks(self) -> np.ndarray:
        return np.asarray(self._achievable_banks, dtype=np.int64)

    @achievable_banks.setter
    def achievable_banks(self, value) -> None:
        self._achievable_banks = [int(x) for x in np.asarray(value).ravel()]

    @property
    def stored_banks(self) -> np.ndarray:
        return np.asarray(self._stored_banks, dtype=np.int64)

    @stored_banks.setter
    def stored_banks(self, value) -> None:
        self._stored_banks = [int(x) for x in np.asarray(value).ravel()]

    @property
    def occupancy_sum(self) -> np.ndarray:
        return np.asarray(self._occupancy_sum, dtype=np.float64)

    @occupancy_sum.setter
    def occupancy_sum(self, value) -> None:
        self._occupancy_sum = [float(x) for x in np.asarray(value).ravel()]

    @property
    def occupancy_samples(self) -> np.ndarray:
        return np.asarray(self._occupancy_samples, dtype=np.int64)

    @occupancy_samples.setter
    def occupancy_samples(self, value) -> None:
        self._occupancy_samples = [int(x) for x in np.asarray(value).ravel()]

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_instruction(self, divergent: bool) -> None:
        self.instructions += 1
        if divergent:
            self.divergent_instructions += 1

    def record_write(
        self,
        values: np.ndarray,
        divergent: bool,
        achievable_mode: CompressionMode,
        stored_banks: int,
        stored_mode: CompressionMode,
    ) -> None:
        """Record one warp-register write.

        ``values`` is the *merged* 32-lane register as stored — during a
        divergent write the masked-off lanes keep their stale values,
        which is exactly what the compressor sees and why the random bin
        grows under divergence (paper Figure 2).
        """
        phase = _DIV if divergent else _NONDIV
        # The characterisation profile (similarity bin, best-BDI choice)
        # is a pure function of the register image, and images recur
        # constantly (the paper's similarity observation) — memoize it
        # in the content-keyed PROFILE_CACHE next to the codec's memo.
        cache = PROFILE_CACHE
        if cache.enabled:
            key = values.tobytes()
            profile = cache.get(key)
            if profile is None:
                profile = [classify_write_full(values), None]
                cache.put(key, profile)
            sim_bin = profile[0]
            if self.collect_bdi:
                if profile[1] is None:
                    profile[1] = best_bdi_choice(values)
                self.bdi_histogram[profile[1]] += 1
        else:
            sim_bin = classify_write(
                values, np.ones(len(values), dtype=bool)
            )
            if self.collect_bdi:
                self.bdi_histogram[best_bdi_choice(values)] += 1
        self._similarity[phase * 4 + sim_bin] += 1
        self._writes[phase] += 1
        self._achievable_banks[phase] += achievable_mode.banks
        self._stored_banks[phase] += stored_banks
        self.mode_histogram[stored_mode] += 1

    def record_write_prepared(
        self,
        divergent: bool,
        sim_bin: int,
        achievable_banks: int,
        stored_banks: int,
        stored_mode: CompressionMode,
    ) -> None:
        """Record one write whose characterisation is precomputed.

        The cross-warp batched issue path (:mod:`repro.gpu.batch`)
        classifies a whole region's writes in one vectorised pass at
        gather time; commit then folds the precomputed similarity bin
        and achievable bank count straight into the counters.
        Bit-identical to :meth:`record_write` for the same write.  Only
        used when BDI collection is off — the batched gather skips the
        per-write best-encoding search, which this path therefore cannot
        account for.
        """
        phase = _DIV if divergent else _NONDIV
        self._similarity[phase * 4 + sim_bin] += 1
        self._writes[phase] += 1
        self._achievable_banks[phase] += achievable_banks
        self._stored_banks[phase] += stored_banks
        self.mode_histogram[stored_mode] += 1

    def record_writes_batch(
        self,
        matrix: np.ndarray,
        divergent: np.ndarray,
        achievable_mode_ids: np.ndarray,
        stored_banks: np.ndarray,
        stored_mode_ids: np.ndarray,
    ) -> None:
        """Record ``n`` warp-register writes from whole-trace arrays.

        The batch analogue of :meth:`record_write`, used by the
        trace-replay tier: ``matrix`` is the ``(n, warp_size)`` merged
        lane images, the remaining arguments are per-row vectors (mode
        arguments as raw indicator ids).  Produces bit-identical
        counters to ``n`` sequential :meth:`record_write` calls.
        """
        n = int(matrix.shape[0])
        if n == 0:
            return
        phases = np.asarray(divergent, dtype=bool).astype(np.int64)
        bins = classify_writes_batch(matrix)
        for i, count in enumerate(np.bincount(phases * 4 + bins, minlength=8)):
            self._similarity[i] += int(count)
        for i, count in enumerate(np.bincount(phases, minlength=2)):
            self._writes[i] += int(count)
        achievable = np.bincount(
            phases, weights=MODE_BANKS_BY_ID[achievable_mode_ids], minlength=2
        ).astype(np.int64)
        stored = np.bincount(
            phases, weights=np.asarray(stored_banks, dtype=np.int64), minlength=2
        ).astype(np.int64)
        for i in range(2):
            self._achievable_banks[i] += int(achievable[i])
            self._stored_banks[i] += int(stored[i])
        mode_counts = np.bincount(
            np.asarray(stored_mode_ids, dtype=np.int64),
            minlength=len(MODES_BY_ID),
        )
        for mode_id, count in enumerate(mode_counts):
            if count:
                self.mode_histogram[MODES_BY_ID[mode_id]] += int(count)
        if self.collect_bdi:
            choice_counts = np.bincount(
                best_bdi_choice_indices(matrix),
                minlength=len(BDI_BATCH_ORDER),
            )
            for idx, count in enumerate(choice_counts):
                if count:
                    self.bdi_histogram[BDI_BATCH_ORDER[idx]] += int(count)

    def record_mov(self) -> None:
        self.movs_injected += 1

    def record_movs(self, count: int) -> None:
        self.movs_injected += int(count)

    def record_occupancy(self, compressed_fraction: float, divergent: bool) -> None:
        phase = _DIV if divergent else _NONDIV
        self._occupancy_sum[phase] += compressed_fraction
        self._occupancy_samples[phase] += 1

    def record_occupancy_batch(
        self, fractions: np.ndarray, divergent: np.ndarray
    ) -> None:
        """Batch :meth:`record_occupancy` over per-write vectors."""
        phases = np.asarray(divergent, dtype=bool).astype(np.int64)
        fractions = np.asarray(fractions, dtype=np.float64)
        sums = np.bincount(phases, weights=fractions, minlength=2)
        counts = np.bincount(phases, minlength=2)
        for i in range(2):
            self._occupancy_sum[i] += float(sums[i])
            self._occupancy_samples[i] += int(counts[i])

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def similarity_fractions(self, divergent: bool) -> dict[SimilarityBin, float]:
        """Figure 2: fraction of writes per bin for one phase."""
        phase = _DIV if divergent else _NONDIV
        row = self._similarity[phase * 4 : phase * 4 + 4]
        total = sum(row)
        if total == 0:
            return {b: 0.0 for b in SimilarityBin}
        return {b: row[b] / total for b in SimilarityBin}

    @property
    def nondivergent_fraction(self) -> float:
        """Figure 3: share of warp instructions that are non-divergent."""
        if self.instructions == 0:
            return 1.0
        return 1.0 - self.divergent_instructions / self.instructions

    def compression_ratio(self, divergent: bool, achievable: bool = True) -> float:
        """Figure 8 (achievable) / Figure 15 (stored) compression ratio.

        Bank-granularity ratio: eight banks per write divided by the banks
        the compressed representations occupy.
        """
        phase = _DIV if divergent else _NONDIV
        banks = (
            self._achievable_banks if achievable else self._stored_banks
        )
        if self._writes[phase] == 0:
            return 1.0
        return (
            BANKS_PER_WARP_REGISTER * self._writes[phase]
        ) / banks[phase]

    def overall_compression_ratio(self, achievable: bool = False) -> float:
        """Ratio over all writes regardless of phase."""
        total_writes = sum(self._writes)
        banks = (
            self._achievable_banks if achievable else self._stored_banks
        )
        if total_writes == 0:
            return 1.0
        return (BANKS_PER_WARP_REGISTER * total_writes) / sum(banks)

    @property
    def mov_fraction(self) -> float:
        """Figure 11: dummy MOVs as a fraction of all instructions."""
        total = self.instructions + self.movs_injected
        return self.movs_injected / total if total else 0.0

    def compressed_register_fraction(self, divergent: bool) -> float | None:
        """Figure 12: mean compressed share of allocated registers.

        ``None`` when the phase never occurred (the paper's "N/A" bars for
        benchmarks that do not diverge).
        """
        phase = _DIV if divergent else _NONDIV
        if self._occupancy_samples[phase] == 0:
            return None
        return self._occupancy_sum[phase] / self._occupancy_samples[phase]

    def bdi_fractions(self) -> dict[str, float]:
        """Figure 5: share of writes best served by each encoding."""
        total = sum(self.bdi_histogram.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in sorted(self.bdi_histogram.items())}

    # ------------------------------------------------------------------
    def merge(self, other: "ValueStats") -> None:
        """Fold another SM's counters into this one."""
        for i, count in enumerate(other._similarity):
            self._similarity[i] += count
        self.instructions += other.instructions
        self.divergent_instructions += other.divergent_instructions
        for i in range(2):
            self._writes[i] += other._writes[i]
            self._achievable_banks[i] += other._achievable_banks[i]
            self._stored_banks[i] += other._stored_banks[i]
            self._occupancy_sum[i] += other._occupancy_sum[i]
            self._occupancy_samples[i] += other._occupancy_samples[i]
        self.mode_histogram.update(other.mode_histogram)
        self.bdi_histogram.update(other.bdi_histogram)
        self.movs_injected += other.movs_injected

    # ------------------------------------------------------------------
    # Serialisation (RunResult artifacts)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless JSON-compatible representation of every counter."""
        return {
            "collect_bdi": self.collect_bdi,
            "similarity": [
                self._similarity[0:4],
                self._similarity[4:8],
            ],
            "instructions": int(self.instructions),
            "divergent_instructions": int(self.divergent_instructions),
            "writes": list(self._writes),
            "achievable_banks": list(self._achievable_banks),
            "stored_banks": list(self._stored_banks),
            "mode_histogram": {
                str(int(mode)): int(count)
                for mode, count in sorted(self.mode_histogram.items())
            },
            "bdi_histogram": {
                str(choice): int(count)
                for choice, count in sorted(self.bdi_histogram.items())
            },
            "movs_injected": int(self.movs_injected),
            "occupancy_sum": list(self._occupancy_sum),
            "occupancy_samples": list(self._occupancy_samples),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ValueStats":
        """Rebuild the exact counters :meth:`to_dict` captured."""
        stats = cls(collect_bdi=bool(data["collect_bdi"]))
        stats.similarity = np.asarray(data["similarity"], dtype=np.int64)
        stats.instructions = int(data["instructions"])
        stats.divergent_instructions = int(data["divergent_instructions"])
        stats.writes = np.asarray(data["writes"], dtype=np.int64)
        stats.achievable_banks = np.asarray(
            data["achievable_banks"], dtype=np.int64
        )
        stats.stored_banks = np.asarray(data["stored_banks"], dtype=np.int64)
        stats.mode_histogram = Counter(
            {
                CompressionMode(int(mode)): int(count)
                for mode, count in data["mode_histogram"].items()
            }
        )
        stats.bdi_histogram = Counter(
            {
                str(choice): int(count)
                for choice, count in data["bdi_histogram"].items()
            }
        )
        stats.movs_injected = int(data["movs_injected"])
        stats.occupancy_sum = np.asarray(
            data["occupancy_sum"], dtype=np.float64
        )
        stats.occupancy_samples = np.asarray(
            data["occupancy_samples"], dtype=np.int64
        )
        return stats


@dataclass
class TimingStats:
    """Cycle-level counters from the timing SM."""

    cycles: int = 0
    issued: int = 0
    collector_stall_cycles: int = 0
    bank_wakeup_stalls: int = 0
    #: scheduler slots that found no issuable warp (stall-cause series)
    issue_idle_cycles: int = 0

    def merge(self, other: "TimingStats") -> None:
        self.cycles = max(self.cycles, other.cycles)
        self.issued += other.issued
        self.collector_stall_cycles += other.collector_stall_cycles
        self.bank_wakeup_stalls += other.bank_wakeup_stalls
        self.issue_idle_cycles += other.issue_idle_cycles

    def to_dict(self) -> dict:
        return {
            "cycles": int(self.cycles),
            "issued": int(self.issued),
            "collector_stall_cycles": int(self.collector_stall_cycles),
            "bank_wakeup_stalls": int(self.bank_wakeup_stalls),
            "issue_idle_cycles": int(self.issue_idle_cycles),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimingStats":
        return cls(
            cycles=int(data["cycles"]),
            issued=int(data["issued"]),
            collector_stall_cycles=int(data["collector_stall_cycles"]),
            bank_wakeup_stalls=int(data["bank_wakeup_stalls"]),
            issue_idle_cycles=int(data["issue_idle_cycles"]),
        )


@dataclass(frozen=True)
class RunStats:
    """Everything one simulation run produced (immutable once emitted)."""

    benchmark: str
    policy: str
    value: ValueStats
    timing: TimingStats | None = None
    energy_breakdown: object | None = None  # EnergyBreakdown
    energy_model: object | None = None  # EnergyModel (for re-pricing sweeps)
    gated_fractions: tuple[float, ...] | None = None
    timeline: object | None = None  # repro.obs.timeline.Timeline

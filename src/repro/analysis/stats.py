"""Statistics accumulated during simulation.

:class:`ValueStats` gathers every per-write and per-instruction counter
the paper's characterisation and evaluation figures need; it is shared by
the functional runner and the timing SM so the same figures can be
produced from either.  :class:`TimingStats` adds cycle-level counters, and
:class:`RunStats` is the per-run record the harness consumes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.similarity import (
    SimilarityBin,
    best_bdi_choice,
    classify_write,
)
from repro.core.banks import BANKS_PER_WARP_REGISTER
from repro.core.codec import CompressionMode

_NONDIV, _DIV = 0, 1


@dataclass
class ValueStats:
    """Value-similarity and compression counters (phase-split).

    Phase index 0 is non-divergent, 1 is divergent, following the paired
    bars of Figures 2, 8 and 12.
    """

    collect_bdi: bool = False
    similarity: np.ndarray = field(
        default_factory=lambda: np.zeros((2, 4), dtype=np.int64)
    )
    instructions: int = 0
    divergent_instructions: int = 0
    writes: np.ndarray = field(
        default_factory=lambda: np.zeros(2, dtype=np.int64)
    )
    achievable_banks: np.ndarray = field(
        default_factory=lambda: np.zeros(2, dtype=np.int64)
    )
    stored_banks: np.ndarray = field(
        default_factory=lambda: np.zeros(2, dtype=np.int64)
    )
    mode_histogram: Counter = field(default_factory=Counter)
    bdi_histogram: Counter = field(default_factory=Counter)
    movs_injected: int = 0
    occupancy_sum: np.ndarray = field(
        default_factory=lambda: np.zeros(2, dtype=np.float64)
    )
    occupancy_samples: np.ndarray = field(
        default_factory=lambda: np.zeros(2, dtype=np.int64)
    )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_instruction(self, divergent: bool) -> None:
        self.instructions += 1
        if divergent:
            self.divergent_instructions += 1

    def record_write(
        self,
        values: np.ndarray,
        divergent: bool,
        achievable_mode: CompressionMode,
        stored_banks: int,
        stored_mode: CompressionMode,
    ) -> None:
        """Record one warp-register write.

        ``values`` is the *merged* 32-lane register as stored — during a
        divergent write the masked-off lanes keep their stale values,
        which is exactly what the compressor sees and why the random bin
        grows under divergence (paper Figure 2).
        """
        phase = _DIV if divergent else _NONDIV
        full = np.ones(len(values), dtype=bool)
        self.similarity[phase, classify_write(values, full)] += 1
        self.writes[phase] += 1
        self.achievable_banks[phase] += achievable_mode.banks
        self.stored_banks[phase] += stored_banks
        self.mode_histogram[stored_mode] += 1
        if self.collect_bdi:
            self.bdi_histogram[best_bdi_choice(values)] += 1

    def record_mov(self) -> None:
        self.movs_injected += 1

    def record_occupancy(self, compressed_fraction: float, divergent: bool) -> None:
        phase = _DIV if divergent else _NONDIV
        self.occupancy_sum[phase] += compressed_fraction
        self.occupancy_samples[phase] += 1

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def similarity_fractions(self, divergent: bool) -> dict[SimilarityBin, float]:
        """Figure 2: fraction of writes per bin for one phase."""
        phase = _DIV if divergent else _NONDIV
        total = int(self.similarity[phase].sum())
        if total == 0:
            return {b: 0.0 for b in SimilarityBin}
        return {
            b: self.similarity[phase, b] / total for b in SimilarityBin
        }

    @property
    def nondivergent_fraction(self) -> float:
        """Figure 3: share of warp instructions that are non-divergent."""
        if self.instructions == 0:
            return 1.0
        return 1.0 - self.divergent_instructions / self.instructions

    def compression_ratio(self, divergent: bool, achievable: bool = True) -> float:
        """Figure 8 (achievable) / Figure 15 (stored) compression ratio.

        Bank-granularity ratio: eight banks per write divided by the banks
        the compressed representations occupy.
        """
        phase = _DIV if divergent else _NONDIV
        banks = self.achievable_banks if achievable else self.stored_banks
        if self.writes[phase] == 0:
            return 1.0
        return (
            BANKS_PER_WARP_REGISTER * int(self.writes[phase])
        ) / int(banks[phase])

    def overall_compression_ratio(self, achievable: bool = False) -> float:
        """Ratio over all writes regardless of phase."""
        total_writes = int(self.writes.sum())
        banks = self.achievable_banks if achievable else self.stored_banks
        if total_writes == 0:
            return 1.0
        return (BANKS_PER_WARP_REGISTER * total_writes) / int(banks.sum())

    @property
    def mov_fraction(self) -> float:
        """Figure 11: dummy MOVs as a fraction of all instructions."""
        total = self.instructions + self.movs_injected
        return self.movs_injected / total if total else 0.0

    def compressed_register_fraction(self, divergent: bool) -> float | None:
        """Figure 12: mean compressed share of allocated registers.

        ``None`` when the phase never occurred (the paper's "N/A" bars for
        benchmarks that do not diverge).
        """
        phase = _DIV if divergent else _NONDIV
        if self.occupancy_samples[phase] == 0:
            return None
        return float(self.occupancy_sum[phase] / self.occupancy_samples[phase])

    def bdi_fractions(self) -> dict[str, float]:
        """Figure 5: share of writes best served by each encoding."""
        total = sum(self.bdi_histogram.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in sorted(self.bdi_histogram.items())}

    # ------------------------------------------------------------------
    def merge(self, other: "ValueStats") -> None:
        """Fold another SM's counters into this one."""
        self.similarity += other.similarity
        self.instructions += other.instructions
        self.divergent_instructions += other.divergent_instructions
        self.writes += other.writes
        self.achievable_banks += other.achievable_banks
        self.stored_banks += other.stored_banks
        self.mode_histogram.update(other.mode_histogram)
        self.bdi_histogram.update(other.bdi_histogram)
        self.movs_injected += other.movs_injected
        self.occupancy_sum += other.occupancy_sum
        self.occupancy_samples += other.occupancy_samples

    # ------------------------------------------------------------------
    # Serialisation (RunResult artifacts)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless JSON-compatible representation of every counter."""
        return {
            "collect_bdi": self.collect_bdi,
            "similarity": self.similarity.tolist(),
            "instructions": int(self.instructions),
            "divergent_instructions": int(self.divergent_instructions),
            "writes": self.writes.tolist(),
            "achievable_banks": self.achievable_banks.tolist(),
            "stored_banks": self.stored_banks.tolist(),
            "mode_histogram": {
                str(int(mode)): int(count)
                for mode, count in sorted(self.mode_histogram.items())
            },
            "bdi_histogram": {
                str(choice): int(count)
                for choice, count in sorted(self.bdi_histogram.items())
            },
            "movs_injected": int(self.movs_injected),
            "occupancy_sum": self.occupancy_sum.tolist(),
            "occupancy_samples": self.occupancy_samples.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ValueStats":
        """Rebuild the exact counters :meth:`to_dict` captured."""
        stats = cls(collect_bdi=bool(data["collect_bdi"]))
        stats.similarity = np.asarray(data["similarity"], dtype=np.int64)
        stats.instructions = int(data["instructions"])
        stats.divergent_instructions = int(data["divergent_instructions"])
        stats.writes = np.asarray(data["writes"], dtype=np.int64)
        stats.achievable_banks = np.asarray(
            data["achievable_banks"], dtype=np.int64
        )
        stats.stored_banks = np.asarray(data["stored_banks"], dtype=np.int64)
        stats.mode_histogram = Counter(
            {
                CompressionMode(int(mode)): int(count)
                for mode, count in data["mode_histogram"].items()
            }
        )
        stats.bdi_histogram = Counter(
            {
                str(choice): int(count)
                for choice, count in data["bdi_histogram"].items()
            }
        )
        stats.movs_injected = int(data["movs_injected"])
        stats.occupancy_sum = np.asarray(
            data["occupancy_sum"], dtype=np.float64
        )
        stats.occupancy_samples = np.asarray(
            data["occupancy_samples"], dtype=np.int64
        )
        return stats


@dataclass
class TimingStats:
    """Cycle-level counters from the timing SM."""

    cycles: int = 0
    issued: int = 0
    collector_stall_cycles: int = 0
    bank_wakeup_stalls: int = 0
    #: scheduler slots that found no issuable warp (stall-cause series)
    issue_idle_cycles: int = 0

    def merge(self, other: "TimingStats") -> None:
        self.cycles = max(self.cycles, other.cycles)
        self.issued += other.issued
        self.collector_stall_cycles += other.collector_stall_cycles
        self.bank_wakeup_stalls += other.bank_wakeup_stalls
        self.issue_idle_cycles += other.issue_idle_cycles

    def to_dict(self) -> dict:
        return {
            "cycles": int(self.cycles),
            "issued": int(self.issued),
            "collector_stall_cycles": int(self.collector_stall_cycles),
            "bank_wakeup_stalls": int(self.bank_wakeup_stalls),
            "issue_idle_cycles": int(self.issue_idle_cycles),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimingStats":
        return cls(
            cycles=int(data["cycles"]),
            issued=int(data["issued"]),
            collector_stall_cycles=int(data["collector_stall_cycles"]),
            bank_wakeup_stalls=int(data["bank_wakeup_stalls"]),
            issue_idle_cycles=int(data["issue_idle_cycles"]),
        )


@dataclass(frozen=True)
class RunStats:
    """Everything one simulation run produced (immutable once emitted)."""

    benchmark: str
    policy: str
    value: ValueStats
    timing: TimingStats | None = None
    energy_breakdown: object | None = None  # EnergyBreakdown
    energy_model: object | None = None  # EnergyModel (for re-pricing sweeps)
    gated_fractions: tuple[float, ...] | None = None
    timeline: object | None = None  # repro.obs.timeline.Timeline

"""Register-value similarity characterisation (paper Section 3).

The paper measures similarity as the *arithmetic distance* between
successive thread registers within one warp register: for a write of 32
values, the 31 distances ``|v[i+1] - v[i]|`` are computed and the write is
placed in one of four bins by the largest distance observed:

* **zero** — all successive registers identical,
* **128**  — all distances at most 128,
* **32K**  — all distances at most 2**15,
* **random** — anything larger.

During divergence only the active lanes carry freshly-written values, so
distances are taken between successive *active* lanes.

This module also implements the exhaustive best-``<base, delta>``
selection of the Figure 5 design-space study, vectorised for the
simulator's write rate.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np


class SimilarityBin(IntEnum):
    """Figure 2's four categories, ordered by increasing distance."""

    ZERO = 0
    D128 = 1
    D32K = 2
    RANDOM = 3

    @property
    def label(self) -> str:
        return {"ZERO": "zero", "D128": "128", "D32K": "32K", "RANDOM": "random"}[
            self.name
        ]


def successive_distances(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``|v[i+1] - v[i]|`` over successive active lanes, as int64.

    Values are interpreted as signed 32-bit integers (the paper's
    arithmetic distance is on the stored bit patterns; nearby floats and
    nearby addresses are both nearby in this interpretation).
    """
    active = np.asarray(values, dtype=np.uint32)[np.asarray(mask, dtype=bool)]
    if active.size < 2:
        return np.zeros(0, dtype=np.int64)
    signed = active.view(np.int32).astype(np.int64)
    return np.abs(signed[1:] - signed[:-1])


def classify_write(values: np.ndarray, mask: np.ndarray) -> SimilarityBin:
    """Bin one register write by its largest successive distance.

    A write touching fewer than two lanes is trivially in the zero bin.
    """
    distances = successive_distances(values, mask)
    if distances.size == 0:
        return SimilarityBin.ZERO
    worst = int(distances.max())
    if worst == 0:
        return SimilarityBin.ZERO
    if worst <= 128:
        return SimilarityBin.D128
    if worst <= 1 << 15:
        return SimilarityBin.D32K
    return SimilarityBin.RANDOM


def classify_write_full(values: np.ndarray) -> SimilarityBin:
    """:func:`classify_write` for a fully-active warp (no mask array).

    The replay and stats hot paths always bin the complete 32-lane
    snapshot; skipping the mask indexing halves the cost of the common
    case while giving the same answer as an all-true mask.
    """
    signed = np.asarray(values, dtype=np.uint32).view(np.int32).astype(np.int64)
    if signed.size < 2:
        return SimilarityBin.ZERO
    worst = int(np.abs(signed[1:] - signed[:-1]).max())
    if worst == 0:
        return SimilarityBin.ZERO
    if worst <= 128:
        return SimilarityBin.D128
    if worst <= 1 << 15:
        return SimilarityBin.D32K
    return SimilarityBin.RANDOM


def classify_writes_batch(matrix: np.ndarray) -> np.ndarray:
    """Batch :func:`classify_write_full` over a ``(n, warp_size)`` matrix.

    Returns one :class:`SimilarityBin` value per row as ``int64``.
    """
    m = np.ascontiguousarray(matrix, dtype=np.uint32)
    if m.ndim != 2:
        raise ValueError(f"lane matrix must be 2-D, got shape {m.shape}")
    if m.shape[0] == 0 or m.shape[1] < 2:
        return np.zeros(m.shape[0], dtype=np.int64)
    signed = m.view(np.int32).astype(np.int64)
    worst = np.abs(signed[:, 1:] - signed[:, :-1]).max(axis=1)
    bins = np.full(m.shape[0], int(SimilarityBin.RANDOM), dtype=np.int64)
    bins[worst <= 1 << 15] = int(SimilarityBin.D32K)
    bins[worst <= 128] = int(SimilarityBin.D128)
    bins[worst == 0] = int(SimilarityBin.ZERO)
    return bins


#: Histogram keys of the Figure 5 study, in plot order.
BDI_CHOICES = (
    "<4,0>",
    "<4,1>",
    "<4,2>",
    "<8,0>",
    "<8,1>",
    "<8,2>",
    "<8,4>",
    "uncompressed",
)


def best_bdi_choice(values: np.ndarray) -> str:
    """The ``<base, delta>`` pair a full BDI search would pick (Figure 5).

    Evaluates all seven candidate encodings on a 128-byte warp register
    and returns the one needing the fewest register banks (ties to the
    smaller compressed size), or ``"uncompressed"``.
    """
    lanes = np.asarray(values, dtype=np.uint32)
    if lanes.size % 2:
        raise ValueError("warp register must have an even number of lanes")

    candidates: list[tuple[int, int, str]] = []  # (banks, size, name)

    d4 = (lanes - lanes[0]).astype(np.int32)
    hi4, lo4 = int(d4.max()), int(d4.min())
    if hi4 == 0 and lo4 == 0:
        candidates.append((1, 4, "<4,0>"))
    if -128 <= lo4 and hi4 <= 127:
        candidates.append((3, 35, "<4,1>"))
    if -32768 <= lo4 and hi4 <= 32767:
        candidates.append((5, 66, "<4,2>"))

    chunks8 = lanes.view(np.uint64)
    d8 = (chunks8 - chunks8[0]).view(np.int64)
    hi8, lo8 = int(d8.max()), int(d8.min())
    if hi8 == 0 and lo8 == 0:
        candidates.append((1, 8, "<8,0>"))
    if -(1 << 7) <= lo8 and hi8 < 1 << 7:
        candidates.append((2, 23, "<8,1>"))
    if -(1 << 15) <= lo8 and hi8 < 1 << 15:
        candidates.append((3, 38, "<8,2>"))
    if -(1 << 31) <= lo8 and hi8 < 1 << 31:
        candidates.append((5, 68, "<8,4>"))

    if not candidates:
        return "uncompressed"
    banks, _, name = min(candidates, key=lambda c: (c[0], c[1]))
    return name if banks < 8 else "uncompressed"


#: The seven candidates of :func:`best_bdi_choice` sorted by its
#: ``(banks, compressed size)`` preference key, plus the fallback.
#: ``best_bdi_choice_indices`` picks the first matching entry per row.
BDI_BATCH_ORDER = (
    "<4,0>",  # 1 bank, 4 bytes
    "<8,0>",  # 1 bank, 8 bytes
    "<8,1>",  # 2 banks, 23 bytes
    "<4,1>",  # 3 banks, 35 bytes
    "<8,2>",  # 3 banks, 38 bytes
    "<4,2>",  # 5 banks, 66 bytes
    "<8,4>",  # 5 banks, 68 bytes
    "uncompressed",
)


def best_bdi_choice_indices(matrix: np.ndarray) -> np.ndarray:
    """Batch :func:`best_bdi_choice` over a ``(n, warp_size)`` matrix.

    Returns, per row, the index into :data:`BDI_BATCH_ORDER` of the
    encoding the exhaustive search would pick.
    """
    m = np.ascontiguousarray(matrix, dtype=np.uint32)
    if m.ndim != 2:
        raise ValueError(f"lane matrix must be 2-D, got shape {m.shape}")
    if m.shape[1] % 2:
        raise ValueError("warp register must have an even number of lanes")
    if m.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)

    d4 = (m - m[:, :1]).astype(np.int32)
    hi4 = d4.max(axis=1).astype(np.int64)
    lo4 = d4.min(axis=1).astype(np.int64)

    chunks8 = m.view(np.uint64)
    d8 = (chunks8 - chunks8[:, :1]).view(np.int64)
    hi8 = d8.max(axis=1)
    lo8 = d8.min(axis=1)

    conditions = [
        (hi4 == 0) & (lo4 == 0),  # <4,0>
        (hi8 == 0) & (lo8 == 0),  # <8,0>
        (hi8 < 1 << 7) & (lo8 >= -(1 << 7)),  # <8,1>
        (hi4 <= 127) & (lo4 >= -128),  # <4,1>
        (hi8 < 1 << 15) & (lo8 >= -(1 << 15)),  # <8,2>
        (hi4 <= 32767) & (lo4 >= -32768),  # <4,2>
        (hi8 < 1 << 31) & (lo8 >= -(1 << 31)),  # <8,4>
    ]
    choices = np.arange(len(conditions), dtype=np.int64)
    return np.select(conditions, choices, default=len(BDI_BATCH_ORDER) - 1)

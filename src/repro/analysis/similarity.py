"""Register-value similarity characterisation (paper Section 3).

The paper measures similarity as the *arithmetic distance* between
successive thread registers within one warp register: for a write of 32
values, the 31 distances ``|v[i+1] - v[i]|`` are computed and the write is
placed in one of four bins by the largest distance observed:

* **zero** — all successive registers identical,
* **128**  — all distances at most 128,
* **32K**  — all distances at most 2**15,
* **random** — anything larger.

During divergence only the active lanes carry freshly-written values, so
distances are taken between successive *active* lanes.

This module also implements the exhaustive best-``<base, delta>``
selection of the Figure 5 design-space study, vectorised for the
simulator's write rate.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np


class SimilarityBin(IntEnum):
    """Figure 2's four categories, ordered by increasing distance."""

    ZERO = 0
    D128 = 1
    D32K = 2
    RANDOM = 3

    @property
    def label(self) -> str:
        return {"ZERO": "zero", "D128": "128", "D32K": "32K", "RANDOM": "random"}[
            self.name
        ]


def successive_distances(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``|v[i+1] - v[i]|`` over successive active lanes, as int64.

    Values are interpreted as signed 32-bit integers (the paper's
    arithmetic distance is on the stored bit patterns; nearby floats and
    nearby addresses are both nearby in this interpretation).
    """
    active = np.asarray(values, dtype=np.uint32)[np.asarray(mask, dtype=bool)]
    if active.size < 2:
        return np.zeros(0, dtype=np.int64)
    signed = active.view(np.int32).astype(np.int64)
    return np.abs(signed[1:] - signed[:-1])


def classify_write(values: np.ndarray, mask: np.ndarray) -> SimilarityBin:
    """Bin one register write by its largest successive distance.

    A write touching fewer than two lanes is trivially in the zero bin.
    """
    distances = successive_distances(values, mask)
    if distances.size == 0:
        return SimilarityBin.ZERO
    worst = int(distances.max())
    if worst == 0:
        return SimilarityBin.ZERO
    if worst <= 128:
        return SimilarityBin.D128
    if worst <= 1 << 15:
        return SimilarityBin.D32K
    return SimilarityBin.RANDOM


#: Histogram keys of the Figure 5 study, in plot order.
BDI_CHOICES = (
    "<4,0>",
    "<4,1>",
    "<4,2>",
    "<8,0>",
    "<8,1>",
    "<8,2>",
    "<8,4>",
    "uncompressed",
)


def best_bdi_choice(values: np.ndarray) -> str:
    """The ``<base, delta>`` pair a full BDI search would pick (Figure 5).

    Evaluates all seven candidate encodings on a 128-byte warp register
    and returns the one needing the fewest register banks (ties to the
    smaller compressed size), or ``"uncompressed"``.
    """
    lanes = np.asarray(values, dtype=np.uint32)
    if lanes.size % 2:
        raise ValueError("warp register must have an even number of lanes")

    candidates: list[tuple[int, int, str]] = []  # (banks, size, name)

    d4 = (lanes - lanes[0]).astype(np.int32)
    hi4, lo4 = int(d4.max()), int(d4.min())
    if hi4 == 0 and lo4 == 0:
        candidates.append((1, 4, "<4,0>"))
    if -128 <= lo4 and hi4 <= 127:
        candidates.append((3, 35, "<4,1>"))
    if -32768 <= lo4 and hi4 <= 32767:
        candidates.append((5, 66, "<4,2>"))

    chunks8 = lanes.view(np.uint64)
    d8 = (chunks8 - chunks8[0]).view(np.int64)
    hi8, lo8 = int(d8.max()), int(d8.min())
    if hi8 == 0 and lo8 == 0:
        candidates.append((1, 8, "<8,0>"))
    if -(1 << 7) <= lo8 and hi8 < 1 << 7:
        candidates.append((2, 23, "<8,1>"))
    if -(1 << 15) <= lo8 and hi8 < 1 << 15:
        candidates.append((3, 38, "<8,2>"))
    if -(1 << 31) <= lo8 and hi8 < 1 << 31:
        candidates.append((5, 68, "<8,4>"))

    if not candidates:
        return "uncompressed"
    banks, _, name = min(candidates, key=lambda c: (c[0], c[1]))
    return name if banks < 8 else "uncompressed"

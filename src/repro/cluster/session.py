"""ClusterSession: a drop-in Session that runs misses on the fleet.

:class:`ClusterSession` subclasses :class:`~repro.sim.session.Session`
and changes exactly one thing: before executing cache misses locally,
:meth:`run_many` submits them to a cluster coordinator as a sweep and
waits for the fleet to fill the shared cache.  Everything downstream —
memoization, key computation, result shapes, the harness drivers that
consume the session — is inherited unchanged, which is what makes
``repro run --cluster host:port`` byte-identical to a single-host run:
the *same* code computes the keys and parses the results; only *where*
the simulation executed differs.

The escape hatches keep it honest as a drop-in:

* an unreachable coordinator flips the session to local-only (one
  warning, no error): a laptop run with a dead fleet still completes;
* requests the fleet cannot serve — trace captures and trace replays,
  whose ``.npz`` artifacts never travel — are executed locally as
  always;
* keys the fleet *failed* are re-executed locally so the caller sees
  the real exception, not a secondhand error string.

The local probe deliberately checks the **local** cache tier only
(memo + disk, no network): remote fills happen exactly once, inside
the inherited execution path, after the sweep has completed.
"""

from __future__ import annotations

import time

from repro.cluster.cache import (
    DEFAULT_COORDINATOR_PORT,
    PeerUnreachable,
    RemoteCacheTier,
    TieredResultCache,
)
from repro.cluster.client import CoordinatorClient
from repro.obs.log import get_logger
from repro.sim.cache import fingerprint, resolve_cache_dir
from repro.sim.result import RunResult
from repro.sim.session import Session, SimRequest

logger = get_logger("cluster.session")


class ClusterSession(Session):
    """A Session whose cache misses are simulated by a worker fleet."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_COORDINATOR_PORT,
        *,
        shard_size: int | None = None,
        sweep_timeout: float = 3600.0,
        poll_interval: float = 0.5,
        cache_dir: str | None = None,
        **session_kwargs,
    ):
        session_kwargs.setdefault(
            "result_cache",
            TieredResultCache(
                resolve_cache_dir(cache_dir), RemoteCacheTier(host, port)
            ),
        )
        super().__init__(**session_kwargs)
        self.client = CoordinatorClient(host, port)
        self.shard_size = shard_size
        self.sweep_timeout = sweep_timeout
        self.poll_interval = poll_interval
        #: requests handed to the fleet (counted once per dispatch)
        self.dispatched = 0
        #: set after the first failed coordinator round trip; the
        #: session quietly degrades to plain local execution
        self.fleet_down = False

    # ------------------------------------------------------------------
    @staticmethod
    def _remote_eligible(request: SimRequest) -> bool:
        """Whether the fleet can serve this request's cache entry.

        Trace-capture and trace-replay requests pin to the local host:
        their ``.npz`` artifacts live outside the cache entry and never
        travel the cache tier (see :mod:`repro.cluster.cache`).
        """
        if request.timing:
            return True
        return not (request.capture_trace or request.replay)

    def _local_probe(self, key: str) -> RunResult | None:
        """Memo + local disk tier only; never touches the network."""
        if key in self._memo:
            return self._memo[key]
        if self._disk is None:
            return None
        local_get = getattr(self._disk, "local_get", self._disk.get)
        return local_get(key)

    # ------------------------------------------------------------------
    def run(self, request: SimRequest | str, **overrides) -> RunResult:
        if isinstance(request, str):
            request = self.request(request, **overrides)
        elif overrides:
            raise TypeError("overrides only apply to benchmark-name requests")
        return self.run_many([request])[request]

    def run_many(self, requests) -> dict[SimRequest, RunResult]:
        """Dispatch eligible misses to the fleet, then resolve locally."""
        requests = list(dict.fromkeys(requests))
        if not self.fleet_down:
            pending = [
                request
                for request in requests
                if self._remote_eligible(request)
                and self._local_probe(fingerprint(request.key_material()))
                is None
            ]
            if pending:
                self._dispatch(pending)
        # The inherited path resolves every request: fleet-filled keys
        # arrive as (remote) disk hits through the tiered cache, and
        # anything the fleet missed or failed executes locally.
        return super().run_many(requests)

    # ------------------------------------------------------------------
    def _dispatch(self, pending: list[SimRequest]) -> None:
        payloads = [request.to_payload() for request in pending]
        try:
            sweep = self.client.submit_sweep(payloads, self.shard_size)
        except PeerUnreachable as exc:
            self._mark_fleet_down(exc)
            return
        self.dispatched += len(pending)
        sweep_id = sweep["sweep_id"]
        logger.info(
            f"dispatched {len(pending)} requests to the fleet "
            f"({sweep_id}: {sweep['done']}/{sweep['total']} already done)"
        )
        deadline = time.monotonic() + self.sweep_timeout
        while not sweep.get("complete"):
            if time.monotonic() >= deadline:
                logger.warning(
                    f"{sweep_id} incomplete after "
                    f"{self.sweep_timeout:.0f}s; finishing locally"
                )
                return
            time.sleep(self.poll_interval)
            try:
                sweep = self.client.sweep(sweep_id)
            except PeerUnreachable as exc:
                self._mark_fleet_down(exc)
                return
        failed = sweep.get("failed") or {}
        if failed:
            logger.warning(
                f"{sweep_id}: fleet failed {len(failed)} keys; "
                "re-executing them locally"
            )

    def _mark_fleet_down(self, exc: Exception) -> None:
        if not self.fleet_down:
            self.fleet_down = True
            logger.warning(
                f"cluster coordinator unavailable ({exc}); "
                "continuing with local execution only"
            )

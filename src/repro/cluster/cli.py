"""CLI glue for ``repro cluster coordinator|worker|run|status``.

Kept separate from :mod:`repro.verify.cli` (which owns the ``repro``
entry point and registers this subcommand) so the cluster stack only
imports when actually used.

A minimal two-worker local cluster, in four shells::

    repro cluster coordinator --port 8650
    repro cluster worker --coordinator 127.0.0.1:8650
    repro cluster worker --coordinator 127.0.0.1:8650
    repro cluster run fig09 --coordinator 127.0.0.1:8650 --scale small

``run`` is the distributed twin of the ``warped-compression`` runner:
it delegates to the same experiment drivers with a
:class:`~repro.cluster.session.ClusterSession`, so output is
byte-identical to a single-host run.  Because sweep submission is
idempotent (content-addressed sweep ids, cache-probed keys), *resuming
an interrupted sweep is just running the same command again* — only
still-unfilled keys are rescheduled; ``--resume`` exists to make that
intent explicit in scripts.

All parties honor ``$REPRO_CACHE_DIR`` (or ``--cache-dir``) for their
local tier; the coordinator's cache directory is the shared tier of
record.
"""

from __future__ import annotations

import json

from repro.serve.http import parse_hostport


def _add_coordinator_flag(parser) -> None:
    parser.add_argument(
        "--coordinator",
        default="127.0.0.1:8650",
        metavar="HOST:PORT",
        help="coordinator endpoint (default 127.0.0.1:8650)",
    )


def add_cluster_parser(sub) -> None:
    cluster = sub.add_parser(
        "cluster",
        help="distributed sweep execution (coordinator, workers, run)",
        description="Run experiment grids on a fleet: a coordinator "
        "expands grids into content-addressed cache keys and leases "
        "shards to workers; workers simulate through the ordinary "
        "session layer and publish results through a shared tiered "
        "cache; dead workers are detected by heartbeat and their "
        "shards reassigned.",
    )
    csub = cluster.add_subparsers(dest="cluster_command", required=True)

    coord = csub.add_parser(
        "coordinator",
        help="run the sweep coordinator",
        description="Own the shared cache tier, expand submitted grids, "
        "lease shards, reap dead workers.  State journals to "
        "<cache>/cluster/journal.json; restarting resumes "
        "automatically (cache contents decide what is already done).",
    )
    coord.add_argument("--host", default="127.0.0.1")
    coord.add_argument("--port", type=int, default=8650)
    coord.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="shared result cache root (default: .repro-cache or "
        "$REPRO_CACHE_DIR)",
    )
    coord.add_argument(
        "--shard-size",
        type=int,
        default=4,
        metavar="N",
        help="cache keys per shard lease (default 4)",
    )
    coord.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="silence after which a worker is declared dead (default 10)",
    )
    coord.add_argument(
        "--heartbeat-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="heartbeat cadence advertised to workers (default 2)",
    )
    coord.add_argument(
        "--fresh",
        action="store_true",
        help="ignore any existing journal instead of resuming from it",
    )

    worker = csub.add_parser(
        "worker",
        help="run one worker agent",
        description="Register with a coordinator and loop: lease a "
        "shard, simulate it through the ordinary session layer "
        "(results publish fleet-wide via cache write-through), report, "
        "repeat.",
    )
    _add_coordinator_flag(worker)
    worker.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="local cache tier root (default: .repro-cache or "
        "$REPRO_CACHE_DIR)",
    )
    worker.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel simulations per shard (default 1)",
    )
    worker.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="sleep between idle lease attempts (default 0.5)",
    )
    worker.add_argument(
        "--exit-when-idle",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="exit after this long with no work (default: run forever)",
    )
    worker.add_argument("--name", help="worker display name (default: pid)")

    run = csub.add_parser(
        "run",
        help="run experiments against the fleet (single-host-identical)",
        description="The distributed twin of the warped-compression "
        "runner: same experiment ids, same rendered tables, but cache "
        "misses are simulated by the fleet.  Re-running the same "
        "command after an interruption resumes the sweep (submission "
        "is idempotent); --resume states that intent explicitly.",
    )
    _add_coordinator_flag(run)
    run.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids, as for the warped-compression CLI",
    )
    run.add_argument(
        "--scale", choices=("small", "default"), default="default"
    )
    run.add_argument("--benchmarks", nargs="+", metavar="NAME")
    run.add_argument("--out", help="also write rendered results here")
    run.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="local cache tier root (default: .repro-cache or "
        "$REPRO_CACHE_DIR)",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted sweep (a documented no-op: "
        "submission is already idempotent)",
    )
    run.add_argument("--quiet", action="store_true")

    status = csub.add_parser(
        "status",
        help="print a coordinator's status (and optionally metrics)",
    )
    _add_coordinator_flag(status)
    status.add_argument(
        "--metrics",
        action="store_true",
        help="also print the cluster.* metric registry",
    )


def cmd_cluster(args) -> int:
    if args.cluster_command == "coordinator":
        from repro.cluster.coordinator import CoordinatorConfig, run_coordinator

        return run_coordinator(
            CoordinatorConfig(
                host=args.host,
                port=args.port,
                cache_dir=args.cache_dir,
                shard_size=args.shard_size,
                heartbeat_timeout=args.heartbeat_timeout,
                heartbeat_interval=args.heartbeat_interval,
                fresh=args.fresh,
            )
        )

    if args.cluster_command == "worker":
        from repro.cluster.worker import WorkerConfig, run_worker

        host, port = parse_hostport(args.coordinator, 8650)
        return run_worker(
            WorkerConfig(
                host=host,
                port=port,
                cache_dir=args.cache_dir,
                jobs=args.jobs,
                poll_interval=args.poll_interval,
                exit_when_idle=args.exit_when_idle,
                name=args.name,
            )
        )

    if args.cluster_command == "run":
        from repro.harness import runner

        argv = list(args.experiments)
        argv += ["--cluster", args.coordinator, "--scale", args.scale]
        if args.benchmarks:
            argv += ["--benchmarks", *args.benchmarks]
        if args.out:
            argv += ["--out", args.out]
        if args.cache_dir:
            argv += ["--cache-dir", args.cache_dir]
        if args.quiet:
            argv += ["--quiet"]
        return runner.main(argv)

    if args.cluster_command == "status":
        from repro.cluster.client import CoordinatorClient

        host, port = parse_hostport(args.coordinator, 8650)
        client = CoordinatorClient(host, port)
        print(json.dumps(client.status(), indent=2, sort_keys=True))
        if args.metrics:
            print(json.dumps(client.metrics(), indent=2, sort_keys=True))
        return 0

    raise SystemExit(f"unknown cluster command {args.cluster_command!r}")

"""Distributed sweep execution: coordinator, workers, tiered cache.

``repro.cluster`` scales the :mod:`repro.sim` session layer from one
host to a fleet:

* a **coordinator** (:mod:`repro.cluster.coordinator`) expands
  experiment grids into content-addressed cache keys, partitions the
  unfilled keys into shards, and hands shards to registered workers
  with heartbeat-based dead-worker detection and reassignment;
* **workers** (:mod:`repro.cluster.worker`) are thin loops around the
  existing :class:`~repro.sim.session.Session`, leasing shards and
  publishing every result back through the shared cache tier;
* a **tiered result cache** (:mod:`repro.cluster.cache`) stacks the
  local on-disk :class:`~repro.sim.cache.ResultCache` over a peer HTTP
  tier — content-addressed keys make remote fills safe, ``get`` falls
  through and backfills, ``put`` writes through — so every worker and
  serve replica shares one result universe;
* :class:`~repro.cluster.session.ClusterSession` drop-in replaces
  :class:`~repro.sim.session.Session` in the harness drivers, so any
  figure/ablation run can target the fleet unchanged.

Everything speaks the same stdlib JSON-over-HTTP dialect as
:mod:`repro.serve` (shared plumbing in :mod:`repro.serve.http`).
"""

from repro.cluster.cache import PeerUnreachable, RemoteCacheTier, TieredResultCache
from repro.cluster.client import (
    ClusterError,
    CoordinatorClient,
    UnknownShard,
    UnknownWorker,
)
from repro.cluster.session import ClusterSession

__all__ = [
    "ClusterError",
    "ClusterSession",
    "CoordinatorClient",
    "PeerUnreachable",
    "RemoteCacheTier",
    "TieredResultCache",
    "UnknownShard",
    "UnknownWorker",
]

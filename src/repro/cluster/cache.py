"""The tiered result cache: local disk over a shared peer/HTTP tier.

:class:`TieredResultCache` is a drop-in :class:`~repro.sim.cache.ResultCache`
whose ``get`` falls through tiers and whose ``put`` writes through them:

* **get** — local disk first; on a miss, fetch the raw entry payload
  from the peer tier (a cluster coordinator or any replica exposing the
  ``/v1/cache`` endpoints), validate it the hard way (the key must be
  the fingerprint of the stored material, the result must parse), and
  **backfill** the local tier so the next read is local;
* **put** — the local tier is written first (the caller's durability
  does not depend on the network), then the entry is pushed to the peer
  best-effort, which is how a worker's freshly simulated result becomes
  visible to every other worker and serve replica.

Content-addressed keys are what make remote fills safe: two caches can
only ever disagree about a key by one of them being corrupt, never by
holding *different* valid results, so the fall-through requires no
invalidation protocol.

An unreachable peer degrades the stack to local-only — a sweep keeps
completing on the local tier — with a cooldown before the next retry so
a dead peer costs one timeout per window, not one per request.  All
tier traffic is counted and exportable through :mod:`repro.obs`.

Trace-bearing entries (``result.trace_path`` set) never travel: the
``.npz`` artifact lives outside the entry file, so shipping the entry
alone would advertise a trace the receiving host cannot deliver.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.obs.log import get_logger
from repro.serve.http import http_json_call
from repro.sim.cache import ResultCache
from repro.sim.result import RunResult

logger = get_logger("cluster.cache")

#: Default coordinator port (the serve default is 8642; keep them apart
#: so one host can run both out of the box).
DEFAULT_COORDINATOR_PORT = 8650


class PeerUnreachable(Exception):
    """The peer tier did not answer (connection refused/reset/timeout)."""


class RemoteCacheTier:
    """Blocking client for a peer's ``/v1/cache/<key>`` endpoints."""

    def __init__(
        self,
        host: str,
        port: int = DEFAULT_COORDINATOR_PORT,
        timeout: float = 10.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteCacheTier({self.host}:{self.port})"

    def _call(self, method: str, path: str, body: dict | None = None):
        try:
            return http_json_call(
                self.host, self.port, method, path, body, timeout=self.timeout
            )
        except OSError as exc:
            raise PeerUnreachable(
                f"cache peer {self.host}:{self.port} unreachable: {exc}"
            ) from exc

    def get(self, key: str) -> dict | None:
        """Fetch one raw entry payload; ``None`` when the peer misses."""
        status, _headers, payload = self._call("GET", f"/v1/cache/{key}")
        if status == 404:
            return None
        if status != 200 or "entry" not in payload:
            raise PeerUnreachable(
                f"cache peer answered {status}: {payload.get('error', payload)}"
            )
        return payload["entry"]

    def put(self, key: str, payload: dict) -> bool:
        """Push one raw entry payload; returns whether the peer stored it."""
        status, _headers, reply = self._call(
            "PUT", f"/v1/cache/{key}", payload
        )
        if status != 200:
            raise PeerUnreachable(
                f"cache peer rejected put with {status}: "
                f"{reply.get('error', reply)}"
            )
        return bool(reply.get("stored"))


class TieredResultCache(ResultCache):
    """Local-disk ResultCache stacked over a shared peer/HTTP tier."""

    def __init__(
        self,
        root: Path | str,
        remote: RemoteCacheTier | None = None,
        *,
        cooldown: float = 15.0,
        clock=time.monotonic,
    ):
        super().__init__(root)
        self.remote = remote
        self.cooldown = cooldown
        self._clock = clock
        self._down_until = 0.0
        # Tier accounting (exported via register_metrics).
        self.local_hits = 0
        self.local_misses = 0
        self.remote_hits = 0
        self.remote_misses = 0
        self.remote_fills = 0
        self.remote_errors = 0
        self.remote_puts = 0
        self.local_puts = 0

    # ------------------------------------------------------------------
    # Peer availability (cooldown after a failure)
    # ------------------------------------------------------------------
    def remote_available(self) -> bool:
        return self.remote is not None and self._clock() >= self._down_until

    def _mark_down(self, exc: Exception) -> None:
        self.remote_errors += 1
        self._down_until = self._clock() + self.cooldown
        logger.warning(
            f"cache peer unavailable, local-only for {self.cooldown:.0f}s "
            f"({exc})"
        )

    # ------------------------------------------------------------------
    # Tiered read/write
    # ------------------------------------------------------------------
    def local_get(self, key: str) -> RunResult | None:
        """Read the local tier only (never touches the network)."""
        return super().get(key)

    def get(self, key: str) -> RunResult | None:
        result = self.local_get(key)
        if result is not None:
            self.local_hits += 1
            return result
        self.local_misses += 1
        if not self.remote_available():
            return None
        try:
            payload = self.remote.get(key)
        except PeerUnreachable as exc:
            self._mark_down(exc)
            return None
        if payload is None:
            self.remote_misses += 1
            return None
        try:
            # put_payload re-validates key == fingerprint(material) and
            # parses the result, so a corrupt peer cannot poison us.
            self.put_payload(key, payload)
        except (KeyError, TypeError, ValueError) as exc:
            self.remote_errors += 1
            logger.warning(f"discarding corrupt peer entry {key[:12]}…: {exc}")
            return None
        result = self.local_get(key)
        if result is None:
            # Entry advertised a trace we cannot deliver locally.
            self.remote_errors += 1
            return None
        self.remote_hits += 1
        self.remote_fills += 1
        return result

    def put(self, key: str, material: dict, result: RunResult) -> None:
        super().put(key, material, result)
        self.local_puts += 1
        if result.trace_path is not None:
            return  # trace artifacts do not travel (see module docstring)
        if not self.remote_available():
            return
        payload = {
            "key": key,
            "material": material,
            "result": result.to_dict(),
        }
        try:
            self.remote.put(key, payload)
            self.remote_puts += 1
        except PeerUnreachable as exc:
            self._mark_down(exc)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def register_metrics(self, registry, prefix: str = "cluster.cache") -> None:
        """Export tier traffic as pull-based :mod:`repro.obs` probes."""
        for name in (
            "local_hits",
            "local_misses",
            "remote_hits",
            "remote_misses",
            "remote_fills",
            "remote_errors",
            "remote_puts",
            "local_puts",
        ):
            registry.probe(
                f"{prefix}.{name}",
                (lambda attr=name: getattr(self, attr)),
                kind="delta",
            )
        registry.probe(
            f"{prefix}.remote_available",
            lambda: 1.0 if self.remote_available() else 0.0,
        )

"""The cluster worker: a thin lease/simulate/report loop around Session.

A worker brings **no scheduling logic of its own**.  It registers with
the coordinator (which checks simulator code-version agreement), then
loops: lease a shard, run each of its requests through a completely
ordinary :class:`~repro.sim.session.Session`, report per-key outcomes,
repeat.  Two properties come for free from the session layer:

* every result is published fleet-wide the instant it is computed,
  because the session's disk tier is a
  :class:`~repro.cluster.cache.TieredResultCache` writing through to
  the coordinator's ``/v1/cache`` — the shard *report* is bookkeeping,
  not the data path, so a worker crash between publish and report
  loses nothing;
* a shard that duplicates already-cached work costs zero simulations,
  because the session consults the tiered cache before executing.

Failure handling is deliberately boring: an unreachable coordinator is
retried with backoff, an ``unknown-worker`` answer (coordinator
restarted, or this worker was reaped while stalled) triggers
re-registration, and an ``unknown-shard`` on report is dropped —
the write-through already delivered the results.

Heartbeats run on a daemon thread at the interval the coordinator
advertised at registration, carrying a stats snapshot (simulations,
cache-tier traffic) that the coordinator folds into ``/v1/status``
and its ``cluster.*`` metrics.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass

from repro.cluster.cache import (
    DEFAULT_COORDINATOR_PORT,
    PeerUnreachable,
    RemoteCacheTier,
    TieredResultCache,
)
from repro.cluster.client import (
    ClusterError,
    CoordinatorClient,
    UnknownShard,
    UnknownWorker,
)
from repro.obs.log import get_logger
from repro.sim.cache import code_version, resolve_cache_dir
from repro.sim.session import Session, SimRequest

logger = get_logger("cluster.worker")


@dataclass(frozen=True)
class WorkerConfig:
    """Everything ``repro cluster worker`` needs to boot one agent."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_COORDINATOR_PORT
    cache_dir: str | None = None
    #: parallel simulations per shard (Session ``max_workers``)
    jobs: int = 1
    #: seconds to sleep when the coordinator has no work
    poll_interval: float = 0.5
    #: exit after this many seconds with no work (0 = run forever)
    exit_when_idle: float = 0.0
    name: str | None = None


class WorkerAgent:
    """One lease/simulate/report loop; ``stop()`` is thread-safe."""

    def __init__(self, config: WorkerConfig):
        self.config = config
        self.client = CoordinatorClient(config.host, config.port)
        self.cache = TieredResultCache(
            resolve_cache_dir(config.cache_dir),
            RemoteCacheTier(config.host, config.port),
        )
        self.session = Session(
            max_workers=config.jobs, result_cache=self.cache
        )
        self.worker_id: str | None = None
        self.heartbeat_interval = 2.0
        self.shards_processed = 0
        self._stop = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def stats(self) -> dict:
        """The snapshot heartbeats and reports carry to the coordinator."""
        return {
            "pid": os.getpid(),
            "simulated": self.session.simulated,
            "replayed": self.session.replayed,
            "disk_hits": self.session.disk_hits,
            "remote_fills": self.cache.remote_fills,
            "remote_puts": self.cache.remote_puts,
            "shards": self.shards_processed,
        }

    def register(self) -> None:
        """Join the fleet, retrying while the coordinator is unreachable."""
        info = {
            "name": self.config.name or f"pid{os.getpid()}",
            "code_version": code_version(),
            "pid": os.getpid(),
        }
        while not self.stopping:
            try:
                reply = self.client.register(info)
            except PeerUnreachable:
                logger.info("coordinator unreachable; retrying registration")
                self._stop.wait(1.0)
                continue
            self.worker_id = reply["worker_id"]
            self.heartbeat_interval = float(
                reply.get("heartbeat_interval", self.heartbeat_interval)
            )
            logger.info(f"registered as {self.worker_id}")
            return
        raise RuntimeError("worker stopped before registration completed")

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            worker_id = self.worker_id
            if worker_id is None:
                continue
            try:
                self.client.heartbeat(worker_id, self.stats())
            except UnknownWorker:
                # The main loop will notice on its next lease and
                # re-register; stop claiming a dead identity meanwhile.
                logger.warning("heartbeat rejected: worker unknown")
            except (PeerUnreachable, ClusterError):
                pass  # transient; the next beat retries

    # ------------------------------------------------------------------
    # Work loop
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Blocking main loop; returns the number of shards processed."""
        self.register()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="cluster-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()
        idle_since: float | None = None
        while not self.stopping:
            try:
                reply = self.client.lease(self.worker_id)
            except UnknownWorker:
                logger.info("lease rejected (coordinator restarted?); re-registering")
                self.register()
                continue
            except PeerUnreachable:
                self._stop.wait(self.config.poll_interval)
                continue
            shard = reply.get("shard")
            if shard is None:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif (
                    self.config.exit_when_idle > 0
                    and now - idle_since >= self.config.exit_when_idle
                ):
                    logger.info("no work; exiting (exit_when_idle)")
                    break
                self._stop.wait(self.config.poll_interval)
                continue
            idle_since = None
            self._process_shard(shard)
        return self.shards_processed

    def _process_shard(self, shard: dict) -> None:
        shard_id = shard["shard_id"]
        units = shard.get("units", [])
        done: list[str] = []
        failed: dict[str, str] = {}
        requests: dict[str, SimRequest] = {}
        for unit in units:
            key = unit["key"]
            try:
                requests[key] = SimRequest.from_payload(unit["request"])
            except (TypeError, ValueError, KeyError) as exc:
                failed[key] = f"malformed request: {exc}"

        if len(requests) > 1:
            # Batch first: run_many dedupes and (jobs > 1) fans across
            # cores.  Any failure falls back to per-key execution below
            # so one bad kernel cannot sink its shard-mates.
            try:
                self.session.run_many(list(requests.values()))
            except Exception as exc:  # noqa: BLE001 - isolate per key next
                logger.warning(f"batch run failed ({exc}); retrying per key")
        for key, request in requests.items():
            try:
                self.session.run(request)
            except Exception as exc:  # noqa: BLE001 - reported, not fatal
                logger.warning(f"key {key[:12]}… failed: {exc}")
                failed[key] = f"{type(exc).__name__}: {exc}"
            else:
                done.append(key)

        self.shards_processed += 1
        try:
            self.client.report(
                shard_id,
                self.worker_id,
                done=done,
                failed=failed,
                stats=self.stats(),
            )
        except UnknownShard:
            # Coordinator restarted since the lease.  Harmless: every
            # completed key was already published via cache write-through.
            logger.info(f"report for stale {shard_id} dropped")
        except UnknownWorker:
            logger.info("report rejected (worker unknown); re-registering")
            self.register()
        except (PeerUnreachable, ClusterError) as exc:
            logger.warning(f"report for {shard_id} failed: {exc}")
        logger.info(
            f"shard {shard_id}: {len(done)} done, {len(failed)} failed "
            f"({self.session.simulated} simulated so far)"
        )


def run_worker(config: WorkerConfig) -> int:
    """Blocking CLI entry: work until SIGTERM/SIGINT (or idle exit)."""
    agent = WorkerAgent(config)

    def _initiate(signum, _frame) -> None:
        logger.info(f"received signal {signum}: stopping worker")
        agent.stop()

    signal.signal(signal.SIGTERM, _initiate)
    signal.signal(signal.SIGINT, _initiate)
    agent.run()
    logger.info(
        f"worker done: {agent.shards_processed} shards, "
        f"{agent.session.simulated} simulations"
    )
    return 0

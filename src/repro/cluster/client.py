"""Blocking client for the cluster coordinator's control plane.

Workers, :class:`~repro.cluster.session.ClusterSession`, and the
``repro cluster run|status`` CLIs all drive the coordinator exclusively
through this module, so (like :mod:`repro.serve.client` for the serve
stack) it doubles as the reference for the wire protocol:

====== ================================ ================================
POST   ``/v1/sweeps``                   submit a request grid; returns
                                        the (content-addressed) sweep
                                        status
GET    ``/v1/sweeps/<id>``              poll one sweep's status
POST   ``/v1/workers/register``         join the fleet; returns
                                        ``worker_id`` + heartbeat knobs
POST   ``/v1/workers/<id>/heartbeat``   liveness + stats snapshot
POST   ``/v1/workers/<id>/lease``       claim the next shard (or idle)
POST   ``/v1/shards/<id>/report``       per-key completion/failures
GET    ``/v1/cache/<key>``              shared cache tier read
PUT    ``/v1/cache/<key>``              shared cache tier write-through
GET    ``/v1/status``                   whole-cluster status view
GET    ``/v1/metrics``                  coordinator metric registry
GET    ``/healthz``                     liveness
====== ================================ ================================

Network failures surface as
:class:`~repro.cluster.cache.PeerUnreachable`; protocol-level failures
as :class:`ClusterError` (with :class:`UnknownWorker` /
:class:`UnknownShard` for the two staleness cases a worker must handle
by re-registering or dropping the shard).
"""

from __future__ import annotations

import time

from repro.cluster.cache import DEFAULT_COORDINATOR_PORT, PeerUnreachable
from repro.serve.http import http_json_call


class ClusterError(Exception):
    """Protocol-level failure (4xx/5xx from the coordinator)."""

    def __init__(self, status: int, detail: str):
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.detail = detail


class UnknownWorker(ClusterError):
    """The coordinator does not know this worker (it likely restarted)."""


class UnknownShard(ClusterError):
    """The coordinator does not know this shard (stale lease)."""


class CoordinatorClient:
    """Blocking JSON-over-HTTP client for one coordinator endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_COORDINATOR_PORT,
        timeout: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Raw round trip
    # ------------------------------------------------------------------
    def _call(self, method: str, path: str, body: dict | None = None) -> dict:
        try:
            status, _headers, payload = http_json_call(
                self.host, self.port, method, path, body, timeout=self.timeout
            )
        except OSError as exc:
            raise PeerUnreachable(
                f"coordinator {self.host}:{self.port} unreachable: {exc}"
            ) from exc
        if status >= 400:
            detail = payload.get("error", str(payload))
            code = payload.get("code")
            if code == "unknown-worker":
                raise UnknownWorker(status, detail)
            if code == "unknown-shard":
                raise UnknownShard(status, detail)
            raise ClusterError(status, detail)
        return payload

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._call("GET", "/healthz")

    def status(self) -> dict:
        return self._call("GET", "/v1/status")

    def metrics(self) -> dict:
        return self._call("GET", "/v1/metrics")

    def submit_sweep(
        self, requests: list[dict], shard_size: int | None = None
    ) -> dict:
        """Submit a grid of request payloads; returns the sweep status.

        Submission is idempotent: the sweep id is content-addressed
        over the grid's cache keys, already-cached keys are skipped,
        and keys already scheduled stay scheduled — resubmitting after
        a crash simply attaches to the surviving state.
        """
        body: dict = {"requests": requests}
        if shard_size is not None:
            body["shard_size"] = shard_size
        return self._call("POST", "/v1/sweeps", body)["sweep"]

    def sweep(self, sweep_id: str) -> dict:
        return self._call("GET", f"/v1/sweeps/{sweep_id}")["sweep"]

    # ------------------------------------------------------------------
    # Worker protocol
    # ------------------------------------------------------------------
    def register(self, info: dict) -> dict:
        return self._call("POST", "/v1/workers/register", info)

    def heartbeat(self, worker_id: str, stats: dict) -> dict:
        return self._call(
            "POST", f"/v1/workers/{worker_id}/heartbeat", {"stats": stats}
        )

    def lease(self, worker_id: str) -> dict:
        """Claim the next shard; ``{"shard": None, ...}`` when idle."""
        return self._call("POST", f"/v1/workers/{worker_id}/lease", {})

    def report(
        self,
        shard_id: str,
        worker_id: str,
        done: list[str] = (),
        failed: dict[str, str] | None = None,
        stats: dict | None = None,
    ) -> dict:
        return self._call(
            "POST",
            f"/v1/shards/{shard_id}/report",
            {
                "worker_id": worker_id,
                "done": list(done),
                "failed": failed or {},
                "stats": stats or {},
            },
        )

    # ------------------------------------------------------------------
    # Boot helper
    # ------------------------------------------------------------------
    def wait_ready(self, deadline: float = 10.0) -> bool:
        """Poll ``/healthz`` until the coordinator answers."""
        give_up = time.monotonic() + deadline
        while time.monotonic() < give_up:
            try:
                self.health()
                return True
            except (PeerUnreachable, ClusterError):
                time.sleep(0.05)
        return False

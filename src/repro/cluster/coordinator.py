"""The cluster coordinator: grid expansion, shard scheduling, resume.

The coordinator owns no simulation code.  It turns submitted request
grids into **content-addressed cache keys** (the same
``fingerprint(key_material)`` the local :class:`~repro.sim.session.Session`
uses), drops every key the shared cache already holds, partitions the
remainder into **shards**, and leases shards to registered workers.
Liveness is heartbeat-based: a worker that misses its heartbeat window
is declared dead and its assigned shards return to the pending queue
for reassignment.

Two design decisions carry the fault-tolerance story:

* **The cache is the ground truth for completion.**  Workers publish
  every result through the coordinator's ``PUT /v1/cache/<key>``
  endpoint (the write-through tier of
  :class:`~repro.cluster.cache.TieredResultCache`), and that PUT marks
  the key done — so a worker that crashes *after* publishing but
  *before* reporting costs nothing, and a coordinator restart recovers
  completion state by probing the cache rather than trusting its own
  notes.
* **Submission is idempotent.**  Sweep ids are content-addressed over
  the grid's keys, so resubmitting the same grid after a crash — the
  ``--resume`` story — attaches to surviving state, re-probes the
  cache, and schedules only the still-unfilled keys.

The journal under ``<cache_root>/cluster/journal.json`` records only
the submitted units and sweeps (completion is recovered from the
cache); it is written atomically on each submission.

:class:`ClusterState` is deliberately synchronous — every mutation runs
on the event-loop thread, so there are no locks and the scheduler logic
is unit-testable without asyncio.  :class:`CoordinatorApp` wraps it in
the same stdlib HTTP dialect as :class:`~repro.serve.server.ServeApp`.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.cache import DEFAULT_COORDINATOR_PORT
from repro.obs.log import get_logger
from repro.obs.metrics import MetricRegistry
from repro.serve.http import BadRequest, read_request, respond
from repro.sim.cache import (
    ResultCache,
    code_version,
    fingerprint,
    resolve_cache_dir,
)
from repro.sim.session import SimRequest

logger = get_logger("cluster.coordinator")

#: Journal format version (bumped on incompatible layout changes).
JOURNAL_VERSION = 1


class StaleWorker(Exception):
    """The worker id is unknown (coordinator restarted, or reaped)."""


class StaleShard(Exception):
    """The shard id is unknown (coordinator restarted since the lease)."""


class VersionMismatch(Exception):
    """Worker and coordinator disagree on the simulator code version."""


# ----------------------------------------------------------------------
# Scheduler state (synchronous, no asyncio)
# ----------------------------------------------------------------------
@dataclass
class Shard:
    """One unit of lease-able work: a handful of cache keys."""

    shard_id: str
    sweep_id: str
    keys: list[str]
    state: str = "pending"  # pending | assigned | done
    worker: str | None = None
    assigned_at: float | None = None
    attempts: int = 0

    def remaining(self, done: set[str], failed: dict[str, str]) -> list[str]:
        """Keys still owed: neither completed nor recorded as failed."""
        return [k for k in self.keys if k not in done and k not in failed]

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "sweep_id": self.sweep_id,
            "keys": list(self.keys),
            "state": self.state,
            "worker": self.worker,
            "attempts": self.attempts,
        }


@dataclass
class WorkerInfo:
    """One registered worker's liveness and accounting."""

    worker_id: str
    name: str
    registered_at: float
    last_heartbeat: float
    alive: bool = True
    stats: dict = field(default_factory=dict)

    def to_dict(self, now: float) -> dict:
        return {
            "worker_id": self.worker_id,
            "name": self.name,
            "alive": self.alive,
            "heartbeat_age": round(now - self.last_heartbeat, 3),
            "stats": dict(self.stats),
        }


class ClusterState:
    """All coordinator bookkeeping; mutated only on the serving thread."""

    def __init__(
        self,
        cache: ResultCache,
        journal_path: Path | str | None = None,
        *,
        shard_size: int = 4,
        heartbeat_timeout: float = 10.0,
        clock=time.monotonic,
    ):
        self.cache = cache
        self.journal_path = Path(journal_path) if journal_path else None
        self.shard_size = max(1, shard_size)
        self.heartbeat_timeout = heartbeat_timeout
        self._clock = clock
        self.code_version = code_version()

        #: every tracked key → its request payload (the unit of work)
        self.units: dict[str, dict] = {}
        self.done: set[str] = set()
        self.failed: dict[str, str] = {}
        self.sweeps: dict[str, dict] = {}
        self.shards: dict[str, Shard] = {}
        self._pending: deque[str] = deque()
        self._key_shard: dict[str, str] = {}
        self.workers: dict[str, WorkerInfo] = {}
        self._worker_seq = 0
        self._shard_seq = 0

        # Flat counters, exported as delta probes via register_metrics.
        self.sweeps_submitted = 0
        self.keys_submitted = 0
        self.keys_skipped_cached = 0
        self.keys_failed = 0
        self.leases = 0
        self.reports = 0
        self.shards_created = 0
        self.shards_reassigned = 0
        self.workers_registered = 0
        self.workers_dead = 0
        self.cache_get_hits = 0
        self.cache_get_misses = 0
        self.put_new = 0
        self.put_dup = 0

    # ------------------------------------------------------------------
    # Sweep submission (idempotent; the resume path is a resubmission)
    # ------------------------------------------------------------------
    @staticmethod
    def expand(requests: list[dict]) -> dict[str, dict]:
        """Validate request payloads and key them; order-preserving."""
        units: dict[str, dict] = {}
        for payload in requests:
            if not isinstance(payload, dict):
                raise BadRequest("each request must be a JSON object")
            try:
                request = SimRequest.from_payload(payload)
                key = fingerprint(request.key_material())
            except (TypeError, ValueError, KeyError) as exc:
                raise BadRequest(f"bad request payload: {exc}") from exc
            units.setdefault(key, request.to_payload())
        return units

    @staticmethod
    def sweep_id_for(keys) -> str:
        """Content-addressed sweep id: same grid → same sweep, always."""
        return "sweep-" + fingerprint({"keys": sorted(keys)})[:12]

    def submit_sweep(
        self, requests: list[dict], shard_size: int | None = None
    ) -> dict:
        """Track a grid; returns the sweep's status view.

        Already-cached keys are marked done immediately, keys already
        tracked (by this or another sweep) are left on their existing
        shards, and only genuinely new work is sharded.
        """
        units = self.expand(requests)
        if not units:
            raise BadRequest("sweep carries no requests")
        sweep_id = self.sweep_id_for(units)
        if sweep_id not in self.sweeps:
            self.sweeps[sweep_id] = {"keys": list(units)}
            self.sweeps_submitted += 1
        self.keys_submitted += len(units)

        fresh: list[str] = []
        for key, payload in units.items():
            if key in self.units:
                continue  # already tracked (possibly by another sweep)
            self.units[key] = payload
            if self.cache.get(key) is not None:
                self.done.add(key)
                self.keys_skipped_cached += 1
            else:
                fresh.append(key)
        self._make_shards(sweep_id, fresh, shard_size or self.shard_size)
        self.save_journal()
        return self.sweep_status(sweep_id)

    def _make_shards(
        self, sweep_id: str, keys: list[str], shard_size: int
    ) -> None:
        for start in range(0, len(keys), max(1, shard_size)):
            chunk = keys[start : start + shard_size]
            self._shard_seq += 1
            shard = Shard(f"shard-{self._shard_seq:04d}", sweep_id, chunk)
            self.shards[shard.shard_id] = shard
            self._pending.append(shard.shard_id)
            for key in chunk:
                self._key_shard[key] = shard.shard_id
            self.shards_created += 1

    def sweep_status(self, sweep_id: str) -> dict:
        if sweep_id not in self.sweeps:
            raise KeyError(sweep_id)
        keys = self.sweeps[sweep_id]["keys"]
        done = sum(1 for k in keys if k in self.done)
        failed = {k: self.failed[k] for k in keys if k in self.failed}
        return {
            "sweep_id": sweep_id,
            "total": len(keys),
            "done": done,
            "failed": failed,
            "pending": len(keys) - done - len(failed),
            "complete": done + len(failed) == len(keys),
        }

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def register_worker(self, info: dict) -> WorkerInfo:
        """Admit one worker; rejects simulator code-version mismatches.

        A worker running different simulator source would compute
        *different* cache keys for the same requests — its results
        could never satisfy this coordinator's grid — so divergence is
        an admission error, not a runtime surprise.
        """
        version = info.get("code_version")
        if version != self.code_version:
            raise VersionMismatch(
                f"worker code version {version!r} != coordinator "
                f"{self.code_version!r}; update the worker's checkout"
            )
        self._worker_seq += 1
        name = str(info.get("name") or f"worker-{self._worker_seq}")
        worker_id = f"w{self._worker_seq:04d}-{name}"
        now = self._clock()
        worker = WorkerInfo(worker_id, name, now, now)
        self.workers[worker_id] = worker
        self.workers_registered += 1
        logger.info(f"worker {worker_id} registered")
        return worker

    def _live_worker(self, worker_id: str) -> WorkerInfo:
        worker = self.workers.get(worker_id)
        if worker is None:
            raise StaleWorker(f"unknown worker {worker_id!r}")
        if not worker.alive:
            # It answered after being reaped: make it re-register so its
            # stats restart cleanly and its old leases stay reassigned.
            raise StaleWorker(f"worker {worker_id!r} was declared dead")
        return worker

    def heartbeat(self, worker_id: str, stats: dict) -> None:
        worker = self._live_worker(worker_id)
        worker.last_heartbeat = self._clock()
        if stats:
            worker.stats = dict(stats)

    def lease(self, worker_id: str) -> dict | None:
        """Hand the next pending shard to ``worker_id`` (None = idle).

        Shards whose keys were all satisfied while queued (cache
        write-through from another worker, a duplicate sweep) are
        retired on the spot instead of being leased as empty work.
        """
        worker = self._live_worker(worker_id)
        worker.last_heartbeat = self._clock()
        while self._pending:
            shard = self.shards[self._pending.popleft()]
            remaining = shard.remaining(self.done, self.failed)
            if not remaining:
                shard.state = "done"
                continue
            shard.state = "assigned"
            shard.worker = worker_id
            shard.assigned_at = self._clock()
            shard.attempts += 1
            self.leases += 1
            return {
                "shard_id": shard.shard_id,
                "sweep_id": shard.sweep_id,
                "attempt": shard.attempts,
                "units": [
                    {"key": key, "request": self.units[key]}
                    for key in remaining
                ],
            }
        return None

    def report(
        self,
        shard_id: str,
        worker_id: str,
        done_keys: list[str],
        failed: dict[str, str],
        stats: dict,
    ) -> dict:
        """Record one shard's outcome (idempotent per key)."""
        shard = self.shards.get(shard_id)
        if shard is None:
            raise StaleShard(f"unknown shard {shard_id!r}")
        worker = self.workers.get(worker_id)
        if worker is not None and worker.alive:
            worker.last_heartbeat = self._clock()
            if stats:
                worker.stats = dict(stats)
        for key in done_keys:
            if key in shard.keys:
                self._mark_done(key)
        for key, error in failed.items():
            if key in shard.keys and key not in self.done:
                if key not in self.failed:
                    self.keys_failed += 1
                self.failed[key] = str(error)
        self.reports += 1
        self._maybe_complete(shard)
        return {"shard": shard.to_dict()}

    def _mark_done(self, key: str) -> None:
        if key in self.done:
            return
        self.done.add(key)
        self.failed.pop(key, None)
        shard_id = self._key_shard.get(key)
        if shard_id is not None:
            self._maybe_complete(self.shards[shard_id])

    def _maybe_complete(self, shard: Shard) -> None:
        if shard.state != "done" and not shard.remaining(
            self.done, self.failed
        ):
            shard.state = "done"
            shard.worker = None

    # ------------------------------------------------------------------
    # Dead-worker detection
    # ------------------------------------------------------------------
    def reap(self) -> list[str]:
        """Declare silent workers dead; requeue their assigned shards."""
        now = self._clock()
        reaped: list[str] = []
        for worker in self.workers.values():
            if not worker.alive:
                continue
            if now - worker.last_heartbeat <= self.heartbeat_timeout:
                continue
            worker.alive = False
            self.workers_dead += 1
            reaped.append(worker.worker_id)
            for shard in self.shards.values():
                if shard.state == "assigned" and shard.worker == worker.worker_id:
                    shard.state = "pending"
                    shard.worker = None
                    self._pending.append(shard.shard_id)
                    self.shards_reassigned += 1
                    logger.warning(
                        f"worker {worker.worker_id} dead "
                        f"(heartbeat {now - worker.last_heartbeat:.1f}s ago); "
                        f"requeued {shard.shard_id}"
                    )
        return reaped

    # ------------------------------------------------------------------
    # Shared cache tier (completion ground truth)
    # ------------------------------------------------------------------
    def cache_get(self, key: str) -> dict | None:
        """Serve one raw entry; trace-bearing entries never travel."""
        payload = self.cache.read_entry(key)
        if payload is not None:
            try:
                _material, result = ResultCache.parse_payload(key, payload)
            except (KeyError, TypeError, ValueError):
                payload = None
            else:
                if result.trace_path is not None:
                    payload = None
        if payload is None:
            self.cache_get_misses += 1
            return None
        self.cache_get_hits += 1
        return payload

    def cache_put(self, key: str, payload: dict) -> bool:
        """Validate + store one pushed entry; marks tracked keys done.

        Returns False for duplicates — ``put_dup == 0`` across a sweep
        is the observable proof that no simulation ran twice.
        """
        novel = self.cache.read_entry(key) is None
        self.cache.put_payload(key, payload)  # raises on corrupt payloads
        if novel:
            self.put_new += 1
        else:
            self.put_dup += 1
        if key in self.units:
            self._mark_done(key)
        return novel

    # ------------------------------------------------------------------
    # Journal (units + sweeps only; the cache is the completion truth)
    # ------------------------------------------------------------------
    def save_journal(self) -> None:
        if self.journal_path is None:
            return
        payload = {
            "version": JOURNAL_VERSION,
            "code": self.code_version,
            "units": self.units,
            "sweeps": self.sweeps,
        }
        path = self.journal_path
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name)
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load_journal(self) -> bool:
        """Rebuild tracked work from the journal; cache decides doneness.

        Failed keys are *not* restored — a coordinator restart is the
        retry button — and unfilled keys are re-sharded from scratch.
        Journals written by a different simulator version are ignored:
        their keys are unreachable under the current code.
        """
        if self.journal_path is None or not self.journal_path.is_file():
            return False
        try:
            with open(self.journal_path) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            logger.warning("unreadable cluster journal; starting fresh")
            return False
        if (
            payload.get("version") != JOURNAL_VERSION
            or payload.get("code") != self.code_version
        ):
            logger.warning("stale cluster journal (version/code); ignoring")
            return False
        units = payload.get("units")
        sweeps = payload.get("sweeps")
        if not isinstance(units, dict) or not isinstance(sweeps, dict):
            return False
        self.units = dict(units)
        self.sweeps = {
            sid: {"keys": list(info.get("keys", []))}
            for sid, info in sweeps.items()
        }
        fresh: list[str] = []
        for key in self.units:
            if self.cache.get(key) is not None:
                self.done.add(key)
            else:
                fresh.append(key)
        by_sweep: dict[str, list[str]] = {}
        for key in fresh:
            owner = next(
                (
                    sid
                    for sid, info in self.sweeps.items()
                    if key in info["keys"]
                ),
                "sweep-recovered",
            )
            by_sweep.setdefault(owner, []).append(key)
        for sweep_id, keys in by_sweep.items():
            self._make_shards(sweep_id, keys, self.shard_size)
        logger.info(
            f"journal recovered: {len(self.units)} keys tracked, "
            f"{len(self.done)} already cached, {len(fresh)} rescheduled"
        )
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shard_counts(self) -> dict[str, int]:
        counts = {"pending": 0, "assigned": 0, "done": 0}
        for shard in self.shards.values():
            counts[shard.state] += 1
        return counts

    def alive_workers(self) -> list[WorkerInfo]:
        return [w for w in self.workers.values() if w.alive]

    def max_heartbeat_age(self) -> float:
        alive = self.alive_workers()
        if not alive:
            return 0.0
        now = self._clock()
        return max(now - w.last_heartbeat for w in alive)

    def simulations_reported(self) -> int:
        return sum(
            int(w.stats.get("simulated", 0)) for w in self.workers.values()
        )

    def status(self) -> dict:
        now = self._clock()
        return {
            "code_version": self.code_version,
            "keys": {
                "total": len(self.units),
                "done": len(self.done),
                "failed": len(self.failed),
                "pending": len(self.units) - len(self.done) - len(self.failed),
            },
            "shards": self.shard_counts(),
            "sweeps": {sid: self.sweep_status(sid) for sid in self.sweeps},
            "workers": [w.to_dict(now) for w in self.workers.values()],
            "counters": {
                "leases": self.leases,
                "reports": self.reports,
                "shards_reassigned": self.shards_reassigned,
                "workers_dead": self.workers_dead,
                "keys_skipped_cached": self.keys_skipped_cached,
                "put_new": self.put_new,
                "put_dup": self.put_dup,
            },
        }

    def register_metrics(self, registry: MetricRegistry) -> None:
        """Export scheduler state under ``cluster.*`` (probes only)."""
        for name in (
            "sweeps_submitted",
            "keys_submitted",
            "keys_skipped_cached",
            "keys_failed",
            "leases",
            "reports",
            "shards_created",
            "shards_reassigned",
            "workers_registered",
            "workers_dead",
            "cache_get_hits",
            "cache_get_misses",
            "put_new",
            "put_dup",
        ):
            registry.probe(
                f"cluster.{name}",
                (lambda attr=name: getattr(self, attr)),
                kind="delta",
            )
        registry.probe("cluster.keys_total", lambda: len(self.units))
        registry.probe("cluster.keys_done", lambda: len(self.done))
        registry.probe(
            "cluster.keys_pending",
            lambda: len(self.units) - len(self.done) - len(self.failed),
        )
        for state in ("pending", "assigned", "done"):
            registry.probe(
                f"cluster.shards_{state}",
                (lambda s=state: self.shard_counts()[s]),
            )
        registry.probe(
            "cluster.workers_alive", lambda: len(self.alive_workers())
        )
        registry.probe(
            "cluster.worker_heartbeat_age_max", self.max_heartbeat_age
        )
        registry.probe(
            "cluster.simulations_reported",
            self.simulations_reported,
            kind="delta",
        )


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CoordinatorConfig:
    """Everything ``repro cluster coordinator`` needs to boot."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_COORDINATOR_PORT
    cache_dir: str | None = None
    shard_size: int = 4
    heartbeat_timeout: float = 10.0
    heartbeat_interval: float = 2.0
    #: ignore any existing journal instead of resuming from it
    fresh: bool = False


class CoordinatorApp:
    """Routes cluster HTTP traffic onto one :class:`ClusterState`."""

    def __init__(self, config: CoordinatorConfig):
        self.config = config
        cache_root = resolve_cache_dir(config.cache_dir)
        self.cache = ResultCache(cache_root)
        self.state = ClusterState(
            self.cache,
            cache_root / "cluster" / "journal.json",
            shard_size=config.shard_size,
            heartbeat_timeout=config.heartbeat_timeout,
        )
        if not config.fresh:
            self.state.load_journal()
        self.metrics = MetricRegistry(enabled=True)
        self.requests = self.metrics.counter("cluster.http_requests")
        self.state.register_metrics(self.metrics)
        self._server: asyncio.base_events.Server | None = None
        self._reaper: asyncio.Task | None = None
        self._stopped = asyncio.Event()
        self._shutting_down = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self._reaper = asyncio.ensure_future(self._reap_loop())
        logger.info(
            f"cluster coordinator listening on http://{host}:{port} "
            f"(cache {self.cache.root}, heartbeat timeout "
            f"{self.config.heartbeat_timeout:.0f}s)"
        )
        return host, port

    async def shutdown(self) -> None:
        if self._shutting_down:
            await self._stopped.wait()
            return
        self._shutting_down = True
        if self._reaper is not None:
            self._reaper.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.state.save_journal()
        self._stopped.set()

    async def serve_until_stopped(self) -> None:
        await self._stopped.wait()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()

        def _initiate(signame: str) -> None:
            logger.info(f"received {signame}: stopping coordinator")
            asyncio.ensure_future(self.shutdown())

        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, _initiate, sig.name)

    async def _reap_loop(self) -> None:
        interval = max(0.05, self.config.heartbeat_timeout / 4)
        try:
            while True:
                await asyncio.sleep(interval)
                self.state.reap()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # HTTP plumbing (same dialect as repro.serve)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                method, path, query, body = await read_request(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except BadRequest as exc:
                await respond(writer, 400, {"error": str(exc)})
                return
            self.requests.inc()
            try:
                await self._route(writer, method, path, query, body)
            except BadRequest as exc:
                await respond(writer, 400, {"error": str(exc)})
            except StaleWorker as exc:
                await respond(
                    writer, 404, {"error": str(exc), "code": "unknown-worker"}
                )
            except StaleShard as exc:
                await respond(
                    writer, 404, {"error": str(exc), "code": "unknown-shard"}
                )
            except VersionMismatch as exc:
                await respond(
                    writer, 409, {"error": str(exc), "code": "code-version"}
                )
            except KeyError as exc:
                await respond(writer, 404, {"error": f"not found: {exc}"})
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                logger.warning(f"internal error serving {path}: {exc}")
                await respond(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError, asyncio.CancelledError):
                pass

    @staticmethod
    def _json_body(body: bytes) -> dict:
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise BadRequest("body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, writer, method, path, query, body) -> None:
        state = self.state
        if path == "/healthz" and method == "GET":
            await respond(
                writer,
                200,
                {
                    "status": "ok",
                    "keys": len(state.units),
                    "workers": len(state.alive_workers()),
                    "code_version": state.code_version,
                },
            )
            return
        if path in ("/v1/metrics", "/metrics") and method == "GET":
            await respond(writer, 200, {"metrics": self.metrics.read_all()})
            return
        if path == "/v1/status" and method == "GET":
            await respond(writer, 200, state.status())
            return
        if path == "/v1/sweeps" and method == "POST":
            payload = self._json_body(body)
            requests = payload.get("requests")
            if not isinstance(requests, list):
                raise BadRequest('body must carry a "requests" array')
            shard_size = payload.get("shard_size")
            if shard_size is not None and (
                not isinstance(shard_size, int) or shard_size < 1
            ):
                raise BadRequest("shard_size must be a positive integer")
            sweep = state.submit_sweep(requests, shard_size)
            await respond(writer, 200, {"sweep": sweep})
            return
        if path.startswith("/v1/sweeps/") and method == "GET":
            sweep_id = path.split("/")[3]
            await respond(
                writer, 200, {"sweep": state.sweep_status(sweep_id)}
            )
            return
        if path == "/v1/workers/register" and method == "POST":
            worker = state.register_worker(self._json_body(body))
            await respond(
                writer,
                200,
                {
                    "worker_id": worker.worker_id,
                    "heartbeat_interval": self.config.heartbeat_interval,
                    "heartbeat_timeout": self.config.heartbeat_timeout,
                },
            )
            return
        if path.startswith("/v1/workers/") and method == "POST":
            parts = path.split("/")  # '', 'v1', 'workers', '<id>', verb
            if len(parts) == 5 and parts[4] == "heartbeat":
                payload = self._json_body(body)
                state.heartbeat(parts[3], payload.get("stats") or {})
                await respond(writer, 200, {"ok": True})
                return
            if len(parts) == 5 and parts[4] == "lease":
                shard = state.lease(parts[3])
                await respond(
                    writer,
                    200,
                    {
                        "shard": shard,
                        "idle_for": self.config.heartbeat_interval,
                    },
                )
                return
        if path.startswith("/v1/shards/") and method == "POST":
            parts = path.split("/")  # '', 'v1', 'shards', '<id>', 'report'
            if len(parts) == 5 and parts[4] == "report":
                payload = self._json_body(body)
                worker_id = payload.get("worker_id", "")
                done = payload.get("done") or []
                failed = payload.get("failed") or {}
                if not isinstance(done, list) or not isinstance(failed, dict):
                    raise BadRequest(
                        '"done" must be an array and "failed" an object'
                    )
                reply = state.report(
                    parts[3],
                    worker_id,
                    [str(k) for k in done],
                    {str(k): str(v) for k, v in failed.items()},
                    payload.get("stats") or {},
                )
                await respond(writer, 200, reply)
                return
        if path.startswith("/v1/cache/"):
            key = path.split("/")[3]
            if method == "GET":
                entry = self.state.cache_get(key)
                if entry is None:
                    await respond(writer, 404, {"error": "cache miss"})
                else:
                    await respond(writer, 200, {"entry": entry})
                return
            if method == "PUT":
                payload = self._json_body(body)
                try:
                    stored = self.state.cache_put(key, payload)
                except (KeyError, TypeError, ValueError) as exc:
                    raise BadRequest(f"rejected cache entry: {exc}") from exc
                await respond(writer, 200, {"stored": stored})
                return
        await respond(writer, 404, {"error": f"no route {path}"})


async def start_coordinator(
    config: CoordinatorConfig,
) -> tuple[CoordinatorApp, str, int]:
    """Boot a coordinator programmatically; returns (app, host, port)."""
    app = CoordinatorApp(config)
    host, port = await app.start()
    return app, host, port


def run_coordinator(config: CoordinatorConfig) -> int:
    """Blocking CLI entry: coordinate until SIGTERM/SIGINT."""

    async def _main() -> None:
        app = CoordinatorApp(config)
        await app.start()
        app.install_signal_handlers()
        await app.serve_until_stopped()
        logger.info("cluster coordinator stopped")

    asyncio.run(_main())
    return 0

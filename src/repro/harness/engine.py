"""The shared experiment engine: declarative specs over Session artifacts.

An experiment is a *workload × config grid* plus a *pure reduction*:

* :class:`Variant` — one named simulator configuration (policy,
  scheduler, latencies, arbitrary :class:`~repro.gpu.config.GPUConfig`
  overrides);
* :class:`ExperimentSpec` — which benchmarks × which variants to run,
  and a reduction turning the resulting grid of
  :class:`~repro.sim.result.RunResult` artifacts into an
  :class:`~repro.analysis.report.ExperimentResult` table;
* :func:`evaluate` — the one engine that expands the grid, hands every
  request to the :class:`~repro.sim.session.Session` (which dedupes,
  caches, and optionally parallelizes), and applies the reduction.

Because all execution funnels through the session, two experiments that
share a (kernel, config) pair — e.g. the Figure 9 and Figure 14 baseline
runs — share one simulation, and a warm on-disk cache re-renders any
table without simulating at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.report import ExperimentResult
from repro.sim.result import RunResult
from repro.sim.session import Session, SimRequest

#: Label of the per-experiment summary row.
AVERAGE = "AVERAGE"


@dataclass(frozen=True)
class Variant:
    """One named point of an experiment's configuration grid."""

    name: str
    policy: str = "warped"
    scheduler: str = "gto"
    compression_latency: int = 2
    decompression_latency: int = 1
    rfc_entries: int = 0
    timing: bool = True
    collect_bdi: bool = False
    config_overrides: tuple[tuple[str, object], ...] = ()
    #: functional variants only: price via the session's trace-replay
    #: tier instead of executing the kernel (see repro.harness.sweeps)
    replay: bool = False

    def request(self, benchmark: str, scale: str) -> SimRequest:
        """The simulation request this variant needs for one benchmark."""
        return SimRequest(
            benchmark=benchmark,
            policy=self.policy,
            scheduler=self.scheduler,
            compression_latency=self.compression_latency,
            decompression_latency=self.decompression_latency,
            rfc_entries=self.rfc_entries,
            timing=self.timing,
            collect_bdi=self.collect_bdi,
            scale=scale,
            config_overrides=self.config_overrides,
            replay=self.replay,
        )


class ResultGrid:
    """benchmark × variant grid of RunResult artifacts (read-only)."""

    def __init__(
        self,
        benchmarks: list[str],
        results: dict[tuple[str, str], RunResult],
    ):
        self.benchmarks = benchmarks
        self._results = results

    def get(self, benchmark: str, variant: str) -> RunResult:
        try:
            return self._results[(benchmark, variant)]
        except KeyError:
            raise KeyError(
                f"no result for benchmark {benchmark!r}, variant {variant!r}"
            ) from None


@dataclass(frozen=True)
class ExperimentSpec:
    """One table/figure: a config grid plus a pure reduction function.

    Calling a spec with a :class:`Session` evaluates it, so specs are
    drop-in replacements for the old imperative driver functions.
    """

    exp_id: str
    title: str
    reduce: Callable[[ResultGrid], ExperimentResult]
    variants: tuple[Variant, ...] = ()
    #: explicit benchmark list; ``None`` follows the session's suite
    suite: tuple[str, ...] | None = None
    #: draw benchmarks from the extended (non-paper) suite instead
    extended: bool = False

    def __call__(self, session: Session) -> ExperimentResult:
        return evaluate(self, session)

    def resolve_benchmarks(self, session: Session) -> list[str]:
        if self.extended:
            from repro.kernels import benchmark_names

            return benchmark_names(extended=True)
        if self.suite is not None:
            return session.benchmarks(list(self.suite))
        return session.benchmarks()

    def requests(self, session: Session) -> dict[tuple[str, str], SimRequest]:
        """The full workload × config grid as concrete requests."""
        return {
            (benchmark, variant.name): variant.request(benchmark, session.scale)
            for benchmark in self.resolve_benchmarks(session)
            for variant in self.variants
        }


def evaluate(spec: ExperimentSpec, session: Session) -> ExperimentResult:
    """Expand ``spec``'s grid, run it through ``session``, reduce."""
    requests = spec.requests(session)
    results = session.run_many(requests.values()) if requests else {}
    grid = ResultGrid(
        benchmarks=spec.resolve_benchmarks(session),
        results={
            cell: results[request] for cell, request in requests.items()
        },
    )
    result = spec.reduce(grid)
    if result.exp_id != spec.exp_id:
        raise ValueError(
            f"reduction for {spec.exp_id!r} produced {result.exp_id!r}"
        )
    return result


@dataclass(frozen=True)
class _SpecBuilder:
    """Decorator sugar: ``@experiment(...)`` turns a reduction into a spec."""

    exp_id: str
    title: str
    variants: tuple[Variant, ...] = ()
    suite: tuple[str, ...] | None = None
    extended: bool = False

    def __call__(
        self, reduce: Callable[[ResultGrid], ExperimentResult]
    ) -> ExperimentSpec:
        return ExperimentSpec(
            exp_id=self.exp_id,
            title=self.title,
            reduce=reduce,
            variants=self.variants,
            suite=self.suite,
            extended=self.extended,
        )


def experiment(
    exp_id: str,
    title: str,
    variants: tuple[Variant, ...] | list[Variant] = (),
    suite: tuple[str, ...] | None = None,
    extended: bool = False,
) -> _SpecBuilder:
    """Declare an experiment: grid in the decorator, reduction below it."""
    return _SpecBuilder(
        exp_id=exp_id,
        title=title,
        variants=tuple(variants),
        suite=suite,
        extended=extended,
    )

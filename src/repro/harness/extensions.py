"""Extension experiments beyond the paper's evaluation.

* :func:`rfc_orthogonality` — measures the paper's Section 7 claim that
  register compression is *orthogonal* to the register file cache of
  Gebhart et al. (ISCA 2011): RFC filters bank accesses through a small
  per-warp cache, warped-compression shrinks the accesses that remain,
  and the two compose.
* :func:`rfc_size_sweep` — RFC capacity sensitivity under composition.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentResult
from repro.harness.sweeps import SimulationCache

AVERAGE = "AVERAGE"


def rfc_orthogonality(cache: SimulationCache) -> ExperimentResult:
    """Energy of WC, RFC, and WC+RFC, all normalised to the baseline."""
    designs = [
        ("warped", dict(policy="warped")),
        ("rfc", dict(policy="baseline", rfc_entries=6)),
        ("rfc+warped", dict(policy="warped", rfc_entries=6)),
    ]
    result = ExperimentResult(
        exp_id="ext-rfc",
        title="Normalised RF energy: compression vs register file cache "
        "vs both",
        headers=["benchmark"] + [name for name, _ in designs],
        notes="RFC = 6-entry per-warp write-back cache (Gebhart et al.); "
        "the paper argues the techniques are orthogonal",
    )
    sums = np.zeros(len(designs))
    rows = 0
    for name in cache.benchmarks():
        base = cache.timing_run(name, policy="baseline").energy
        cells = []
        for _, overrides in designs:
            run = cache.timing_run(name, **overrides)
            cells.append(run.energy.normalized_to(base)["total"])
        result.add_row(name, *cells)
        sums += np.array(cells)
        rows += 1
    result.add_row(AVERAGE, *(sums / rows))
    return result


def rfc_size_sweep(cache: SimulationCache) -> ExperimentResult:
    """RFC capacity sweep with compression enabled."""
    sizes = [2, 4, 6, 12]
    result = ExperimentResult(
        exp_id="ext-rfc-size",
        title="Normalised RF energy (warped + RFC) vs RFC entries/warp",
        headers=["benchmark"] + [f"rfc{n}" for n in sizes],
    )
    subset = cache.benchmarks(["lib", "aes", "spmv"])
    sums = np.zeros(len(sizes))
    rows = 0
    for name in subset:
        base = cache.timing_run(name, policy="baseline").energy
        cells = []
        for n in sizes:
            run = cache.timing_run(name, policy="warped", rfc_entries=n)
            cells.append(run.energy.normalized_to(base)["total"])
        result.add_row(name, *cells)
        sums += np.array(cells)
        rows += 1
    result.add_row(AVERAGE, *(sums / rows))
    return result


def extended_suite(cache: SimulationCache) -> ExperimentResult:
    """Figure-9-style energy over the nine extended-suite kernels.

    A generalisation check: the paper's savings should not be an artifact
    of its particular twelve benchmarks.
    """
    from repro.kernels import benchmark_names

    result = ExperimentResult(
        exp_id="ext-suite",
        title="Normalised RF energy on the extended (non-paper) suite",
        headers=["benchmark", "wc_total", "slowdown"],
    )
    energies, times = [], []
    for name in benchmark_names(extended=True):
        base = cache.timing_run(name, policy="baseline")
        wc = cache.timing_run(name, policy="warped")
        total = wc.energy.normalized_to(base.energy)["total"]
        slowdown = wc.cycles / base.cycles
        result.add_row(name, total, slowdown)
        energies.append(total)
        times.append(slowdown)
    result.add_row(AVERAGE, float(np.mean(energies)), float(np.mean(times)))
    return result


EXTENSIONS = {
    "ext-rfc": rfc_orthogonality,
    "ext-rfc-size": rfc_size_sweep,
    "ext-suite": extended_suite,
}

"""Extension experiments beyond the paper's evaluation.

* ``rfc_orthogonality`` — measures the paper's Section 7 claim that
  register compression is *orthogonal* to the register file cache of
  Gebhart et al. (ISCA 2011): RFC filters bank accesses through a small
  per-warp cache, warped-compression shrinks the accesses that remain,
  and the two compose.
* ``rfc_size_sweep`` — RFC capacity sensitivity under composition.
* ``extended_suite`` — Figure-9-style energy over the nine
  extended-suite kernels (a generalisation check).

All are :class:`~repro.harness.engine.ExperimentSpec` grids over the
shared session, so e.g. the plain baseline/warped runs dedupe with the
paper figures' simulations.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentResult
from repro.harness.engine import (
    AVERAGE,
    ExperimentSpec,
    ResultGrid,
    Variant,
    experiment,
)
from repro.harness.experiments import BASELINE, WARPED, _mean

_RFC_SIZES = (2, 4, 6, 12)


@experiment(
    "ext-rfc",
    "Normalised RF energy: compression vs register file cache vs both",
    variants=[
        BASELINE,
        WARPED,
        Variant("rfc", policy="baseline", rfc_entries=6),
        Variant("rfc+warped", rfc_entries=6),
    ],
)
def rfc_orthogonality(grid: ResultGrid) -> ExperimentResult:
    """Energy of WC, RFC, and WC+RFC, all normalised to the baseline."""
    designs = ("warped", "rfc", "rfc+warped")
    result = ExperimentResult(
        exp_id="ext-rfc",
        title="Normalised RF energy: compression vs register file cache "
        "vs both",
        headers=["benchmark"] + list(designs),
        notes="RFC = 6-entry per-warp write-back cache (Gebhart et al.); "
        "the paper argues the techniques are orthogonal",
    )
    sums = np.zeros(len(designs))
    rows = 0
    for name in grid.benchmarks:
        base = grid.get(name, "baseline").energy
        cells = [
            grid.get(name, design).energy.normalized_to(base)["total"]
            for design in designs
        ]
        result.add_row(name, *cells)
        sums += np.array(cells)
        rows += 1
    result.add_row(AVERAGE, *(sums / rows))
    return result


@experiment(
    "ext-rfc-size",
    "Normalised RF energy (warped + RFC) vs RFC entries/warp",
    variants=[BASELINE]
    + [Variant(f"rfc{n}", rfc_entries=n) for n in _RFC_SIZES],
    suite=("lib", "aes", "spmv"),
)
def rfc_size_sweep(grid: ResultGrid) -> ExperimentResult:
    """RFC capacity sweep with compression enabled."""
    result = ExperimentResult(
        exp_id="ext-rfc-size",
        title="Normalised RF energy (warped + RFC) vs RFC entries/warp",
        headers=["benchmark"] + [f"rfc{n}" for n in _RFC_SIZES],
    )
    sums = np.zeros(len(_RFC_SIZES))
    rows = 0
    for name in grid.benchmarks:
        base = grid.get(name, "baseline").energy
        cells = [
            grid.get(name, f"rfc{n}").energy.normalized_to(base)["total"]
            for n in _RFC_SIZES
        ]
        result.add_row(name, *cells)
        sums += np.array(cells)
        rows += 1
    result.add_row(AVERAGE, *(sums / rows))
    return result


@experiment(
    "ext-suite",
    "Normalised RF energy on the extended (non-paper) suite",
    variants=[BASELINE, WARPED],
    extended=True,
)
def extended_suite(grid: ResultGrid) -> ExperimentResult:
    """Figure-9-style energy over the nine extended-suite kernels.

    A generalisation check: the paper's savings should not be an artifact
    of its particular twelve benchmarks.
    """
    result = ExperimentResult(
        exp_id="ext-suite",
        title="Normalised RF energy on the extended (non-paper) suite",
        headers=["benchmark", "wc_total", "slowdown"],
    )
    energies, times = [], []
    for name in grid.benchmarks:
        base = grid.get(name, "baseline")
        wc = grid.get(name, "warped")
        total = wc.energy.normalized_to(base.energy)["total"]
        slowdown = wc.cycles / base.cycles
        result.add_row(name, total, slowdown)
        energies.append(total)
        times.append(slowdown)
    result.add_row(AVERAGE, _mean(energies), _mean(times))
    return result


EXTENSIONS: dict[str, ExperimentSpec] = {
    "ext-rfc": rfc_orthogonality,
    "ext-rfc-size": rfc_size_sweep,
    "ext-suite": extended_suite,
}

"""One declarative spec per paper table/figure.

Every public ``figNN``/``tableN`` name is an
:class:`~repro.harness.engine.ExperimentSpec`: a workload × config grid
plus a pure reduction from the grid of
:class:`~repro.sim.result.RunResult` artifacts to an
:class:`~repro.analysis.report.ExperimentResult` whose rows mirror the
corresponding plot in the paper (one row per benchmark plus an average
row, columns = the plotted series).

Specs are callable — ``fig09(session)`` evaluates the grid through the
shared engine — so the registry, the CLI, and the bench suite all drive
them the same way.  No spec simulates anything itself: all execution
(memoized, disk-cached, optionally parallel) happens in the
:class:`~repro.sim.session.Session`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.analysis.report import ExperimentResult
from repro.analysis.similarity import BDI_CHOICES, SimilarityBin
from repro.core.bdi import TABLE1_ENCODINGS
from repro.harness.engine import (
    AVERAGE,
    ExperimentSpec,
    ResultGrid,
    Variant,
    experiment,
)
from repro.sim.session import Session

_STATIC_POLICIES = ("static-4-0", "static-4-1", "static-4-2")

#: Shared grid points — identical variants dedupe to one simulation.
FUNC = Variant("func", timing=False)
FUNC_BDI = Variant("func-bdi", timing=False, collect_bdi=True)
BASELINE = Variant("baseline", policy="baseline")
WARPED = Variant("warped")


def _mean(values: list[float]) -> float:
    return float(np.mean(values)) if values else 0.0


def _mean_opt(values: list[float | None]) -> float | None:
    present = [v for v in values if v is not None]
    return float(np.mean(present)) if present else None


# ----------------------------------------------------------------------
# Table 1 — static BDI size arithmetic (no simulation at all)
# ----------------------------------------------------------------------
@experiment("table1", "Possible combinations of chunk size")
def table1(grid: ResultGrid) -> ExperimentResult:
    """Compressed sizes and bank counts per <base, delta> pair."""
    result = ExperimentResult(
        exp_id="table1",
        title="Possible combinations of chunk size",
        headers=["<base,delta>", "comp_bytes", "banks"],
        notes="computed from eq. (1) for a 128-byte warp register",
    )
    for enc in TABLE1_ENCODINGS:
        result.add_row(str(enc), enc.compressed_size(128), enc.banks(128))
    return result


# ----------------------------------------------------------------------
# Figure 2 — value-similarity bins
# ----------------------------------------------------------------------
@experiment(
    "fig02",
    "Characterization of register values (fractions of writes)",
    variants=[FUNC],
)
def fig02(grid: ResultGrid) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig02",
        title="Characterization of register values (fractions of writes)",
        headers=["benchmark"]
        + [f"nd_{b.label}" for b in SimilarityBin]
        + [f"d_{b.label}" for b in SimilarityBin],
    )
    columns: list[list[float | None]] = [[] for _ in range(8)]
    for name in grid.benchmarks:
        v = grid.get(name, "func").value
        nd = v.similarity_fractions(divergent=False)
        cells: list[float | None] = [nd[b] for b in SimilarityBin]
        if int(v.writes[1]) > 0:
            d = v.similarity_fractions(divergent=True)
            cells += [d[b] for b in SimilarityBin]
        else:
            # No divergent writes at all: N/A, like the paper's AES bars.
            cells += [None] * 4
        result.add_row(name, *cells)
        for col, cell in zip(columns, cells):
            col.append(cell)
    result.add_row(AVERAGE, *[_mean_opt(col) for col in columns])
    return result


# ----------------------------------------------------------------------
# Figure 3 — non-divergent instruction share
# ----------------------------------------------------------------------
@experiment(
    "fig03", "Ratio of non-diverged warp instructions", variants=[FUNC]
)
def fig03(grid: ResultGrid) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig03",
        title="Ratio of non-diverged warp instructions",
        headers=["benchmark", "nondivergent"],
    )
    values = []
    for name in grid.benchmarks:
        v = grid.get(name, "func").value
        result.add_row(name, v.nondivergent_fraction)
        values.append(v.nondivergent_fraction)
    result.add_row(AVERAGE, _mean(values))
    return result


# ----------------------------------------------------------------------
# Figure 5 — best <base,delta> breakdown
# ----------------------------------------------------------------------
@experiment(
    "fig05",
    "Breakdown of <base,delta> achieving best compression",
    variants=[FUNC_BDI],
)
def fig05(grid: ResultGrid) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig05",
        title="Breakdown of <base,delta> achieving best compression",
        headers=["benchmark"] + list(BDI_CHOICES),
    )
    sums = np.zeros(len(BDI_CHOICES))
    rows = 0
    for name in grid.benchmarks:
        v = grid.get(name, "func-bdi").value
        fractions = v.bdi_fractions()
        cells = [fractions.get(c, 0.0) for c in BDI_CHOICES]
        result.add_row(name, *cells)
        sums += np.array(cells)
        rows += 1
    result.add_row(AVERAGE, *(sums / rows))
    return result


# ----------------------------------------------------------------------
# Figure 8 — compression ratio by phase
# ----------------------------------------------------------------------
@experiment(
    "fig08",
    "Compression ratio (achievable), non-divergent vs divergent",
    variants=[FUNC],
)
def fig08(grid: ResultGrid) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig08",
        title="Compression ratio (achievable), non-divergent vs divergent",
        headers=["benchmark", "nondivergent", "divergent"],
        notes="divergent ratio assumes decompress-merge-recompress "
        "(the paper's Figure 8 methodology)",
    )
    nd_all, d_all = [], []
    for name in grid.benchmarks:
        v = grid.get(name, "func").value
        nd = v.compression_ratio(divergent=False, achievable=True)
        has_div = int(v.writes[1]) > 0
        d = v.compression_ratio(divergent=True, achievable=True) if has_div else None
        result.add_row(name, nd, d)
        nd_all.append(nd)
        if d is not None:
            d_all.append(d)
    result.add_row(AVERAGE, _mean(nd_all), _mean(d_all))
    return result


# ----------------------------------------------------------------------
# Figure 9 — register file energy
# ----------------------------------------------------------------------
@experiment(
    "fig09",
    "Register file energy, normalised to the uncompressed baseline",
    variants=[BASELINE, WARPED],
)
def fig09(grid: ResultGrid) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig09",
        title="Register file energy, normalised to the uncompressed baseline",
        headers=[
            "benchmark",
            "base_dyn",
            "base_leak",
            "wc_dyn",
            "wc_leak",
            "wc_comp",
            "wc_decomp",
            "wc_total",
        ],
    )
    totals = []
    sums = np.zeros(6)
    for name in grid.benchmarks:
        base = grid.get(name, "baseline").energy
        wc = grid.get(name, "warped").energy
        norm = wc.normalized_to(base)
        row = [
            base.dynamic_pj / base.total_pj,
            base.leakage_pj / base.total_pj,
            norm["dynamic"],
            norm["leakage"],
            norm["compression"],
            norm["decompression"],
        ]
        result.add_row(name, *row, norm["total"])
        totals.append(norm["total"])
        sums += np.array(row)
    n = len(totals)
    result.add_row(AVERAGE, *(sums / n), _mean(totals))
    return result


# ----------------------------------------------------------------------
# Figure 10 — power-gated cycles per bank
# ----------------------------------------------------------------------
@experiment(
    "fig10",
    "Fraction of cycles each register bank is power-gated (suite average)",
    variants=[WARPED],
)
def fig10(grid: ResultGrid) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig10",
        title="Fraction of cycles each register bank is power-gated "
        "(suite average)",
        headers=["bank", "gated_fraction"],
        notes="banks 0-7, 8-15, 16-23, 24-31 are the four clusters; "
        "compressed data packs into the lowest banks of each cluster",
    )
    per_bank: np.ndarray | None = None
    count = 0
    for name in grid.benchmarks:
        fractions = grid.get(name, "warped").gated_fractions
        if fractions is None:
            continue
        arr = np.asarray(fractions)
        per_bank = arr if per_bank is None else per_bank + arr
        count += 1
    per_bank = per_bank / count
    for bank, fraction in enumerate(per_bank):
        result.add_row(f"bank{bank:02d}", float(fraction))
    result.add_row(AVERAGE, float(per_bank.mean()))
    return result


# ----------------------------------------------------------------------
# Figure 11 — dummy MOV share
# ----------------------------------------------------------------------
@experiment(
    "fig11",
    "Dummy MOV instructions as a fraction of all instructions",
    variants=[WARPED],
)
def fig11(grid: ResultGrid) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig11",
        title="Dummy MOV instructions as a fraction of all instructions",
        headers=["benchmark", "mov_fraction"],
    )
    values = []
    for name in grid.benchmarks:
        v = grid.get(name, "warped").value
        result.add_row(name, v.mov_fraction)
        values.append(v.mov_fraction)
    result.add_row(AVERAGE, _mean(values))
    return result


# ----------------------------------------------------------------------
# Figure 12 — compressed-register occupancy by phase
# ----------------------------------------------------------------------
@experiment(
    "fig12",
    "Fraction of allocated registers in compressed state",
    variants=[WARPED],
)
def fig12(grid: ResultGrid) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig12",
        title="Fraction of allocated registers in compressed state",
        headers=["benchmark", "nondivergent", "divergent"],
        notes="divergent column is N/A for benchmarks that never diverge",
    )
    nd_all, d_all = [], []
    for name in grid.benchmarks:
        v = grid.get(name, "warped").value
        nd = v.compressed_register_fraction(divergent=False)
        d = v.compressed_register_fraction(divergent=True)
        result.add_row(name, nd, d)
        nd_all.append(nd)
        d_all.append(d)
    result.add_row(AVERAGE, _mean_opt(nd_all), _mean_opt(d_all))
    return result


# ----------------------------------------------------------------------
# Figure 13 — execution-time impact
# ----------------------------------------------------------------------
@experiment(
    "fig13",
    "Execution time with compression, normalised to baseline",
    variants=[BASELINE, WARPED],
)
def fig13(grid: ResultGrid) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig13",
        title="Execution time with compression, normalised to baseline",
        headers=["benchmark", "slowdown"],
    )
    values = []
    for name in grid.benchmarks:
        base = grid.get(name, "baseline").cycles
        wc = grid.get(name, "warped").cycles
        result.add_row(name, wc / base)
        values.append(wc / base)
    result.add_row(AVERAGE, _mean(values))
    return result


# ----------------------------------------------------------------------
# Figure 14 — GTO vs LRR energy
# ----------------------------------------------------------------------
@experiment(
    "fig14",
    "Normalised RF energy under GTO and LRR warp scheduling",
    variants=[
        BASELINE,
        WARPED,
        Variant("baseline-lrr", policy="baseline", scheduler="lrr"),
        Variant("warped-lrr", scheduler="lrr"),
    ],
)
def fig14(grid: ResultGrid) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig14",
        title="Normalised RF energy under GTO and LRR warp scheduling",
        headers=["benchmark", "gto", "lrr"],
    )
    pairs = (("baseline", "warped"), ("baseline-lrr", "warped-lrr"))
    gto_all, lrr_all = [], []
    for name in grid.benchmarks:
        row = []
        for base_variant, wc_variant in pairs:
            base = grid.get(name, base_variant).energy
            wc = grid.get(name, wc_variant).energy
            row.append(wc.normalized_to(base)["total"])
        result.add_row(name, *row)
        gto_all.append(row[0])
        lrr_all.append(row[1])
    result.add_row(AVERAGE, _mean(gto_all), _mean(lrr_all))
    return result


# ----------------------------------------------------------------------
# Figures 15/16 — static compression parameter choices
# ----------------------------------------------------------------------
@experiment(
    "fig15",
    "Compression ratio: dynamic warped-compression vs static parameter "
    "choices",
    variants=[Variant("warped-func", timing=False)]
    + [Variant(p, policy=p, timing=False) for p in _STATIC_POLICIES],
)
def fig15(grid: ResultGrid) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig15",
        title="Compression ratio: dynamic warped-compression vs static "
        "parameter choices",
        headers=["benchmark", "warped", "<4,0>", "<4,1>", "<4,2>"],
    )
    sums = np.zeros(4)
    rows = 0
    for name in grid.benchmarks:
        cells = []
        for variant in ("warped-func",) + _STATIC_POLICIES:
            v = grid.get(name, variant).value
            cells.append(v.overall_compression_ratio(achievable=False))
        result.add_row(name, *cells)
        sums += np.array(cells)
        rows += 1
    result.add_row(AVERAGE, *(sums / rows))
    return result


@experiment(
    "fig16",
    "Normalised RF energy: dynamic vs static parameter choices",
    variants=[BASELINE, WARPED]
    + [Variant(p, policy=p) for p in _STATIC_POLICIES],
)
def fig16(grid: ResultGrid) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig16",
        title="Normalised RF energy: dynamic vs static parameter choices",
        headers=["benchmark", "warped", "<4,0>", "<4,1>", "<4,2>"],
    )
    sums = np.zeros(4)
    rows = 0
    for name in grid.benchmarks:
        base = grid.get(name, "baseline").energy
        cells = []
        for variant in ("warped",) + _STATIC_POLICIES:
            wc = grid.get(name, variant).energy
            cells.append(wc.normalized_to(base)["total"])
        result.add_row(name, *cells)
        sums += np.array(cells)
        rows += 1
    result.add_row(AVERAGE, *(sums / rows))
    return result


# ----------------------------------------------------------------------
# Figures 17/18/19 — energy-constant sweeps (re-priced, no re-simulation)
# ----------------------------------------------------------------------
def _reprice_reduce(
    grid: ResultGrid,
    exp_id: str,
    title: str,
    scales: list[float],
    scale_kwargs: Callable[[float], dict],
    notes: str = "",
) -> ExperimentResult:
    headers = ["benchmark"] + [f"x{s:g}" for s in scales]
    result = ExperimentResult(
        exp_id=exp_id, title=title, headers=headers, notes=notes
    )
    sums = np.zeros(len(scales))
    rows = 0
    for name in grid.benchmarks:
        base_model = grid.get(name, "baseline").energy_model
        wc_model = grid.get(name, "warped").energy_model
        cells = []
        for s in scales:
            params = base_model.params.scaled(**scale_kwargs(s))
            base = base_model.reprice(params)
            wc = wc_model.reprice(params)
            cells.append(wc.normalized_to(base)["total"])
        result.add_row(name, *cells)
        sums += np.array(cells)
        rows += 1
    result.add_row(AVERAGE, *(sums / rows))
    return result


@experiment(
    "fig17",
    "Normalised RF energy vs compression/decompression unit energy",
    variants=[BASELINE, WARPED],
)
def fig17(grid: ResultGrid) -> ExperimentResult:
    return _reprice_reduce(
        grid,
        "fig17",
        "Normalised RF energy vs compression/decompression unit energy",
        [1.0, 1.5, 2.0, 2.5],
        lambda s: dict(comp_decomp=s),
    )


@experiment(
    "fig18",
    "Normalised RF energy vs per-bank access energy",
    variants=[BASELINE, WARPED],
)
def fig18(grid: ResultGrid) -> ExperimentResult:
    return _reprice_reduce(
        grid,
        "fig18",
        "Normalised RF energy vs per-bank access energy",
        [1.0, 1.5, 2.0, 2.5],
        lambda s: dict(bank_access=s),
    )


@experiment(
    "fig19",
    "Normalised RF energy vs wire switching activity",
    variants=[BASELINE, WARPED],
)
def fig19(grid: ResultGrid) -> ExperimentResult:
    activities = [0.0, 0.25, 0.5, 0.75, 1.0]
    headers = ["benchmark"] + [f"act{int(a * 100)}%" for a in activities]
    result = ExperimentResult(
        exp_id="fig19",
        title="Normalised RF energy vs wire switching activity",
        headers=headers,
        notes="baseline re-priced at the same activity factor",
    )
    sums = np.zeros(len(activities))
    rows = 0
    for name in grid.benchmarks:
        base_model = grid.get(name, "baseline").energy_model
        wc_model = grid.get(name, "warped").energy_model
        cells = []
        for a in activities:
            params = base_model.params.scaled(wire_activity=a)
            base = base_model.reprice(params)
            wc = wc_model.reprice(params)
            cells.append(wc.normalized_to(base)["total"])
        result.add_row(name, *cells)
        sums += np.array(cells)
        rows += 1
    result.add_row(AVERAGE, *(sums / rows))
    return result


# ----------------------------------------------------------------------
# Figures 20/21 — latency sweeps
# ----------------------------------------------------------------------
def _latency_reduce(
    grid: ResultGrid,
    exp_id: str,
    title: str,
    param: str,
    values: list[int],
) -> ExperimentResult:
    headers = ["benchmark"] + [f"{param[:4]}={v}" for v in values]
    result = ExperimentResult(exp_id=exp_id, title=title, headers=headers)
    sums = np.zeros(len(values))
    rows = 0
    for name in grid.benchmarks:
        base = grid.get(name, "baseline").cycles
        cells = []
        for v in values:
            wc = grid.get(name, f"{param[:4]}{v}").cycles
            cells.append(wc / base)
        result.add_row(name, *cells)
        sums += np.array(cells)
        rows += 1
    result.add_row(AVERAGE, *(sums / rows))
    return result


@experiment(
    "fig20",
    "Execution time vs compression latency (cycles, vs baseline)",
    variants=[BASELINE]
    + [Variant(f"comp{v}", compression_latency=v) for v in (2, 4, 8)],
)
def fig20(grid: ResultGrid) -> ExperimentResult:
    return _latency_reduce(
        grid,
        "fig20",
        "Execution time vs compression latency (cycles, vs baseline)",
        "compression_latency",
        [2, 4, 8],
    )


@experiment(
    "fig21",
    "Execution time vs decompression latency (cycles, vs baseline)",
    variants=[BASELINE]
    + [Variant(f"deco{v}", decompression_latency=v) for v in (1, 2, 4, 8)],
)
def fig21(grid: ResultGrid) -> ExperimentResult:
    return _latency_reduce(
        grid,
        "fig21",
        "Execution time vs decompression latency (cycles, vs baseline)",
        "decompression_latency",
        [1, 2, 4, 8],
    )


#: Registry used by the CLI and the bench suite.
EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.exp_id: spec
    for spec in (
        table1,
        fig02,
        fig03,
        fig05,
        fig08,
        fig09,
        fig10,
        fig11,
        fig12,
        fig13,
        fig14,
        fig15,
        fig16,
        fig17,
        fig18,
        fig19,
        fig20,
        fig21,
    )
}


def run_experiment(
    exp_id: str, session: Session | None = None
) -> ExperimentResult:
    """Run one experiment by id (creating a session if none supplied)."""
    try:
        spec = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return spec(session or Session())

"""``warped-compression`` CLI: regenerate the paper's tables and figures.

Examples::

    warped-compression --list
    warped-compression fig09 fig13
    warped-compression all --scale small --jobs 4 --out results.txt
    warped-compression fig09 --no-cache   # force fresh simulations

Simulations run through the :mod:`repro.sim` session layer: distinct
(kernel, config) pairs are simulated exactly once per invocation, fan
out across cores with ``--jobs``, and persist in a content-addressed
on-disk cache (``.repro-cache`` by default, override with
``--cache-dir`` or ``$REPRO_CACHE_DIR``) so re-rendering a figure
against a warm cache performs zero simulations.

Parallelism knobs, disambiguated (they are easy to conflate):

* ``--jobs N`` (this CLI) — *batch* parallelism: how many distinct
  (kernel, config) pairs one invocation simulates concurrently;
* ``repro serve --workers N`` / ``$REPRO_SERVE_WORKERS`` — *service*
  parallelism: the long-lived server's simulation worker-pool size
  (see :mod:`repro.serve`); its queue depth is bounded separately by
  ``--max-queue``.

* ``--cluster HOST:PORT`` (this CLI) — *fleet* parallelism: cache
  misses are shipped to a ``repro cluster`` coordinator and simulated
  by its workers; results are byte-identical to a local run because
  the same session code computes keys and parses results either way.

**Cache directory resolution** (one rule for every entry point —
this runner, ``repro serve``, ``repro cluster coordinator|worker``,
``repro verify``'s artifact root, and ``repro cache``): an explicit
``--cache-dir`` wins, else ``$REPRO_CACHE_DIR``, else ``.repro-cache``
in the working directory.  Point ``$REPRO_CACHE_DIR`` at one directory
and every tool shares one result universe — a warm batch cache
pre-answers server traffic, a fleet's results re-render figures
locally, and vice versa.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.harness.ablations import ABLATIONS
from repro.harness.experiments import EXPERIMENTS
from repro.harness.extensions import EXTENSIONS
from repro.kernels import benchmark_names
from repro.obs.log import configure_logging, get_logger
from repro.obs.profiler import HostProfiler
from repro.sim import Session

logger = get_logger("harness.runner")

#: Everything the CLI can run: the paper's figures, our ablations, and
#: the extension studies (RFC orthogonality).
ALL_DRIVERS = {**EXPERIMENTS, **ABLATIONS, **EXTENSIONS}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="warped-compression",
        description="Reproduce the Warped-Compression (ISCA 2015) evaluation",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids (fig02..fig21, table1, abl-*, ext-*), "
        "'all' (the paper's figures), 'ablations', or 'extensions'",
    )
    parser.add_argument(
        "--scale",
        choices=("small", "default"),
        default="default",
        help="workload scale (small for a quick pass)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        metavar="NAME",
        help="restrict to a subset of benchmarks",
    )
    parser.add_argument("--out", help="also write results to this file")
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render each experiment's last column as a bar chart",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress messages"
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="progress-message verbosity (default: info; --quiet implies "
        "warning)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write host-side profiling metrics (phase wall-clock, cache "
        "hits, per-worker throughput) to FILE as JSON",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="simulate up to N distinct (kernel, config) pairs in parallel",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="on-disk result cache location (default: .repro-cache, "
        "or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache (in-process memo only)",
    )
    parser.add_argument(
        "--cluster",
        metavar="HOST:PORT",
        help="run cache misses on a worker fleet via this cluster "
        "coordinator (see `repro cluster`); results are byte-identical "
        "to a local run",
    )
    parser.add_argument(
        "--replay-tier",
        action="store_true",
        help="re-price all-functional experiments from stored register-"
        "write traces (one capture per benchmark, zero simulations once "
        "the trace exists); timing experiments run normally",
    )
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in ALL_DRIVERS:
            print(exp_id)
        print(f"benchmarks: {', '.join(benchmark_names())}")
        return 0

    requested = args.experiments or ["all"]
    if "all" in requested:
        # "all" means the paper's evaluation; ablations run by name or
        # via "ablations".
        requested = list(EXPERIMENTS)
    if "ablations" in requested:
        requested = [e for e in requested if e != "ablations"]
        requested += list(ABLATIONS)
    if "extensions" in requested:
        requested = [e for e in requested if e != "extensions"]
        requested += list(EXTENSIONS)
    unknown = [e for e in requested if e not in ALL_DRIVERS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")

    # One knob for all progress output: every ad-hoc message below (and
    # in the session layer) goes through the repro.obs logging tree.
    level = args.log_level or ("warning" if args.quiet else "info")
    configure_logging(level)

    profiler = HostProfiler()
    if args.cluster:
        if args.no_cache:
            parser.error("--cluster needs the disk cache (drop --no-cache)")
        from repro.cluster.session import ClusterSession
        from repro.serve.http import parse_hostport

        host, port = parse_hostport(args.cluster, 8650)
        session = ClusterSession(
            host,
            port,
            cache_dir=args.cache_dir,
            scale=args.scale,
            verbose=not args.quiet,
            subset=args.benchmarks,
            max_workers=args.jobs,
            profiler=profiler,
        )
    else:
        session = Session(
            scale=args.scale,
            verbose=not args.quiet,
            subset=args.benchmarks,
            cache_dir=args.cache_dir,
            use_disk_cache=not args.no_cache,
            max_workers=args.jobs,
            profiler=profiler,
        )
    blocks = []
    for exp_id in requested:
        driver = ALL_DRIVERS[exp_id]
        if args.replay_tier:
            from repro.harness.engine import ExperimentSpec
            from repro.harness.sweeps import replay_spec, replayable

            if isinstance(driver, ExperimentSpec) and replayable(driver):
                driver = replay_spec(driver)
                logger.info(
                    f"{exp_id}: replay tier (pricing from stored traces)"
                )
        start = time.time()
        logger.info(f"running {exp_id} ...")
        with profiler.phase(exp_id):
            result = driver(session)
            text = result.render()
        if args.chart:
            from repro.analysis.plots import chart_experiment

            text += "\n\n" + chart_experiment(result)
        blocks.append(text)
        print(text, flush=True)
        logger.info(f"  ({time.time() - start:.1f}s)\n")

    logger.info(
        f"session: {session.simulated} simulated, "
        f"{session.replayed} trace-replayed, "
        f"{session.memo_hits} memo hits, "
        f"{session.disk_hits} disk-cache hits"
    )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n\n".join(blocks) + "\n")
    if args.metrics_out:
        payload = profiler.to_dict()
        payload["session"] = {
            "simulated": session.simulated,
            "replayed": session.replayed,
            "memo_hits": session.memo_hits,
            "disk_hits": session.disk_hits,
        }
        with open(args.metrics_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        logger.info(f"metrics written to {args.metrics_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

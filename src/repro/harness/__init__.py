"""Experiment harness: one driver per paper table/figure.

* :mod:`repro.harness.sweeps` — cached simulation runner so that figures
  sharing the same (benchmark, configuration) reuse one simulation.
* :mod:`repro.harness.experiments` — ``fig02`` ... ``fig21`` and
  ``table1`` drivers returning renderable tables.
* :mod:`repro.harness.runner` — the ``warped-compression`` CLI.
"""

from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.sweeps import SimulationCache

__all__ = ["EXPERIMENTS", "SimulationCache", "run_experiment"]

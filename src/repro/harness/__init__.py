"""Experiment harness: one declarative spec per paper table/figure.

* :mod:`repro.harness.engine` — :class:`ExperimentSpec` (workload ×
  config grid + pure reduction) and the shared engine evaluating specs
  against a :class:`repro.sim.Session`.
* :mod:`repro.harness.experiments` — ``fig02`` ... ``fig21`` and
  ``table1`` specs producing renderable tables.
* :mod:`repro.harness.ablations` / :mod:`repro.harness.extensions` —
  studies beyond the paper's figures, on the same engine.
* :mod:`repro.harness.runner` — the ``warped-compression`` CLI.
* :mod:`repro.harness.bench` — the simulator's own perf-regression
  bench (``repro bench``), emitting ``BENCH_simulator.json``.
"""

from repro.harness.engine import ExperimentSpec, ResultGrid, Variant, evaluate
from repro.harness.experiments import EXPERIMENTS, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "ResultGrid",
    "Variant",
    "evaluate",
    "run_experiment",
]

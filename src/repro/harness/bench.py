"""Simulator perf-regression bench: wall-clock, throughput, memo hit-rate.

This is a bench of the *simulator*, not of the simulated GPU: it times
how long the host takes to run each registry kernel with the production
fast path on (event-driven cycle skipping + codec memo cache) and with
it off (every cycle ticked, every register image re-encoded), and writes
the result as ``BENCH_simulator.json``.

Wall-clock seconds are machine-dependent, so regression comparison
against a committed baseline uses the machine-independent signals:

* ``speedup`` — the fast/slow wall-clock ratio measured *in the same
  process on the same machine*; a shrinking ratio means the fast path
  lost its edge regardless of how fast the host is.
* ``cycles`` — the simulated cycle count, which must not drift at all
  (the fast path is bit-identical by contract; a change here means the
  simulation itself changed and the baseline needs regeneration).

The comparison warns (it never fails by itself — CI runs it as a
non-blocking job) when a kernel's speedup drops more than ``tolerance``
below the baseline, or when cycle counts diverge.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.memo import MEMO_CACHE, memo_disabled
from repro.gpu.batch import BATCH_STATS
from repro.gpu.config import GPUConfig
from repro.gpu.gpu import GPU

SCHEMA_VERSION = 1

#: BLAS/threading knobs that change numpy wall-clock without changing
#: results; recorded per run so cross-machine baselines are interpretable.
THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)

#: Spread of pipeline behaviours for ``--quick``: aes (compute-heavy,
#: high memo traffic), bfs (divergent, short), nw (bank-wakeup bound),
#: spmv (memory-latency bound).
QUICK_KERNELS = ("aes", "bfs", "nw", "spmv")

#: Default relative speedup loss that triggers a regression warning.
DEFAULT_TOLERANCE = 0.20


@dataclass(frozen=True)
class KernelBench:
    """Measured performance of the simulator on one kernel."""

    name: str
    cycles: int
    fast_seconds: float
    slow_seconds: float
    memo_hit_rate: float

    @property
    def speedup(self) -> float:
        """Slow over fast wall-clock (>1 means the fast path won)."""
        if self.fast_seconds <= 0:
            return float("inf")
        return self.slow_seconds / self.fast_seconds

    @property
    def cycles_per_second(self) -> float:
        """Simulated cycles per host second with the fast path on."""
        if self.fast_seconds <= 0:
            return float("inf")
        return self.cycles / self.fast_seconds

    def to_dict(self) -> dict:
        return {
            "cycles": self.cycles,
            "fast_seconds": round(self.fast_seconds, 6),
            "slow_seconds": round(self.slow_seconds, 6),
            "speedup": round(self.speedup, 4),
            "cycles_per_second": round(self.cycles_per_second, 1),
            "memo_hit_rate": round(self.memo_hit_rate, 4),
        }


@dataclass
class BenchReport:
    """One full bench run over a set of kernels."""

    scale: str
    policy: str
    repeats: int
    kernels: list[KernelBench] = field(default_factory=list)
    #: Free-form provenance (e.g. the one-time seed-commit measurement
    #: recorded in the committed baseline).  Carried through to_dict.
    reference: dict | None = None

    @property
    def total_fast_seconds(self) -> float:
        return sum(k.fast_seconds for k in self.kernels)

    @property
    def total_slow_seconds(self) -> float:
        return sum(k.slow_seconds for k in self.kernels)

    @property
    def total_cycles(self) -> int:
        return sum(k.cycles for k in self.kernels)

    @property
    def total_speedup(self) -> float:
        fast = self.total_fast_seconds
        return self.total_slow_seconds / fast if fast > 0 else float("inf")

    def to_dict(self) -> dict:
        data = {
            "schema_version": SCHEMA_VERSION,
            "scale": self.scale,
            "policy": self.policy,
            "repeats": self.repeats,
            "kernels": {k.name: k.to_dict() for k in self.kernels},
            "totals": {
                "fast_seconds": round(self.total_fast_seconds, 6),
                "slow_seconds": round(self.total_slow_seconds, 6),
                "speedup": round(self.total_speedup, 4),
                "cycles": self.total_cycles,
                "cycles_per_second": round(
                    self.total_cycles / self.total_fast_seconds, 1
                )
                if self.total_fast_seconds > 0
                else 0.0,
            },
        }
        if self.reference is not None:
            data["reference"] = self.reference
        return data

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def render(self) -> str:
        """Human-readable table of the measurements."""
        lines = [
            f"simulator bench: scale={self.scale} policy={self.policy} "
            f"repeats={self.repeats} (best-of)",
            f"{'kernel':<12} {'cycles':>9} {'fast s':>8} {'slow s':>8} "
            f"{'speedup':>8} {'Kcyc/s':>8} {'memo hit':>9}",
        ]
        for k in self.kernels:
            lines.append(
                f"{k.name:<12} {k.cycles:>9d} {k.fast_seconds:>8.3f} "
                f"{k.slow_seconds:>8.3f} {k.speedup:>7.2f}x "
                f"{k.cycles_per_second / 1e3:>8.1f} "
                f"{k.memo_hit_rate:>8.1%}"
            )
        lines.append(
            f"{'TOTAL':<12} {self.total_cycles:>9d} "
            f"{self.total_fast_seconds:>8.3f} "
            f"{self.total_slow_seconds:>8.3f} {self.total_speedup:>7.2f}x"
        )
        ref = self.reference or {}
        batching = ref.get("batching")
        if batching:
            lines.append(
                f"batching: {batching['groups']} groups, "
                f"mean size {batching['mean_group_size']:.2f}, "
                f"{batching['batched_ops']} ops dispatched batched"
            )
        breakdown = ref.get("stage_breakdown")
        if breakdown:
            lines.append("stage breakdown (diagnostic pass, fast path on):")
            lines.append(f"  {'stage':<14} {'seconds':>8} {'calls':>10}")
            for name, entry in sorted(
                breakdown.items(), key=lambda kv: -kv[1]["seconds"]
            ):
                lines.append(
                    f"  {name:<14} {entry['seconds']:>8.3f} "
                    f"{entry['calls']:>10d}"
                )
        return "\n".join(lines)


def runtime_environment() -> dict:
    """Host provenance for the artifact's reference block.

    Wall-clock seconds depend on the numpy build and the BLAS thread
    pool as much as on the CPU, so every report records them; an unset
    thread variable is recorded as ``"unset"`` (numpy then picks its
    own default, typically all cores).
    """
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "thread_env": {
            var: os.environ.get(var, "unset") for var in THREAD_ENV_VARS
        },
    }


def _time_run(launch, policy: str, config: GPUConfig, repeats: int):
    """Best-of-``repeats`` wall-clock for one launch; returns (s, cycles)."""
    best = float("inf")
    cycles = 0
    for _ in range(repeats):
        gmem = launch.fresh_memory()
        gpu = GPU(config=config, policy=policy, max_cycles=20_000_000)
        start = perf_counter()
        result = gpu.run(
            launch.kernel, launch.grid_dim, launch.cta_dim, launch.params, gmem
        )
        elapsed = perf_counter() - start
        best = min(best, elapsed)
        cycles = result.cycles
    return best, cycles


def bench_kernel(
    name: str,
    scale: str = "small",
    policy: str = "warped",
    repeats: int = 3,
) -> KernelBench:
    """Time one registry kernel fast (production) and slow (reference)."""
    from repro.kernels.suite import get_benchmark

    launch = get_benchmark(name).launch(scale)
    base = GPUConfig()

    hits0, lookups0 = MEMO_CACHE.hits, MEMO_CACHE.lookups
    fast_seconds, cycles = _time_run(
        launch, policy, base.with_overrides(fast_path=True), repeats
    )
    lookups = MEMO_CACHE.lookups - lookups0
    hit_rate = (MEMO_CACHE.hits - hits0) / lookups if lookups else 0.0

    with memo_disabled():
        slow_seconds, slow_cycles = _time_run(
            launch,
            policy,
            base.with_overrides(fast_path=False, batched=False),
            repeats,
        )
    if slow_cycles != cycles:
        raise RuntimeError(
            f"{name}: fast path simulated {cycles} cycles but the "
            f"reference run simulated {slow_cycles} — bit-identity broken"
        )
    return KernelBench(
        name=name,
        cycles=cycles,
        fast_seconds=fast_seconds,
        slow_seconds=slow_seconds,
        memo_hit_rate=hit_rate,
    )


#: SM tick stages instrumented by :func:`profile_stages`, in pipeline
#: order.  ``gather`` (the cross-warp batch sweep) runs *inside* the
#: issue stage, so its seconds are a subset of ``issue``, not additive.
STAGE_METHODS = (
    ("writeback", "_writeback_stage"),
    ("compress", "_compress_stage"),
    ("execute", "_execute_stage"),
    ("collect", "_collect_stage"),
    ("issue", "_issue_stage"),
    ("gather", "_gather_region"),
    ("retire", "_retire_warps"),
)


def profile_stages(
    names=None,
    scale: str = "small",
    policy: str = "warped",
) -> dict:
    """Per-stage wall-clock breakdown of one fast-path pass over ``names``.

    Temporarily wraps the SM tick-stage methods class-wide with
    ``perf_counter`` accumulators and runs each kernel once in the
    production configuration.  The instrumentation itself perturbs the
    timings (seven extra calls per warp per cycle), so this is a
    *separate diagnostic pass* — the headline fast/slow seconds of
    :func:`bench_kernel` are never measured with the wrappers installed.

    Returns ``{"sm.<stage>": {"seconds": float, "calls": int}, ...}``
    plus an ``"untimed"`` entry for run() time outside the wrapped
    stages (CTA dispatch, cycle-skip bookkeeping, result reduction).
    """
    from repro.gpu.sm import SMCore
    from repro.kernels.suite import benchmark_names, get_benchmark
    from repro.obs.profiler import HostProfiler

    if names is None:
        names = benchmark_names()

    profiler = HostProfiler()
    totals: dict[str, list] = {label: [0.0, 0] for label, _ in STAGE_METHODS}
    saved = {}

    def _wrap(label: str, fn):
        cell = totals[label]

        def timed(self, *args, **kwargs):
            start = perf_counter()
            try:
                return fn(self, *args, **kwargs)
            finally:
                cell[0] += perf_counter() - start
                cell[1] += 1

        return timed

    for label, attr in STAGE_METHODS:
        saved[attr] = getattr(SMCore, attr)
        setattr(SMCore, attr, _wrap(label, saved[attr]))

    wall = 0.0
    try:
        for name in names:
            launch = get_benchmark(name).launch(scale)
            gmem = launch.fresh_memory()
            gpu = GPU(config=GPUConfig(), policy=policy, max_cycles=20_000_000)
            start = perf_counter()
            gpu.run(
                launch.kernel,
                launch.grid_dim,
                launch.cta_dim,
                launch.params,
                gmem,
            )
            wall += perf_counter() - start
    finally:
        for attr, fn in saved.items():
            setattr(SMCore, attr, fn)

    for label, _ in STAGE_METHODS:
        seconds, calls = totals[label]
        if calls:
            profiler.add_phase_seconds(f"sm.{label}", seconds, calls)
    # Gather nests inside issue: exclude it from the stage sum so the
    # untimed remainder is wall minus *disjoint* stage time.
    staged = sum(
        totals[label][0] for label, _ in STAGE_METHODS if label != "gather"
    )
    profiler.add_phase_seconds("untimed", max(0.0, wall - staged), len(names))
    return {
        name: dict(entry)
        for name, entry in profiler.to_dict()["phases"].items()
    }


def run_bench(
    names=None,
    scale: str = "small",
    policy: str = "warped",
    repeats: int = 3,
    quick: bool = False,
    progress=None,
) -> BenchReport:
    """Bench ``names`` (default: the full registry suite, in order)."""
    from repro.kernels.suite import benchmark_names

    if names is None:
        names = QUICK_KERNELS if quick else benchmark_names()
    if quick:
        repeats = 1
    report = BenchReport(
        scale=scale,
        policy=policy,
        repeats=repeats,
        reference={"environment": runtime_environment()},
    )
    batch0 = BATCH_STATS.snapshot()
    for name in names:
        record = bench_kernel(name, scale=scale, policy=policy, repeats=repeats)
        report.kernels.append(record)
        if progress is not None:
            progress(
                f"{name}: {record.fast_seconds:.3f}s fast, "
                f"{record.slow_seconds:.3f}s slow ({record.speedup:.2f}x)"
            )
    batch1 = BATCH_STATS.snapshot()
    delta = {
        key: batch1[key] - batch0[key]
        for key in ("groups", "grouped_warps", "batched_ops", "singleton_groups")
    }
    delta["mean_group_size"] = round(
        delta["grouped_warps"] / delta["groups"] if delta["groups"] else 0.0, 4
    )
    report.reference["batching"] = delta
    if progress is not None:
        progress("profiling per-stage breakdown (diagnostic pass)...")
    report.reference["stage_breakdown"] = {
        name: {"seconds": round(entry["seconds"], 6), "calls": entry["calls"]}
        for name, entry in profile_stages(
            names, scale=scale, policy=policy
        ).items()
    }
    return report


def compare_reports(
    current: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Regression warnings for ``current`` measured against ``baseline``.

    Both arguments are ``BenchReport.to_dict`` payloads (the baseline
    typically loaded from the committed ``BENCH_simulator.json``).  Only
    machine-independent signals are compared; wall-clock seconds are
    reported in the run's own output but never diffed across machines.
    """
    warnings: list[str] = []
    base_kernels = baseline.get("kernels", {})
    for name, cur in current.get("kernels", {}).items():
        base = base_kernels.get(name)
        if base is None:
            continue
        if cur["cycles"] != base["cycles"]:
            warnings.append(
                f"{name}: simulated cycles changed "
                f"{base['cycles']} -> {cur['cycles']} (simulation behaviour "
                "changed; regenerate the baseline if intentional)"
            )
        floor = base["speedup"] * (1.0 - tolerance)
        if cur["speedup"] < floor:
            warnings.append(
                f"{name}: fast-path speedup regressed "
                f"{base['speedup']:.2f}x -> {cur['speedup']:.2f}x "
                f"(> {tolerance:.0%} below baseline)"
            )
    cur_total = current.get("totals", {}).get("speedup")
    base_total = baseline.get("totals", {}).get("speedup")
    if (
        cur_total is not None
        and base_total is not None
        and cur_total < base_total * (1.0 - tolerance)
    ):
        warnings.append(
            f"suite: total fast-path speedup regressed "
            f"{base_total:.2f}x -> {cur_total:.2f}x"
        )
    return warnings


__all__ = [
    "DEFAULT_TOLERANCE",
    "QUICK_KERNELS",
    "SCHEMA_VERSION",
    "STAGE_METHODS",
    "THREAD_ENV_VARS",
    "BenchReport",
    "KernelBench",
    "bench_kernel",
    "compare_reports",
    "profile_stages",
    "run_bench",
    "runtime_environment",
]

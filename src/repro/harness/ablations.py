"""Ablation studies for design choices the paper leaves implicit.

These go beyond the paper's own figures: each isolates one mechanism of
the warped-compression design (or of our reconstruction of it) and
quantifies its contribution.

* :func:`gate_delay` — the sleep-hysteresis window.  Too short thrashes
  (wake stalls), too long forfeits leakage savings.
* :func:`wakeup_latency` — sensitivity to the 10-cycle bank wake cost.
* :func:`collectors` — operand-collector count (structural issue
  bandwidth of the register file).
* :func:`divergence_policies` — the Section 5.2 alternatives measured
  end-to-end: chosen design vs buffered recompression vs per-thread
  narrow width.
* :func:`compressor_count` — how many compressor/decompressor units the
  two-scheduler SM actually needs.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentResult
from repro.gpu.config import GPUConfig
from repro.gpu.launch import run_kernel
from repro.harness.sweeps import SimulationCache
from repro.kernels import get_benchmark

AVERAGE = "AVERAGE"

#: A representative trio: best case, worst case, divergent case.
DEFAULT_SUBSET = ("lib", "aes", "spmv")


def _run(
    name: str,
    scale: str,
    policy: str = "warped",
    config: GPUConfig | None = None,
):
    bench = get_benchmark(name)
    spec = bench.launch(scale)
    gmem = spec.fresh_memory()
    result = run_kernel(
        spec.kernel,
        spec.grid_dim,
        spec.cta_dim,
        spec.params,
        gmem,
        config=config,
        policy=policy,
    )
    bench.verify(gmem, spec)
    return result


def _average_row(result: ExperimentResult) -> None:
    columns = zip(*(row[1:] for row in result.rows))
    result.add_row(AVERAGE, *(float(np.mean(col)) for col in columns))


def gate_delay(cache: SimulationCache) -> ExperimentResult:
    """Sweep the bank-gating hysteresis window."""
    delays = [0, 16, 64, 256, 4096]
    result = ExperimentResult(
        exp_id="abl-gate-delay",
        title="Energy (vs baseline) and slowdown vs gating hysteresis",
        headers=["benchmark"]
        + [f"E@{d}" for d in delays]
        + [f"T@{d}" for d in delays],
        notes="E = normalised RF energy, T = normalised execution time",
    )
    for name in cache.benchmarks(list(DEFAULT_SUBSET)):
        base = cache.timing_run(name, policy="baseline")
        energies, times = [], []
        for delay in delays:
            cfg = GPUConfig(bank_gate_delay=delay)
            run = _run(name, cache.scale, config=cfg)
            energies.append(
                run.energy.normalized_to(base.energy)["total"]
            )
            times.append(run.cycles / base.cycles)
        result.add_row(name, *energies, *times)
    _average_row(result)
    return result


def wakeup_latency(cache: SimulationCache) -> ExperimentResult:
    """Sweep the power-gated bank wake-up latency (paper default 10)."""
    latencies = [0, 5, 10, 20, 40]
    result = ExperimentResult(
        exp_id="abl-wakeup",
        title="Execution time (vs baseline) vs bank wake-up latency",
        headers=["benchmark"] + [f"wake={w}" for w in latencies],
    )
    for name in cache.benchmarks(list(DEFAULT_SUBSET)):
        base = cache.timing_run(name, policy="baseline")
        cells = []
        for wake in latencies:
            cfg = GPUConfig(bank_wakeup_latency=wake)
            run = _run(name, cache.scale, config=cfg)
            cells.append(run.cycles / base.cycles)
        result.add_row(name, *cells)
    _average_row(result)
    return result


def collectors(cache: SimulationCache) -> ExperimentResult:
    """Sweep the operand-collector count (structural RF bandwidth)."""
    counts = [2, 4, 8, 16]
    result = ExperimentResult(
        exp_id="abl-collectors",
        title="Execution time (vs 8-collector warped) vs collector count",
        headers=["benchmark"] + [f"oc={c}" for c in counts],
    )
    for name in cache.benchmarks(list(DEFAULT_SUBSET)):
        reference = cache.timing_run(name, policy="warped").cycles
        cells = []
        for count in counts:
            cfg = GPUConfig(num_collectors=count)
            run = _run(name, cache.scale, config=cfg)
            cells.append(run.cycles / reference)
        result.add_row(name, *cells)
    _average_row(result)
    return result


def divergence_policies(cache: SimulationCache) -> ExperimentResult:
    """End-to-end comparison of the Section 5.2 design alternatives."""
    policies = ["warped", "warped-buffered", "per-thread"]
    result = ExperimentResult(
        exp_id="abl-divergence",
        title="Normalised RF energy per divergence-handling design",
        headers=["benchmark"] + policies,
    )
    for name in cache.benchmarks():
        base = cache.timing_run(name, policy="baseline")
        cells = []
        for policy in policies:
            run = cache.timing_run(name, policy=policy)
            cells.append(run.energy.normalized_to(base.energy)["total"])
        result.add_row(name, *cells)
    _average_row(result)
    return result


def compressor_count(cache: SimulationCache) -> ExperimentResult:
    """How many compressor/decompressor units does the SM need?"""
    configs = [(1, 1), (1, 2), (2, 4), (4, 8)]
    result = ExperimentResult(
        exp_id="abl-units",
        title="Execution time (vs baseline) per compressor/decompressor count",
        headers=["benchmark"] + [f"{c}c/{d}d" for c, d in configs],
        notes="paper provisions 2 compressors / 4 decompressors",
    )
    for name in cache.benchmarks(list(DEFAULT_SUBSET)):
        base = cache.timing_run(name, policy="baseline")
        cells = []
        for comps, decomps in configs:
            cfg = GPUConfig(num_compressors=comps, num_decompressors=decomps)
            run = _run(name, cache.scale, config=cfg)
            cells.append(run.cycles / base.cycles)
        result.add_row(name, *cells)
    _average_row(result)
    return result


ABLATIONS = {
    "abl-gate-delay": gate_delay,
    "abl-wakeup": wakeup_latency,
    "abl-collectors": collectors,
    "abl-divergence": divergence_policies,
    "abl-units": compressor_count,
}

"""Ablation studies for design choices the paper leaves implicit.

These go beyond the paper's own figures: each isolates one mechanism of
the warped-compression design (or of our reconstruction of it) and
quantifies its contribution.

* ``gate_delay`` — the sleep-hysteresis window.  Too short thrashes
  (wake stalls), too long forfeits leakage savings.
* ``wakeup_latency`` — sensitivity to the 10-cycle bank wake cost.
* ``collectors`` — operand-collector count (structural issue
  bandwidth of the register file).
* ``divergence_policies`` — the Section 5.2 alternatives measured
  end-to-end: chosen design vs buffered recompression vs per-thread
  narrow width.
* ``compressor_count`` — how many compressor/decompressor units the
  two-scheduler SM actually needs.

Each is an :class:`~repro.harness.engine.ExperimentSpec`, so ablation
configurations flow through the same session cache as the paper figures
— the default-valued sweep points (e.g. ``bank_gate_delay=64``) dedupe
with the standard warped run instead of re-simulating it.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentResult
from repro.harness.engine import (
    AVERAGE,
    ExperimentSpec,
    ResultGrid,
    Variant,
    experiment,
)
from repro.harness.experiments import BASELINE, WARPED

#: A representative trio: best case, worst case, divergent case.
DEFAULT_SUBSET = ("lib", "aes", "spmv")

_GATE_DELAYS = (0, 16, 64, 256, 4096)
_WAKE_LATENCIES = (0, 5, 10, 20, 40)
_COLLECTOR_COUNTS = (2, 4, 8, 16)
_DIVERGENCE_POLICIES = ("warped", "warped-buffered", "per-thread")
_UNIT_CONFIGS = ((1, 1), (1, 2), (2, 4), (4, 8))


def _average_row(result: ExperimentResult) -> None:
    columns = zip(*(row[1:] for row in result.rows))
    result.add_row(AVERAGE, *(float(np.mean(col)) for col in columns))


@experiment(
    "abl-gate-delay",
    "Energy (vs baseline) and slowdown vs gating hysteresis",
    variants=[BASELINE]
    + [
        Variant(
            f"delay{d}", config_overrides=(("bank_gate_delay", d),)
        )
        for d in _GATE_DELAYS
    ],
    suite=DEFAULT_SUBSET,
)
def gate_delay(grid: ResultGrid) -> ExperimentResult:
    """Sweep the bank-gating hysteresis window."""
    result = ExperimentResult(
        exp_id="abl-gate-delay",
        title="Energy (vs baseline) and slowdown vs gating hysteresis",
        headers=["benchmark"]
        + [f"E@{d}" for d in _GATE_DELAYS]
        + [f"T@{d}" for d in _GATE_DELAYS],
        notes="E = normalised RF energy, T = normalised execution time",
    )
    for name in grid.benchmarks:
        base = grid.get(name, "baseline")
        energies, times = [], []
        for delay in _GATE_DELAYS:
            run = grid.get(name, f"delay{delay}")
            energies.append(run.energy.normalized_to(base.energy)["total"])
            times.append(run.cycles / base.cycles)
        result.add_row(name, *energies, *times)
    _average_row(result)
    return result


@experiment(
    "abl-wakeup",
    "Execution time (vs baseline) vs bank wake-up latency",
    variants=[BASELINE]
    + [
        Variant(
            f"wake{w}", config_overrides=(("bank_wakeup_latency", w),)
        )
        for w in _WAKE_LATENCIES
    ],
    suite=DEFAULT_SUBSET,
)
def wakeup_latency(grid: ResultGrid) -> ExperimentResult:
    """Sweep the power-gated bank wake-up latency (paper default 10)."""
    result = ExperimentResult(
        exp_id="abl-wakeup",
        title="Execution time (vs baseline) vs bank wake-up latency",
        headers=["benchmark"] + [f"wake={w}" for w in _WAKE_LATENCIES],
    )
    for name in grid.benchmarks:
        base = grid.get(name, "baseline")
        cells = [
            grid.get(name, f"wake{w}").cycles / base.cycles
            for w in _WAKE_LATENCIES
        ]
        result.add_row(name, *cells)
    _average_row(result)
    return result


@experiment(
    "abl-collectors",
    "Execution time (vs 8-collector warped) vs collector count",
    variants=[WARPED]
    + [
        Variant(f"oc{c}", config_overrides=(("num_collectors", c),))
        for c in _COLLECTOR_COUNTS
    ],
    suite=DEFAULT_SUBSET,
)
def collectors(grid: ResultGrid) -> ExperimentResult:
    """Sweep the operand-collector count (structural RF bandwidth)."""
    result = ExperimentResult(
        exp_id="abl-collectors",
        title="Execution time (vs 8-collector warped) vs collector count",
        headers=["benchmark"] + [f"oc={c}" for c in _COLLECTOR_COUNTS],
    )
    for name in grid.benchmarks:
        reference = grid.get(name, "warped").cycles
        cells = [
            grid.get(name, f"oc{c}").cycles / reference
            for c in _COLLECTOR_COUNTS
        ]
        result.add_row(name, *cells)
    _average_row(result)
    return result


@experiment(
    "abl-divergence",
    "Normalised RF energy per divergence-handling design",
    variants=[BASELINE]
    + [Variant(p, policy=p) for p in _DIVERGENCE_POLICIES],
)
def divergence_policies(grid: ResultGrid) -> ExperimentResult:
    """End-to-end comparison of the Section 5.2 design alternatives."""
    result = ExperimentResult(
        exp_id="abl-divergence",
        title="Normalised RF energy per divergence-handling design",
        headers=["benchmark"] + list(_DIVERGENCE_POLICIES),
    )
    for name in grid.benchmarks:
        base = grid.get(name, "baseline")
        cells = [
            grid.get(name, p).energy.normalized_to(base.energy)["total"]
            for p in _DIVERGENCE_POLICIES
        ]
        result.add_row(name, *cells)
    _average_row(result)
    return result


@experiment(
    "abl-units",
    "Execution time (vs baseline) per compressor/decompressor count",
    variants=[BASELINE]
    + [
        Variant(
            f"{c}c{d}d",
            config_overrides=(
                ("num_compressors", c),
                ("num_decompressors", d),
            ),
        )
        for c, d in _UNIT_CONFIGS
    ],
    suite=DEFAULT_SUBSET,
)
def compressor_count(grid: ResultGrid) -> ExperimentResult:
    """How many compressor/decompressor units does the SM need?"""
    result = ExperimentResult(
        exp_id="abl-units",
        title="Execution time (vs baseline) per compressor/decompressor count",
        headers=["benchmark"] + [f"{c}c/{d}d" for c, d in _UNIT_CONFIGS],
        notes="paper provisions 2 compressors / 4 decompressors",
    )
    for name in grid.benchmarks:
        base = grid.get(name, "baseline")
        cells = [
            grid.get(name, f"{c}c{d}d").cycles / base.cycles
            for c, d in _UNIT_CONFIGS
        ]
        result.add_row(name, *cells)
    _average_row(result)
    return result


ABLATIONS: dict[str, ExperimentSpec] = {
    "abl-gate-delay": gate_delay,
    "abl-wakeup": wakeup_latency,
    "abl-collectors": collectors,
    "abl-divergence": divergence_policies,
    "abl-units": compressor_count,
}

"""Cached simulation running for the experiment harness.

Most figures evaluate the same two designs (baseline and
warped-compression, default configuration) over the same twelve
benchmarks; the cache keys every simulation by its full configuration so
each distinct run happens exactly once per harness invocation.  The
energy-constant sweeps (Figures 17-19) never re-simulate at all — they
re-price the cached run's event counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import RunStats
from repro.gpu.config import GPUConfig
from repro.gpu.functional import run_functional
from repro.gpu.gpu import SimulationResult
from repro.gpu.launch import run_kernel
from repro.kernels import benchmark_names, get_benchmark


@dataclass(frozen=True)
class RunKey:
    """Identity of one simulation run."""

    benchmark: str
    policy: str = "warped"
    scheduler: str = "gto"
    compression_latency: int = 2
    decompression_latency: int = 1
    rfc_entries: int = 0
    timing: bool = True
    collect_bdi: bool = False
    scale: str = "default"


class SimulationCache:
    """Runs simulations on demand and memoises the results."""

    def __init__(
        self,
        scale: str = "default",
        verbose: bool = False,
        subset: list[str] | None = None,
    ):
        self.scale = scale
        self.verbose = verbose
        self.subset = subset
        self._runs: dict[RunKey, object] = {}

    def key(self, benchmark: str, **overrides) -> RunKey:
        return RunKey(benchmark=benchmark, scale=self.scale, **overrides)

    def timing_run(self, benchmark: str, **overrides) -> SimulationResult:
        """A cycle-level run (energy + cycles + value stats)."""
        key = self.key(benchmark, timing=True, **overrides)
        if key not in self._runs:
            self._runs[key] = self._simulate(key)
        return self._runs[key]

    def functional_run(self, benchmark: str, **overrides) -> RunStats:
        """A functional run (value stats only, much faster)."""
        key = self.key(benchmark, timing=False, **overrides)
        if key not in self._runs:
            self._runs[key] = self._simulate(key)
        return self._runs[key]

    def _simulate(self, key: RunKey):
        if self.verbose:
            print(f"  simulating {key.benchmark} [{key.policy}"
                  f"{'' if key.timing else ', functional'}"
                  f"{'' if key.scheduler == 'gto' else ', ' + key.scheduler}"
                  f"{'' if key.compression_latency == 2 else f', comp={key.compression_latency}'}"
                  f"{'' if key.decompression_latency == 1 else f', decomp={key.decompression_latency}'}"
                  f"{'' if key.rfc_entries == 0 else f', rfc={key.rfc_entries}'}]")
        bench = get_benchmark(key.benchmark)
        spec = bench.launch(key.scale)
        gmem = spec.fresh_memory()
        if not key.timing:
            return run_functional(
                spec.kernel,
                spec.grid_dim,
                spec.cta_dim,
                spec.params,
                gmem,
                policy=key.policy,
                collect_bdi=key.collect_bdi,
            )
        config = GPUConfig(
            scheduler_policy=key.scheduler,
            compression_latency=key.compression_latency,
            decompression_latency=key.decompression_latency,
            rfc_entries_per_warp=key.rfc_entries,
        )
        result = run_kernel(
            spec.kernel,
            spec.grid_dim,
            spec.cta_dim,
            spec.params,
            gmem,
            config=config,
            policy=key.policy,
            collect_bdi=key.collect_bdi,
        )
        bench.verify(gmem, spec)
        return result

    def benchmarks(self, subset: list[str] | None = None) -> list[str]:
        return subset or self.subset or benchmark_names()

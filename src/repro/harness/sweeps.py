"""Deprecated module: superseded by :mod:`repro.sim`.

``SimulationCache`` was the harness's in-process memoizer.  The session
layer (:class:`repro.sim.Session`) subsumes it — same memoization, plus
content-addressed on-disk caching, canonical-config deduplication, and a
multiprocess executor — and :class:`repro.sim.SimRequest` replaces
``RunKey``.  These aliases keep old imports working.
"""

from __future__ import annotations

from repro.sim.session import Session as SimulationCache
from repro.sim.session import SimRequest as RunKey

__all__ = ["RunKey", "SimulationCache"]

"""The trace-replay sweep tier: re-price functional sweeps from traces.

A functional experiment (``Variant(timing=False)``) asks only for value
statistics — compression ratios, similarity histograms, dummy-MOV
counts.  Those depend on the *sequence of register writes* a kernel
produces, never on how it is timed, so once that sequence is captured
(one trace per benchmark × scale, shared across every policy) the whole
sweep can be **re-priced** by whole-trace array arithmetic instead of
re-simulated: :func:`repro.gpu.trace.replay_trace` over the stored
``.npz``.

This module lifts that replay path to a first-class sweep tier over the
experiment engine:

* :func:`replay_variant` — the replay-tier twin of one functional
  :class:`~repro.harness.engine.Variant`;
* :func:`replay_spec` — the replay-tier twin of a whole functional
  :class:`~repro.harness.engine.ExperimentSpec` (same grid, same
  reduction, every variant priced from the shared trace);
* :func:`replayable` — whether a spec is eligible (all-functional).

The session guarantees the contract: a replayed request is
byte-identical to a fresh trace-capturing simulation of the same
(benchmark, policy) pair, and a sweep over a warm trace performs zero
new simulations (``repro.sim.session.SIM_COUNTER`` stays put).  The CLI
exposes the tier as ``warped-compression --replay-tier``.

Legacy aliases: ``SimulationCache``/``RunKey`` predate :mod:`repro.sim`
and remain importable here for old callers.
"""

from __future__ import annotations

from dataclasses import replace

from repro.harness.engine import ExperimentSpec, Variant
from repro.sim.session import Session as SimulationCache
from repro.sim.session import SimRequest as RunKey

__all__ = [
    "RunKey",
    "SimulationCache",
    "replay_spec",
    "replay_variant",
    "replayable",
]


def replay_variant(variant: Variant) -> Variant:
    """The replay-tier twin of a functional variant.

    Raises ``ValueError`` for timing variants: a register-write trace
    carries no cycle information, so timing runs cannot be re-priced.
    """
    if variant.timing:
        raise ValueError(
            f"variant {variant.name!r} is a timing run; only functional "
            "variants can be priced by the trace-replay tier"
        )
    return replace(variant, replay=True)


def replayable(spec: ExperimentSpec) -> bool:
    """Whether every variant of ``spec`` can ride the replay tier."""
    return bool(spec.variants) and all(
        not variant.timing for variant in spec.variants
    )


def replay_spec(spec: ExperimentSpec) -> ExperimentSpec:
    """The replay-tier twin of an all-functional experiment spec.

    Same grid, same reduction, same table — but every cell is priced by
    replaying the benchmark's stored register-write trace, so evaluating
    the twin against a warm trace cache simulates nothing.
    """
    if not replayable(spec):
        raise ValueError(
            f"experiment {spec.exp_id!r} has timing variants; the "
            "trace-replay tier only re-prices functional sweeps"
        )
    return replace(
        spec,
        variants=tuple(replay_variant(v) for v in spec.variants),
    )

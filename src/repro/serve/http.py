"""Shared JSON-over-HTTP plumbing for the service layers (stdlib only).

Both ``repro.serve`` (the simulation service) and ``repro.cluster`` (the
distributed sweep coordinator) speak the same deliberately small dialect:
HTTP/1.1 over ``asyncio`` streams on the server side, one connection per
request (``Connection: close``), JSON bodies both ways.  This module is
the one implementation of that dialect:

* :func:`read_request` / :func:`respond` — the async server half,
  shared by :class:`~repro.serve.server.ServeApp` and the cluster
  coordinator;
* :func:`http_json_call` — the blocking client half
  (:mod:`http.client`), shared by :class:`~repro.serve.client.ServeClient`
  and the cluster worker/session clients;
* :class:`BadRequest` — the client-error exception every route handler
  raises to produce a 400 with the message as detail.
"""

from __future__ import annotations

import asyncio
import http.client
import json

#: Status-line reason phrases for the statuses the services emit.
REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    410: "Gone",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Longest accepted request body.  SimRequests are tiny; the largest
#: legitimate payload is a cache write-through (a serialized RunResult
#: with its sampled timeline), which still fits comfortably.
MAX_BODY = 8 << 20


class BadRequest(Exception):
    """Client error turned into a 400 with the message as detail."""


def parse_hostport(value: str, default_port: int) -> tuple[str, int]:
    """Parse a ``HOST[:PORT]`` CLI argument."""
    host, _, port = value.partition(":")
    if not host:
        raise ValueError(f"empty host in {value!r}")
    if not port:
        return host, default_port
    try:
        return host, int(port)
    except ValueError as exc:
        raise ValueError(f"bad port in {value!r}") from exc


async def read_request(reader) -> tuple[str, str, dict[str, str], bytes]:
    """Read one HTTP/1.1 request: ``(method, path, query, body)``.

    Raises :class:`BadRequest` on malformed input and
    ``ConnectionError`` when the client hung up before sending one.
    """
    line = await reader.readline()
    if not line:
        raise ConnectionError("client closed")
    try:
        method, target, _version = line.decode("ascii").split()
    except ValueError as exc:
        raise BadRequest("malformed request line") from exc
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or 0)
    if length > MAX_BODY:
        raise BadRequest("request body too large")
    body = await reader.readexactly(length) if length else b""
    path, _, raw_query = target.partition("?")
    query: dict[str, str] = {}
    for pair in raw_query.split("&"):
        if pair:
            k, _, v = pair.partition("=")
            query[k] = v
    return method.upper(), path, query, body


async def respond(
    writer,
    status: int,
    payload: dict,
    *,
    extra_headers: dict[str, str] | None = None,
) -> None:
    """Write one complete JSON response and flush it."""
    body = json.dumps(payload, sort_keys=True).encode()
    headers = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    writer.write("\r\n".join(headers).encode() + b"\r\n\r\n" + body)
    await writer.drain()


def http_json_call(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    timeout: float = 30.0,
) -> tuple[int, dict[str, str], dict]:
    """One blocking JSON round trip: ``(status, headers, payload)``.

    A non-JSON response body is wrapped as ``{"error": <text>}`` so
    callers always get a dict.  Network failures surface as ``OSError``
    (including ``ConnectionError`` / ``socket.timeout``) for callers to
    map onto their own unreachable-peer handling.
    """
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        data = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if data else {}
        conn.request(method, path, body=data, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            payload = {"error": raw.decode("utf-8", "replace")}
        return response.status, dict(response.getheaders()), payload
    finally:
        conn.close()

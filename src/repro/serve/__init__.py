"""``repro.serve`` — the simulator as a long-lived service.

Turns the one-shot :mod:`repro.sim` session layer into something that
can take sustained concurrent traffic:

* :mod:`repro.serve.jobs` — priority job queue + asyncio scheduler:
  request coalescing (identical cache keys share one in-flight job),
  warm-cache short-circuiting, per-job timeout → retry → exponential
  backoff, bounded-queue admission control, graceful drain;
* :mod:`repro.serve.server` — stdlib asyncio JSON-over-HTTP front end
  (submit / poll / stream / fetch artifacts / scrape metrics) with
  explicit 429 + ``Retry-After`` backpressure and SIGTERM drain;
* :mod:`repro.serve.client` — the blocking client library every
  consumer (tests, load generator, future shards) drives it through;
* :mod:`repro.serve.loadgen` — open/closed-loop load generation with
  p50/p95/p99 latency reporting and a cold-run contract checker.
"""

from repro.serve.client import Backpressure, JobFailed, ServeClient, ServeError
from repro.serve.jobs import Draining, Job, JobScheduler, PriorityJobQueue, QueueFull
from repro.serve.loadgen import LoadReport, LoadSpec, run_loadgen, verify_cold_run
from repro.serve.server import ServeApp, ServeConfig, start_app

__all__ = [
    "Backpressure",
    "Draining",
    "Job",
    "JobFailed",
    "JobScheduler",
    "LoadReport",
    "LoadSpec",
    "PriorityJobQueue",
    "QueueFull",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "run_loadgen",
    "start_app",
    "verify_cold_run",
]

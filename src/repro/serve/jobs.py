"""Job model and async scheduler behind the simulation service.

The scheduler is the heart of ``repro.serve``: it turns concurrent
:class:`~repro.sim.session.SimRequest` submissions into at most one
simulation per distinct cache key, with explicit flow control:

* **warm-cache short-circuit** — a submission whose key is already in
  the session memo or on-disk cache completes immediately, without
  touching the queue or the worker pool;
* **request coalescing** — submissions whose key matches a queued or
  running job *attach* to that job instead of enqueuing a duplicate;
  every attached client observes the same terminal state and result;
* **bounded admission** — at most ``max_queue`` jobs may be queued
  (running jobs excluded); beyond that :meth:`JobScheduler.submit`
  raises :class:`QueueFull`, which the HTTP layer converts into a
  ``429`` with a ``Retry-After`` hint — the queue never grows without
  bound;
* **priority scheduling** — higher ``priority`` runs first; ties break
  FIFO by submission sequence number;
* **timeout → retry → backoff** — each attempt is bounded by
  ``job_timeout``; a timed-out or crashed attempt is retried up to
  ``max_retries`` times with exponential backoff
  (``backoff_base * 2**attempt`` seconds) before the job fails.

Everything here runs on one asyncio event loop; simulations themselves
run on a ``concurrent.futures`` executor supplied by the server (a
``ProcessPoolExecutor`` in production, a thread pool or a fake in
tests) via an injectable ``submit_fn``.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.metrics import MetricRegistry, NULL_REGISTRY
from repro.sim.result import RunResult
from repro.sim.session import SIM_COUNTER, Session, SimRequest

#: Latency-histogram bucket bounds (seconds).
LATENCY_BOUNDS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
                  10.0, 30.0, 60.0)


class QueueFull(Exception):
    """Admission control rejected a submission (queue at capacity)."""

    def __init__(self, retry_after: float):
        super().__init__(f"job queue full, retry after {retry_after:.1f}s")
        self.retry_after = retry_after


class Draining(Exception):
    """The server is draining and no longer accepts submissions."""


#: Job lifecycle states (terminal: ``done`` / ``failed``).
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"
TERMINAL = frozenset({DONE, FAILED})


@dataclass
class Job:
    """One scheduled simulation; possibly serving many submissions."""

    id: str
    key: str
    request: SimRequest
    material: dict
    priority: int = 0
    state: str = QUEUED
    #: how the result was produced: ``cache`` | ``simulated`` | ``""``
    source: str = ""
    #: number of client submissions attached to this job (>= 1)
    submissions: int = 1
    #: execution attempts so far (retries increment this)
    attempts: int = 0
    error: str | None = None
    result: RunResult | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL

    def to_dict(self, include_result: bool = False) -> dict:
        """JSON-safe status view (the server's job resource)."""
        payload = {
            "id": self.id,
            "key": self.key,
            "benchmark": self.request.benchmark,
            "policy": self.request.policy,
            "timing": self.request.timing,
            "scale": self.request.scale,
            "priority": self.priority,
            "state": self.state,
            "source": self.source,
            "submissions": self.submissions,
            "attempts": self.attempts,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if include_result and self.result is not None:
            payload["result"] = self.result.to_dict()
        return payload


class PriorityJobQueue:
    """Bounded max-priority queue with FIFO tie-breaking.

    Pure data structure (no asyncio): pushes raise :class:`QueueFull`
    beyond ``max_queue`` entries, pops return the highest-priority,
    oldest job.  Kept separate from the scheduler so ordering and
    admission control are unit-testable without an event loop.
    """

    def __init__(self, max_queue: int = 256):
        self.max_queue = max_queue
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, job: Job, *, retry_after: float = 1.0) -> None:
        if len(self._heap) >= self.max_queue:
            raise QueueFull(retry_after)
        heapq.heappush(self._heap, (-job.priority, next(self._seq), job))

    def pop(self) -> Job:
        return heapq.heappop(self._heap)[2]


def default_submit_fn(executor) -> Callable:
    """Adapt a futures executor into the scheduler's ``submit_fn``.

    Reuses :func:`repro.sim.session._pool_simulate` so worker payloads
    match the session layer's parallel executor exactly (result dict +
    wall time + worker pid).
    """
    from repro.sim.session import _pool_simulate

    return lambda request: executor.submit(_pool_simulate, (request, None))


class JobScheduler:
    """Coalescing priority scheduler feeding a worker pool.

    ``workers`` asyncio consumer tasks pull jobs off the queue and run
    them through ``submit_fn`` (which must return a
    ``concurrent.futures.Future`` resolving to the
    ``_pool_simulate``-shaped payload dict).  Results are published to
    the shared :class:`~repro.sim.session.Session` memo/disk cache, so
    a restarted server — or a plain CLI run against the same cache
    directory — sees every previously computed artifact.
    """

    def __init__(
        self,
        session: Session,
        submit_fn: Callable,
        *,
        workers: int = 2,
        max_queue: int = 256,
        job_timeout: float = 300.0,
        max_retries: int = 2,
        backoff_base: float = 0.5,
        metrics: MetricRegistry | None = None,
    ):
        self.session = session
        self.submit_fn = submit_fn
        self.workers = workers
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.queue = PriorityJobQueue(max_queue)
        self.jobs: dict[str, Job] = {}
        #: key -> non-terminal Job (the coalescing map)
        self.inflight: dict[str, Job] = {}
        self.draining = False
        self._running = 0
        self._job_seq = itertools.count(1)
        self._work = asyncio.Condition()
        self._changed = asyncio.Condition()
        self._version = 0
        self._tasks: list[asyncio.Task] = []
        #: EMA of recent service times, feeding the Retry-After hint.
        self._service_time = 0.1

        metrics = metrics if metrics is not None else NULL_REGISTRY
        self.metrics = metrics
        self.submitted = metrics.counter("serve.submitted")
        self.coalesced = metrics.counter("serve.coalesced")
        self.cache_hits = metrics.counter("serve.cache_hits")
        self.simulations = metrics.counter("serve.simulations")
        self.completed = metrics.counter("serve.completed")
        self.failures = metrics.counter("serve.failures")
        self.rejected = metrics.counter("serve.rejected")
        self.retries = metrics.counter("serve.retries")
        self.timeouts = metrics.counter("serve.timeouts")
        self.latency = metrics.histogram(
            "serve.latency_seconds", LATENCY_BOUNDS
        )
        metrics.probe("serve.queue_depth", lambda: len(self.queue))
        metrics.probe("serve.running", lambda: self._running)
        metrics.probe("serve.jobs_total", lambda: len(self.jobs))
        session.register_metrics(metrics)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker consumer tasks on the running loop."""
        for n in range(self.workers):
            self._tasks.append(
                asyncio.create_task(self._worker(), name=f"serve-worker-{n}")
            )

    async def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, wait for queued + running jobs to finish.

        Returns ``True`` when everything completed within ``timeout``.
        """
        self.draining = True
        async with self._work:
            self._work.notify_all()

        async def _idle() -> None:
            async with self._changed:
                await self._changed.wait_for(
                    lambda: not self.inflight and self._running == 0
                )

        try:
            await asyncio.wait_for(_idle(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def close(self) -> None:
        """Cancel worker tasks (pending jobs stay queued, unserved)."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks.clear()

    # ------------------------------------------------------------------
    # Submission (called from the HTTP layer, on the loop)
    # ------------------------------------------------------------------
    def retry_after_hint(self) -> float:
        """Seconds a rejected client should wait before resubmitting."""
        backlog = len(self.queue) + self._running
        per_slot = self._service_time / max(1, self.workers)
        return max(1.0, min(60.0, backlog * per_slot))

    async def submit(
        self, request: SimRequest, priority: int = 0
    ) -> tuple[Job, bool]:
        """Admit one request; returns ``(job, coalesced)``.

        Raises :class:`Draining` after drain started and
        :class:`QueueFull` when admission control rejects the request.
        """
        if self.draining:
            raise Draining("server is draining")
        self.submitted.inc()
        key, material, hit = self.session.lookup(request)

        live = self.inflight.get(key)
        if live is not None:
            live.submissions += 1
            self.coalesced.inc()
            return live, True

        job = Job(
            id=f"job-{next(self._job_seq):06d}",
            key=key,
            request=request,
            material=material,
            priority=priority,
        )
        if hit is not None:
            # Warm cache: complete without queue or worker pool.
            self.cache_hits.inc()
            job.source = "cache"
            job.result = hit
            job.state = DONE
            job.finished_at = time.time()
            self.jobs[job.id] = job
            self.completed.inc()
            self.latency.observe(job.finished_at - job.submitted_at)
            return job, False

        try:
            self.queue.push(job, retry_after=self.retry_after_hint())
        except QueueFull:
            self.rejected.inc()
            raise
        self.jobs[job.id] = job
        self.inflight[key] = job
        async with self._work:
            self._work.notify()
        return job, False

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)

    async def wait(self, job: Job, timeout: float | None = None) -> Job:
        """Block (async) until ``job`` is terminal or ``timeout`` runs out."""
        if job.terminal:
            return job
        try:
            async with self._changed:
                await asyncio.wait_for(
                    self._changed.wait_for(lambda: job.terminal), timeout
                )
        except asyncio.TimeoutError:
            pass
        return job

    async def wait_change(self, version: int, timeout: float) -> int:
        """Event-stream helper: wait until the change counter moves."""
        try:
            async with self._changed:
                await asyncio.wait_for(
                    self._changed.wait_for(
                        lambda: self._version != version
                    ),
                    timeout,
                )
        except asyncio.TimeoutError:
            pass
        return self._version

    async def _publish(self) -> None:
        async with self._changed:
            self._version += 1
            self._changed.notify_all()

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        while True:
            async with self._work:
                await self._work.wait_for(
                    lambda: len(self.queue) > 0 or self.draining
                )
                if len(self.queue) == 0:
                    break  # draining and the queue is dry: retire
                job = self.queue.pop()
                self._running += 1
            try:
                await self._run_job(job)
            finally:
                self._running -= 1
                await self._publish()
        await self._publish()

    async def _run_job(self, job: Job) -> None:
        job.state = RUNNING
        job.started_at = time.time()
        await self._publish()
        last_error = "unknown"
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.retries.inc()
                await asyncio.sleep(self.backoff_base * 2 ** (attempt - 1))
            job.attempts = attempt + 1
            future = None
            try:
                future = self.submit_fn(job.request)
                payload = await asyncio.wait_for(
                    asyncio.wrap_future(future), self.job_timeout
                )
            except asyncio.TimeoutError:
                self.timeouts.inc()
                last_error = (
                    f"attempt {attempt + 1} timed out "
                    f"after {self.job_timeout:.1f}s"
                )
                if future is not None:
                    # Best effort: a queued task dies here; a task already
                    # on a worker process runs to waste (documented).
                    future.cancel()
                continue
            except Exception as exc:  # noqa: BLE001 - retried, then surfaced
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            try:
                self._finish(job, payload)
            except Exception as exc:  # noqa: BLE001 - corrupt payload
                last_error = (
                    f"result publication failed: {type(exc).__name__}: {exc}"
                )
                continue
            return
        job.state = FAILED
        job.error = last_error
        job.finished_at = time.time()
        self.inflight.pop(job.key, None)
        self.failures.inc()

    def _finish(self, job: Job, payload: dict) -> None:
        result = RunResult.from_dict(payload["result"])
        elapsed = payload.get("elapsed", 0.0)
        self._service_time = 0.8 * self._service_time + 0.2 * max(
            0.001, elapsed
        )
        # Thread/inline executors simulate in this process, where
        # SIM_COUNTER already ticked; mirror only cross-process work.
        if payload.get("worker") != os.getpid():
            SIM_COUNTER.add()
        self.simulations.inc()
        self.session.store(job.key, job.material, result)
        job.source = "simulated"
        job.result = result
        job.state = DONE
        job.finished_at = time.time()
        self.inflight.pop(job.key, None)
        self.completed.inc()
        self.latency.observe(job.finished_at - job.submitted_at)

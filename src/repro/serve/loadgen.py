"""Load generator for ``repro serve``: replay workloads, report latency.

Two arrival disciplines, both driving the server purely through
:class:`~repro.serve.client.ServeClient`:

* **closed loop** — ``concurrency`` synthetic clients, each submitting
  its next request the moment the previous one completes (classic
  think-time-zero closed system; offered load adapts to the server);
* **open loop** — requests arrive on a fixed schedule at ``rate``
  requests/second regardless of completions (measures behaviour under
  an offered load the server does not control — the discipline that
  actually exposes queueing delay and backpressure).

The workload is a deterministic shuffle of ``distinct`` benchmark
kernels across ``requests`` submissions, so duplicates are guaranteed
whenever ``requests > distinct`` — exactly the shape that exercises
request coalescing and the warm-cache short-circuit.  The report
carries client-side throughput and latency percentiles plus the
server's own ``/v1/metrics`` deltas, and :func:`verify_cold_run` checks
the service contract a cold-cache run must satisfy (zero failures, one
simulation per distinct key, every duplicate answered by coalescing or
cache).
"""

from __future__ import annotations

import json
import math
import random
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.serve.client import Backpressure, ServeClient

#: Default kernel mix: paper benchmarks spanning best case (lib),
#: worst case (aes), and heavy-divergence workloads.
DEFAULT_BENCHMARKS = (
    "lib",
    "pathfinder",
    "hotspot",
    "nw",
    "bfs",
    "kmeans",
    "gaussian",
    "srad",
    "spmv",
    "aes",
    "backprop",
    "dwt2d",
)


@dataclass(frozen=True)
class LoadSpec:
    """One load-generation run, fully determined by its fields."""

    requests: int = 50
    concurrency: int = 4
    mode: str = "closed"  # "closed" | "open"
    rate: float = 10.0  # open-loop arrivals per second
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS
    distinct: int = 10
    seed: int = 0
    timing: bool = False
    policy: str = "warped"
    scale: str = "small"
    priority: int = 0


def build_workload(spec: LoadSpec) -> list[dict]:
    """The deterministic request sequence for ``spec``.

    Cycles the first ``distinct`` benchmarks across ``requests`` slots
    (guaranteeing exactly ``min(distinct, requests)`` distinct cache
    keys), then shuffles with ``spec.seed`` so arrival order interleaves
    duplicates realistically.
    """
    if spec.distinct < 1:
        raise ValueError("distinct must be >= 1")
    names = [
        spec.benchmarks[i % len(spec.benchmarks)]
        for i in range(min(spec.distinct, spec.requests))
    ]
    sequence = [names[i % len(names)] for i in range(spec.requests)]
    random.Random(spec.seed).shuffle(sequence)
    return [
        {
            "benchmark": name,
            "policy": spec.policy,
            "timing": spec.timing,
            "scale": spec.scale,
        }
        for name in sequence
    ]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in 0..100) of ``values``."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def latency_summary(latencies: list[float]) -> dict:
    return {
        "count": len(latencies),
        "mean": sum(latencies) / len(latencies) if latencies else 0.0,
        "p50": percentile(latencies, 50),
        "p90": percentile(latencies, 90),
        "p95": percentile(latencies, 95),
        "p99": percentile(latencies, 99),
        "max": max(latencies, default=0.0),
    }


@dataclass
class LoadReport:
    """Everything one loadgen run measured (JSON artifact payload)."""

    spec: LoadSpec
    ok: int = 0
    failed: int = 0
    backpressure_retries: int = 0
    duration_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    distinct_keys: int = 0
    server_metrics: dict = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "spec": asdict(self.spec),
            "requests": self.spec.requests,
            "ok": self.ok,
            "failed": self.failed,
            "backpressure_retries": self.backpressure_retries,
            "distinct_keys": self.distinct_keys,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "latency_s": latency_summary(self.latencies_s),
            "errors": self.errors[:20],
            "server_metrics": self.server_metrics,
        }

    def render(self) -> str:
        latency = latency_summary(self.latencies_s)
        lines = [
            f"loadgen [{self.spec.mode} loop]: "
            f"{self.ok}/{self.spec.requests} ok, "
            f"{self.failed} failed, "
            f"{self.backpressure_retries} backpressure retries",
            f"  duration {self.duration_s:.2f}s — "
            f"{self.throughput_rps:.1f} req/s over "
            f"{self.distinct_keys} distinct keys",
            "  latency p50 {p50:.3f}s  p90 {p90:.3f}s  p95 {p95:.3f}s  "
            "p99 {p99:.3f}s  max {max:.3f}s".format(**latency),
        ]
        metrics = self.server_metrics.get("metrics", {})
        if metrics:
            lines.append(
                "  server: {sims:.0f} simulations, {coal:.0f} coalesced, "
                "{hits:.0f} cache hits, {rej:.0f} rejected".format(
                    sims=metrics.get("serve.simulations", 0),
                    coal=metrics.get("serve.coalesced", 0),
                    hits=metrics.get("serve.cache_hits", 0),
                    rej=metrics.get("serve.rejected", 0),
                )
            )
        return "\n".join(lines)


def run_loadgen(
    host: str,
    port: int,
    spec: LoadSpec,
    *,
    deadline: float = 600.0,
) -> LoadReport:
    """Execute one load run against a live server and measure it."""
    workload = build_workload(spec)
    report = LoadReport(
        spec=spec,
        distinct_keys=len({item["benchmark"] for item in workload}),
    )
    lock = threading.Lock()
    client = ServeClient(host, port)

    def _measure(item: dict) -> None:
        shed = []
        start = time.perf_counter()
        try:
            local = ServeClient(host, port)
            local.run(
                item,
                spec.priority,
                deadline=deadline,
                on_backpressure=lambda exc: shed.append(exc),
            )
            elapsed = time.perf_counter() - start
            with lock:
                report.ok += 1
                report.latencies_s.append(elapsed)
                report.backpressure_retries += len(shed)
        except Exception as exc:  # noqa: BLE001 - tallied, not raised
            with lock:
                report.failed += 1
                report.backpressure_retries += len(shed)
                report.errors.append(
                    f"{item['benchmark']}: {type(exc).__name__}: {exc}"
                )

    begin = time.perf_counter()
    if spec.mode == "closed":
        pending = list(enumerate(workload))
        pending.reverse()

        def _client_loop() -> None:
            while True:
                with lock:
                    if not pending:
                        return
                    _, item = pending.pop()
                _measure(item)

        threads = [
            threading.Thread(target=_client_loop, daemon=True)
            for _ in range(max(1, spec.concurrency))
        ]
    elif spec.mode == "open":
        threads = []
        for index, item in enumerate(workload):
            arrival = index / spec.rate if spec.rate > 0 else 0.0

            def _timed(item=item, arrival=arrival) -> None:
                delay = arrival - (time.perf_counter() - begin)
                if delay > 0:
                    time.sleep(delay)
                _measure(item)

            threads.append(threading.Thread(target=_timed, daemon=True))
    else:
        raise ValueError(f"unknown loadgen mode {spec.mode!r}")

    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.duration_s = time.perf_counter() - begin

    try:
        report.server_metrics = client.metrics()
    except Exception as exc:  # noqa: BLE001 - metrics are best-effort
        report.errors.append(f"metrics scrape failed: {exc}")
    return report


def verify_cold_run(report: LoadReport) -> list[str]:
    """Service-contract check for a run against a *cold* cache.

    Returns human-readable problems (empty = contract held):

    * every request succeeded;
    * the server simulated exactly once per distinct cache key;
    * all duplicate submissions were answered by coalescing or the
      warm-cache short-circuit (their counters account for every
      non-first submission).
    """
    problems = []
    if report.failed:
        problems.append(f"{report.failed} requests failed")
    if report.ok != report.spec.requests:
        problems.append(
            f"expected {report.spec.requests} ok, got {report.ok}"
        )
    metrics = report.server_metrics.get("metrics", {})
    if not metrics:
        problems.append("no server metrics captured")
        return problems
    simulations = metrics.get("serve.simulations", 0)
    if simulations != report.distinct_keys:
        problems.append(
            f"expected {report.distinct_keys} simulations "
            f"(one per distinct key), server performed {simulations:.0f}"
        )
    coalesced = metrics.get("serve.coalesced", 0)
    cache_hits = metrics.get("serve.cache_hits", 0)
    duplicates = report.spec.requests - report.distinct_keys
    if duplicates > 0 and coalesced + cache_hits < duplicates:
        problems.append(
            f"{duplicates} duplicate submissions but only "
            f"{coalesced:.0f} coalesced + {cache_hits:.0f} cache hits"
        )
    return problems


def write_report(report: LoadReport, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")

"""Thin synchronous client for a ``repro serve`` instance (stdlib only).

Built on :mod:`http.client`, one connection per call (mirroring the
server's ``Connection: close`` policy).  The load generator and tests
drive the service exclusively through this module, so it doubles as the
reference for the wire protocol.

Typical use::

    client = ServeClient("127.0.0.1", 8642)
    result = client.run({"benchmark": "lib", "timing": False})
    print(result.benchmark, result.value.instructions)

:meth:`ServeClient.run` is the high-level path: submit, transparently
re-submit on ``429`` backpressure (honouring ``Retry-After``), long-poll
until terminal, fetch the :class:`~repro.sim.result.RunResult`.
"""

from __future__ import annotations

import time
from dataclasses import asdict

from repro.serve.http import http_json_call
from repro.sim.result import RunResult
from repro.sim.session import SimRequest


class ServeError(Exception):
    """Base class for protocol-level failures."""

    def __init__(self, status: int, detail: str):
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.detail = detail


class Backpressure(ServeError):
    """The server rejected a submission (bounded queue at capacity)."""

    def __init__(self, status: int, detail: str, retry_after: float):
        super().__init__(status, detail)
        self.retry_after = retry_after


class JobFailed(ServeError):
    """The job reached the ``failed`` terminal state."""


def request_payload(request: SimRequest | dict) -> dict:
    """Normalize a request spec into the wire format."""
    if isinstance(request, SimRequest):
        spec = asdict(request)
        spec["config_overrides"] = dict(request.config_overrides)
    else:
        spec = dict(request)
    if not spec.get("config_overrides"):
        spec.pop("config_overrides", None)
    return spec


class ServeClient:
    """Blocking JSON-over-HTTP client for one server endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Raw HTTP
    # ------------------------------------------------------------------
    def _call(self, method: str, path: str, body: dict | None = None):
        return http_json_call(
            self.host, self.port, method, path, body, timeout=self.timeout
        )

    def _checked(self, method: str, path: str, body: dict | None = None):
        status, headers, payload = self._call(method, path, body)
        if status == 429:
            retry_after = float(
                headers.get("Retry-After")
                or payload.get("retry_after")
                or 1.0
            )
            raise Backpressure(
                status, payload.get("error", "queue full"), retry_after
            )
        if status >= 400:
            raise ServeError(status, payload.get("error", str(payload)))
        return status, payload

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._checked("GET", "/healthz")[1]

    def metrics(self) -> dict:
        return self._checked("GET", "/v1/metrics")[1]

    def jobs(self) -> list[dict]:
        return self._checked("GET", "/v1/jobs")[1]["jobs"]

    def drain(self) -> dict:
        return self._checked("POST", "/v1/drain")[1]

    def submit(
        self, request: SimRequest | dict, priority: int = 0
    ) -> dict:
        """Submit one request; returns the job status payload.

        Raises :class:`Backpressure` on 429 — callers decide whether to
        honour ``retry_after`` and resubmit (``run`` does).
        """
        body = {"request": request_payload(request), "priority": priority}
        _status, payload = self._checked("POST", "/v1/jobs", body)
        return payload

    def status(self, job_id: str, wait: float | None = None) -> dict:
        path = f"/v1/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
        return self._checked("GET", path)[1]["job"]

    def result(self, job_id: str) -> RunResult:
        _status, payload = self._checked(
            "GET", f"/v1/jobs/{job_id}/result"
        )
        if payload.get("result") is None:
            job = payload.get("job", {})
            raise JobFailed(200, job.get("error") or "job failed")
        return RunResult.from_dict(payload["result"])

    # ------------------------------------------------------------------
    # High-level round trip
    # ------------------------------------------------------------------
    def run(
        self,
        request: SimRequest | dict,
        priority: int = 0,
        *,
        poll_wait: float = 10.0,
        deadline: float = 600.0,
        on_backpressure=None,
    ) -> RunResult:
        """Submit + wait + fetch, resubmitting politely under 429s.

        ``on_backpressure`` (if given) is called with each
        :class:`Backpressure` before the client sleeps and retries —
        the load generator counts shed requests through it.
        """
        give_up = time.monotonic() + deadline
        while True:
            try:
                submission = self.submit(request, priority)
                break
            except Backpressure as exc:
                if on_backpressure is not None:
                    on_backpressure(exc)
                if time.monotonic() + exc.retry_after > give_up:
                    raise
                time.sleep(exc.retry_after)
        job = submission["job"]
        while job["state"] not in ("done", "failed"):
            if time.monotonic() > give_up:
                raise ServeError(408, f"job {job['id']} still {job['state']}")
            job = self.status(job["id"], wait=poll_wait)
        if job["state"] == "failed":
            raise JobFailed(200, job.get("error") or "job failed")
        return self.result(job["id"])

    def wait_ready(self, deadline: float = 10.0) -> bool:
        """Poll ``/healthz`` until the server answers (boot helper)."""
        give_up = time.monotonic() + deadline
        while time.monotonic() < give_up:
            try:
                self.health()
                return True
            except (OSError, ServeError):
                time.sleep(0.05)
        return False

"""Asyncio JSON-over-HTTP front end for the job scheduler (stdlib only).

A deliberately small HTTP/1.1 implementation over ``asyncio`` streams —
no framework, one connection per request (``Connection: close``) — that
exposes the :class:`~repro.serve.jobs.JobScheduler` as a service:

====== ============================ =====================================
POST   ``/v1/jobs``                 submit a ``SimRequest`` (JSON body);
                                    ``200`` cached result, ``202``
                                    queued/coalesced, ``400`` bad
                                    request, ``429`` + ``Retry-After``
                                    backpressure, ``503`` draining
GET    ``/v1/jobs``                 list job summaries
GET    ``/v1/jobs/<id>``            job status; ``?wait=S`` long-polls
                                    until terminal (max S seconds)
GET    ``/v1/jobs/<id>/result``     the ``RunResult`` artifact (``409``
                                    until the job is terminal)
GET    ``/v1/jobs/<id>/events``     server-sent-events status stream
GET    ``/v1/metrics``              scheduler + session cache metrics
                                    (``/metrics`` is an alias)
GET    ``/healthz``                 liveness / drain state
POST   ``/v1/drain``                begin graceful drain (also SIGTERM)
====== ============================ =====================================

Submission body::

    {"request": {"benchmark": "lib", "policy": "warped",
                 "timing": false, "scale": "small", ...},
     "priority": 0}

``request`` accepts every :class:`~repro.sim.session.SimRequest` field;
``config_overrides`` as a ``{name: value}`` object.
"""

from __future__ import annotations

import asyncio
import json
import signal
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

from repro.obs.log import get_logger
from repro.obs.metrics import MetricRegistry
from repro.serve.http import (
    MAX_BODY,
    BadRequest,
    read_request,
    respond,
)
from repro.serve.jobs import (
    Draining,
    JobScheduler,
    QueueFull,
    default_submit_fn,
)
from repro.sim.session import Session, SimRequest

__all__ = [
    "BadRequest",
    "MAX_BODY",
    "ServeApp",
    "ServeConfig",
    "WORKERS_ENV",
    "parse_sim_request",
    "run_server",
    "start_app",
]

logger = get_logger("serve.server")

#: Environment variable providing the default worker-pool size.
WORKERS_ENV = "REPRO_SERVE_WORKERS"


@dataclass(frozen=True)
class ServeConfig:
    """Everything `repro serve` needs to boot one server."""

    host: str = "127.0.0.1"
    port: int = 8642
    workers: int = 2
    #: ``process`` (default) or ``thread`` (in-process; tests/debugging)
    executor: str = "process"
    max_queue: int = 256
    job_timeout: float = 300.0
    max_retries: int = 2
    backoff_base: float = 0.5
    drain_timeout: float = 30.0
    cache_dir: str | None = None
    use_disk_cache: bool = True
    scale: str = "small"


def parse_sim_request(payload: dict, default_scale: str) -> SimRequest:
    """Build a validated :class:`SimRequest` from a JSON submission."""
    from repro.kernels import benchmark_names

    if not isinstance(payload, dict):
        raise BadRequest("body must be a JSON object")
    spec = payload.get("request")
    if not isinstance(spec, dict):
        raise BadRequest('body must carry a "request" object')
    spec = dict(spec)
    benchmark = spec.pop("benchmark", None)
    if not benchmark:
        raise BadRequest('request needs a "benchmark"')
    known = set(benchmark_names()) | set(benchmark_names(extended=True))
    if benchmark not in known:
        raise BadRequest(f"unknown benchmark {benchmark!r}")
    overrides = spec.pop("config_overrides", None)
    if overrides is not None:
        if not isinstance(overrides, dict):
            raise BadRequest("config_overrides must be an object")
        spec["config_overrides"] = tuple(sorted(overrides.items()))
    spec.setdefault("scale", default_scale)
    allowed = set(SimRequest.__dataclass_fields__)
    unknown = set(spec) - allowed
    if unknown:
        raise BadRequest(f"unknown request fields: {sorted(unknown)}")
    try:
        request = SimRequest(benchmark=benchmark, **spec)
        request.gpu_config()  # force config validation up front
    except (TypeError, ValueError) as exc:
        raise BadRequest(str(exc)) from exc
    return request


class ServeApp:
    """Routes HTTP requests onto one scheduler; owns server lifecycle."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.metrics = MetricRegistry(enabled=True)
        self.requests = self.metrics.counter("serve.http_requests")
        self.session = Session(
            scale=config.scale,
            cache_dir=config.cache_dir,
            use_disk_cache=config.use_disk_cache,
        )
        pool_cls = (
            ThreadPoolExecutor
            if config.executor == "thread"
            else ProcessPoolExecutor
        )
        self.executor = pool_cls(max_workers=config.workers)
        self.scheduler = JobScheduler(
            self.session,
            default_submit_fn(self.executor),
            workers=config.workers,
            max_queue=config.max_queue,
            job_timeout=config.job_timeout,
            max_retries=config.max_retries,
            backoff_base=config.backoff_base,
            metrics=self.metrics,
        )
        self._server: asyncio.base_events.Server | None = None
        self._stopped = asyncio.Event()
        self._shutting_down = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind, start workers, and return the bound (host, port)."""
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        logger.info(
            f"repro serve listening on http://{host}:{port} "
            f"({self.config.workers} {self.config.executor} workers, "
            f"queue bound {self.config.max_queue})"
        )
        return host, port

    async def shutdown(self, *, drain: bool = True) -> None:
        """Graceful stop: drain jobs, close listeners and the pool."""
        if self._shutting_down:
            await self._stopped.wait()
            return
        self._shutting_down = True
        if drain:
            drained = await self.scheduler.drain(self.config.drain_timeout)
            if not drained:
                logger.warning(
                    "drain timed out; abandoning unfinished jobs"
                )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.scheduler.close()
        self.executor.shutdown(wait=False, cancel_futures=True)
        self._stopped.set()

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`shutdown` completes (CLI main loop)."""
        await self._stopped.wait()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain, then exit."""
        loop = asyncio.get_running_loop()

        def _initiate(signame: str) -> None:
            logger.info(f"received {signame}: draining")
            asyncio.ensure_future(self.shutdown(drain=True))

        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, _initiate, sig.name)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except BadRequest as exc:
                await self._respond(writer, 400, {"error": str(exc)})
                return
            self.requests.inc()
            try:
                await self._route(writer, method, path, query, body)
            except BadRequest as exc:
                await self._respond(writer, 400, {"error": str(exc)})
            except QueueFull as exc:
                await self._respond(
                    writer,
                    429,
                    {
                        "error": "queue full",
                        "retry_after": exc.retry_after,
                    },
                    extra_headers={
                        "Retry-After": str(max(1, int(exc.retry_after)))
                    },
                )
            except Draining:
                await self._respond(
                    writer, 503, {"error": "server is draining"}
                )
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                logger.warning(f"internal error serving {path}: {exc}")
                await self._respond(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError, asyncio.CancelledError):
                # CancelledError: the loop is tearing down mid-close
                # (drain-initiated shutdown); the socket is going away
                # with it, so there is nothing left to clean up.
                pass

    # The wire dialect lives in repro.serve.http, shared with the
    # cluster coordinator; these aliases keep call sites short.
    _read_request = staticmethod(read_request)
    _respond = staticmethod(respond)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, writer, method, path, query, body) -> None:
        if path == "/healthz" and method == "GET":
            await self._respond(
                writer,
                200,
                {
                    "status": (
                        "draining" if self.scheduler.draining else "ok"
                    ),
                    "jobs": len(self.scheduler.jobs),
                    "queued": len(self.scheduler.queue),
                },
            )
            return
        if path in ("/v1/metrics", "/metrics") and method == "GET":
            await self._respond(writer, 200, self._metrics_payload())
            return
        if path == "/v1/drain" and method == "POST":
            asyncio.ensure_future(self.shutdown(drain=True))
            await self._respond(writer, 202, {"status": "draining"})
            return
        if path == "/v1/jobs" and method == "POST":
            await self._submit(writer, body)
            return
        if path == "/v1/jobs" and method == "GET":
            await self._respond(
                writer,
                200,
                {
                    "jobs": [
                        job.to_dict()
                        for job in self.scheduler.jobs.values()
                    ]
                },
            )
            return
        if path.startswith("/v1/jobs/"):
            await self._job_resource(writer, method, path, query)
            return
        await self._respond(writer, 404, {"error": f"no route {path}"})

    def _metrics_payload(self) -> dict:
        # Cross-warp batching counters are process-global; under the
        # process-pool executor the workers accumulate their own copies,
        # so this snapshot covers in-process (thread-executor) runs only.
        from repro.gpu.batch import BATCH_STATS

        return {
            "metrics": self.metrics.read_all(),
            "histograms": self.metrics.histograms(),
            "batching": BATCH_STATS.snapshot(),
            "draining": self.scheduler.draining,
        }

    async def _submit(self, writer, body: bytes) -> None:
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from exc
        request = parse_sim_request(payload, self.config.scale)
        priority = payload.get("priority", 0)
        if not isinstance(priority, int):
            raise BadRequest("priority must be an integer")
        job, coalesced = await self.scheduler.submit(request, priority)
        status = 200 if job.state == "done" else 202
        await self._respond(
            writer,
            status,
            {"job": job.to_dict(), "coalesced": coalesced},
        )

    async def _job_resource(self, writer, method, path, query) -> None:
        if method != "GET":
            await self._respond(writer, 405, {"error": "GET only"})
            return
        parts = path.split("/")  # '', 'v1', 'jobs', '<id>'[, sub]
        job = self.scheduler.get(parts[3])
        if job is None:
            await self._respond(writer, 404, {"error": "unknown job"})
            return
        sub = parts[4] if len(parts) > 4 and parts[4] else None
        if sub is None:
            wait = query.get("wait")
            if wait is not None:
                try:
                    timeout = min(60.0, max(0.0, float(wait)))
                except ValueError as exc:
                    raise BadRequest("wait must be a number") from exc
                await self.scheduler.wait(job, timeout)
            await self._respond(writer, 200, {"job": job.to_dict()})
            return
        if sub == "result":
            if not job.terminal:
                await self._respond(
                    writer,
                    409,
                    {"error": "job not finished", "state": job.state},
                )
            elif job.state == "failed":
                await self._respond(
                    writer,
                    200,
                    {"job": job.to_dict(), "result": None},
                )
            else:
                await self._respond(
                    writer, 200, job.to_dict(include_result=True)
                )
            return
        if sub == "events":
            await self._stream_events(writer, job)
            return
        await self._respond(writer, 404, {"error": f"no route {path}"})

    async def _stream_events(self, writer, job) -> None:
        """Server-sent-events: one ``data:`` line per state change."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        version = -1
        last_state = None
        while True:
            if job.state != last_state:
                last_state = job.state
                data = json.dumps(job.to_dict(), sort_keys=True)
                writer.write(f"data: {data}\n\n".encode())
                await writer.drain()
            if job.terminal:
                return
            version = await self.scheduler.wait_change(version, 5.0)


async def start_app(config: ServeConfig) -> tuple[ServeApp, str, int]:
    """Boot a server programmatically; returns (app, host, port)."""
    app = ServeApp(config)
    host, port = await app.start()
    return app, host, port


def run_server(config: ServeConfig) -> int:
    """Blocking CLI entry: serve until SIGTERM/SIGINT drains us."""

    async def _main() -> None:
        app = ServeApp(config)
        await app.start()
        app.install_signal_handlers()
        await app.serve_until_stopped()
        logger.info("repro serve stopped")

    asyncio.run(_main())
    return 0

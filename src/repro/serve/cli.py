"""CLI glue for ``repro serve`` and ``repro loadgen``.

Kept separate from :mod:`repro.verify.cli` (which owns the ``repro``
entry point and registers these subcommands) so the serving stack only
imports when actually used.

Knobs, mirroring the ``warped-compression`` runner's conventions:

* ``--workers`` / ``$REPRO_SERVE_WORKERS`` — simulation worker-pool
  size (the serving analogue of the runner's ``--jobs``);
* ``--cache-dir`` / ``$REPRO_CACHE_DIR`` — shared content-addressed
  result cache (same directory the CLI drivers use, so a warm CLI
  cache pre-answers server traffic and vice versa).
"""

from __future__ import annotations

import os

from repro.serve.loadgen import (
    DEFAULT_BENCHMARKS,
    LoadSpec,
    run_loadgen,
    verify_cold_run,
    write_report,
)
from repro.serve.server import WORKERS_ENV, ServeConfig, run_server


def _default_workers() -> int:
    try:
        return max(1, int(os.environ.get(WORKERS_ENV, "2")))
    except ValueError:
        return 2


def add_serve_parser(sub) -> None:
    serve = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP server",
        description="Long-lived asyncio JSON-over-HTTP server: submit "
        "SimRequests, poll or stream job status, fetch RunResult "
        "artifacts, scrape metrics.  Identical in-flight requests "
        "coalesce onto one job; results persist in the shared "
        "content-addressed cache; a bounded queue sheds overload with "
        "429 + Retry-After; SIGTERM drains gracefully.",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument(
        "--workers",
        type=int,
        default=_default_workers(),
        metavar="N",
        help="simulation worker-pool size (default: $REPRO_SERVE_WORKERS "
        "or 2)",
    )
    serve.add_argument(
        "--executor",
        choices=("process", "thread"),
        default="process",
        help="worker pool kind (thread = in-process, for debugging)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=256,
        metavar="N",
        help="admission-control bound on queued jobs (default 256)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="per-attempt simulation timeout (default 300)",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per job after timeout/crash, with exponential "
        "backoff (default 2)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="max wait for in-flight jobs on SIGTERM (default 30)",
    )
    serve.add_argument(
        "--scale",
        choices=("small", "default"),
        default="small",
        help="default workload scale for requests that omit one",
    )
    serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="result cache location (default: .repro-cache or "
        "$REPRO_CACHE_DIR)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache (memo only)",
    )


def cmd_serve(args) -> int:
    if args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        executor=args.executor,
        max_queue=args.max_queue,
        job_timeout=args.timeout,
        max_retries=args.retries,
        drain_timeout=args.drain_timeout,
        cache_dir=args.cache_dir,
        use_disk_cache=not args.no_cache,
        scale=args.scale,
    )
    return run_server(config)


def add_loadgen_parser(sub) -> None:
    loadgen = sub.add_parser(
        "loadgen",
        help="replay a workload against a repro serve instance",
        description="Open- or closed-loop load generation through the "
        "serve client library; reports throughput, latency percentiles "
        "(p50/p95/p99), backpressure retries, and the server's own "
        "coalescing/cache counters to a JSON artifact.",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8642)
    loadgen.add_argument(
        "--requests", type=int, default=50, metavar="N",
        help="total submissions (default 50)",
    )
    loadgen.add_argument(
        "--concurrency", type=int, default=4, metavar="N",
        help="closed-loop client count (default 4)",
    )
    loadgen.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help="closed: next request on completion; open: fixed-rate "
        "arrivals (default closed)",
    )
    loadgen.add_argument(
        "--rate", type=float, default=10.0, metavar="RPS",
        help="open-loop arrival rate (default 10/s)",
    )
    loadgen.add_argument(
        "--distinct", type=int, default=10, metavar="N",
        help="distinct kernels in the mix; the rest are duplicates "
        "(default 10)",
    )
    loadgen.add_argument(
        "--benchmarks", nargs="+", metavar="NAME",
        help=f"kernel pool (default: {' '.join(DEFAULT_BENCHMARKS[:4])} "
        "...)",
    )
    loadgen.add_argument(
        "--seed", type=int, default=0,
        help="workload shuffle seed (default 0)",
    )
    loadgen.add_argument(
        "--timing", action="store_true",
        help="submit cycle-level runs (default: functional)",
    )
    loadgen.add_argument(
        "--policy", default="warped",
        help="compression policy (default warped)",
    )
    loadgen.add_argument(
        "--scale", choices=("small", "default"), default="small",
    )
    loadgen.add_argument(
        "--out", metavar="FILE",
        help="write the latency/throughput JSON artifact here",
    )
    loadgen.add_argument(
        "--check-cold",
        action="store_true",
        help="assert the cold-cache service contract (zero failures, "
        "one simulation per distinct key, duplicates coalesced/cached); "
        "exit non-zero on violation",
    )


def cmd_loadgen(args) -> int:
    spec = LoadSpec(
        requests=args.requests,
        concurrency=args.concurrency,
        mode=args.mode,
        rate=args.rate,
        benchmarks=tuple(args.benchmarks or DEFAULT_BENCHMARKS),
        distinct=args.distinct,
        seed=args.seed,
        timing=args.timing,
        policy=args.policy,
        scale=args.scale,
    )
    report = run_loadgen(args.host, args.port, spec)
    print(report.render())
    if args.out:
        write_report(report, args.out)
        print(f"wrote {args.out}")
    if args.check_cold:
        problems = verify_cold_run(report)
        for problem in problems:
            print(f"  CONTRACT VIOLATION: {problem}")
        if problems:
            return 1
        print("cold-run contract held: one simulation per distinct key, "
              "all duplicates coalesced or cache-served")
        return 0
    return 0 if report.failed == 0 else 1

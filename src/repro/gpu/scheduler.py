"""Warp schedulers: Greedy-Then-Oldest and Loose Round-Robin.

The paper's baseline uses GTO (Table 2): keep issuing from the same warp
until it stalls, then switch to the oldest ready warp.  Section 6.5
replaces it with LRR, which rotates to the next ready warp every
scheduling cycle, to show the energy results are scheduler-insensitive
(Figure 14).
"""

from __future__ import annotations

from typing import Callable


class WarpScheduler:
    """One of the SM's schedulers, owning a subset of the warp slots."""

    def __init__(self, policy: str):
        if policy not in ("gto", "lrr"):
            raise ValueError(f"unknown scheduler policy {policy!r}")
        self.policy = policy
        self._warps: list[int] = []  # insertion order = age order
        self._warp_set: set[int] = set()  # O(1) membership for pick
        self._last_issued: int | None = None
        self._rr_index = 0
        #: Bumped on every membership change; the SM's per-scheduler
        #: blocked snapshots use it to detect warps arriving or retiring.
        self.generation = 0
        # Bind the policy dispatch once: pick() is called per scheduler
        # per ticked cycle, so the per-call branch is worth removing.
        self.pick = self._pick_gto if policy == "gto" else self._pick_lrr

    def add_warp(self, warp_slot: int) -> None:
        """Register a newly-launched warp (age = arrival order)."""
        if warp_slot in self._warp_set:
            raise ValueError(f"warp {warp_slot} already scheduled")
        self._warps.append(warp_slot)
        self._warp_set.add(warp_slot)
        self.generation += 1

    def remove_warp(self, warp_slot: int) -> None:
        """Drop a finished warp."""
        self._warps.remove(warp_slot)
        self._warp_set.discard(warp_slot)
        if self._last_issued == warp_slot:
            self._last_issued = None
        self.generation += 1

    # pick(can_issue, blocked) -> int | None selects a warp to issue this
    # cycle; it is bound per-instance in __init__ to the policy's picker.
    # ``can_issue`` encapsulates all readiness checks (scoreboard,
    # barrier, collector availability, instruction availability).
    # ``blocked`` is the SM's set of warps with a still-valid memoized
    # cannot-issue verdict: skipping them is exactly equivalent to
    # calling ``can_issue`` (which would return False with no side
    # effects), just without the call.

    _NONE_BLOCKED: frozenset[int] = frozenset()

    def _pick_gto(
        self,
        can_issue: Callable[[int], bool],
        blocked: "set[int] | frozenset[int]" = _NONE_BLOCKED,
    ) -> int | None:
        # Greedy: stick with the last-issued warp while it can issue.
        last = self._last_issued
        if (
            last is not None
            and last not in blocked
            and last in self._warp_set
            and can_issue(last)
        ):
            return last
        # Then-oldest: scan in age (arrival) order.
        for warp in self._warps:
            if warp not in blocked and can_issue(warp):
                self._last_issued = warp
                return warp
        return None

    def _pick_lrr(
        self,
        can_issue: Callable[[int], bool],
        blocked: "set[int] | frozenset[int]" = _NONE_BLOCKED,
    ) -> int | None:
        n = len(self._warps)
        if not n:
            return None
        for i in range(n):
            warp = self._warps[(self._rr_index + i) % n]
            if warp not in blocked and can_issue(warp):
                # Loose round-robin: next cycle starts after this warp.
                self._rr_index = (self._warps.index(warp) + 1) % n
                return warp
        return None

    @property
    def warps(self) -> tuple[int, ...]:
        return tuple(self._warps)

    def __len__(self) -> int:
        return len(self._warps)

    def attach_metrics(self, registry, index: int) -> None:
        """Register resident-warp depth into a metric registry."""
        registry.probe(f"scheduler{index}.resident_warps", self.__len__)

"""Warp schedulers: Greedy-Then-Oldest and Loose Round-Robin.

The paper's baseline uses GTO (Table 2): keep issuing from the same warp
until it stalls, then switch to the oldest ready warp.  Section 6.5
replaces it with LRR, which rotates to the next ready warp every
scheduling cycle, to show the energy results are scheduler-insensitive
(Figure 14).
"""

from __future__ import annotations

from typing import Callable


class WarpScheduler:
    """One of the SM's schedulers, owning a subset of the warp slots."""

    def __init__(self, policy: str):
        if policy not in ("gto", "lrr"):
            raise ValueError(f"unknown scheduler policy {policy!r}")
        self.policy = policy
        self._warps: list[int] = []  # insertion order = age order
        self._last_issued: int | None = None
        self._rr_index = 0

    def add_warp(self, warp_slot: int) -> None:
        """Register a newly-launched warp (age = arrival order)."""
        if warp_slot in self._warps:
            raise ValueError(f"warp {warp_slot} already scheduled")
        self._warps.append(warp_slot)

    def remove_warp(self, warp_slot: int) -> None:
        """Drop a finished warp."""
        self._warps.remove(warp_slot)
        if self._last_issued == warp_slot:
            self._last_issued = None

    def pick(self, can_issue: Callable[[int], bool]) -> int | None:
        """Select a warp to issue from this cycle, or ``None``.

        ``can_issue`` encapsulates all readiness checks (scoreboard,
        barrier, collector availability, instruction availability).
        """
        if not self._warps:
            return None
        if self.policy == "gto":
            return self._pick_gto(can_issue)
        return self._pick_lrr(can_issue)

    def _pick_gto(self, can_issue: Callable[[int], bool]) -> int | None:
        # Greedy: stick with the last-issued warp while it can issue.
        if self._last_issued is not None and self._last_issued in self._warps:
            if can_issue(self._last_issued):
                return self._last_issued
        # Then-oldest: scan in age (arrival) order.
        for warp in self._warps:
            if can_issue(warp):
                self._last_issued = warp
                return warp
        return None

    def _pick_lrr(self, can_issue: Callable[[int], bool]) -> int | None:
        n = len(self._warps)
        for i in range(n):
            warp = self._warps[(self._rr_index + i) % n]
            if can_issue(warp):
                # Loose round-robin: next cycle starts after this warp.
                self._rr_index = (self._warps.index(warp) + 1) % n
                return warp
        return None

    @property
    def warps(self) -> tuple[int, ...]:
        return tuple(self._warps)

    def __len__(self) -> int:
        return len(self._warps)

    def attach_metrics(self, registry, index: int) -> None:
        """Register resident-warp depth into a metric registry."""
        registry.probe(f"scheduler{index}.resident_warps", self.__len__)

"""Global and shared memory models.

The paper's evaluation does not depend on memory-system detail beyond
latency (its metrics are register-file events), so memory is functional:
a flat 32-bit byte-addressed global space backed by allocated numpy
buffers, and a per-CTA shared scratchpad.  All accesses are 4-byte words,
4-byte aligned — the granularity of the thread registers being studied.

Gather/scatter over the 32 lanes of a warp is vectorised when every lane
falls inside one buffer (the overwhelmingly common case for the workloads
here) with a per-lane fallback otherwise.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

_ALIGN = 256


class MemoryError_(Exception):
    """An out-of-bounds or misaligned simulated memory access."""


class GlobalMemory:
    """Flat byte-addressed global memory built from allocated buffers.

    Addresses start at a non-zero base so that 0 behaves like an obvious
    null pointer.  Buffers are word (``uint32``) arrays; floats are stored
    via their bit patterns.
    """

    def __init__(self, base_address: int = 0x1000):
        self._next = base_address
        self._bases: list[int] = []
        self._buffers: list[np.ndarray] = []
        self._names: list[str] = []

    def alloc(self, words: int, name: str = "") -> int:
        """Allocate a zeroed buffer of ``words`` 32-bit words; returns base."""
        if words <= 0:
            raise ValueError(f"allocation must be positive, got {words} words")
        base = self._next
        self._bases.append(base)
        self._buffers.append(np.zeros(words, dtype=np.uint32))
        self._names.append(name or f"buf{len(self._bases)}")
        self._next = base + ((words * 4 + _ALIGN - 1) // _ALIGN) * _ALIGN
        return base

    def alloc_array(self, data: np.ndarray, name: str = "") -> int:
        """Allocate and initialise a buffer from ``data``.

        Integer arrays are stored as ``uint32``; float arrays as the bit
        patterns of their ``float32`` values.
        """
        flat = np.asarray(data).ravel()
        if flat.dtype.kind == "f":
            words = flat.astype(np.float32).view(np.uint32)
        else:
            words = flat.astype(np.int64).astype(np.uint32)
        base = self.alloc(len(words), name)
        self._buffers[-1][:] = words
        return base

    def _locate(self, address: int) -> tuple[int, np.ndarray]:
        idx = bisect_right(self._bases, address) - 1
        if idx < 0:
            raise MemoryError_(f"access to unmapped address {address:#x}")
        base, buf = self._bases[idx], self._buffers[idx]
        if address >= base + len(buf) * 4:
            raise MemoryError_(
                f"access to {address:#x} beyond buffer {self._names[idx]!r} "
                f"(base {base:#x}, {len(buf)} words)"
            )
        return base, buf

    def load_warp(self, addresses: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Gather one word per active lane; inactive lanes read zero."""
        out = np.zeros(len(addresses), dtype=np.uint32)
        if not mask.any():
            return out
        active_addrs = addresses[mask].astype(np.int64)
        if (active_addrs % 4).any():
            raise MemoryError_("misaligned global load")
        base, buf = self._locate(int(active_addrs.min()))
        offsets = (active_addrs - base) >> 2
        if int(active_addrs.max()) < base + len(buf) * 4:
            out[mask] = buf[offsets]
            return out
        # Slow path: lanes straddle buffers.
        values = np.empty(len(active_addrs), dtype=np.uint32)
        for i, addr in enumerate(active_addrs):
            b, lane_buf = self._locate(int(addr))
            values[i] = lane_buf[(int(addr) - b) >> 2]
        out[mask] = values
        return out

    def store_warp(
        self, addresses: np.ndarray, values: np.ndarray, mask: np.ndarray
    ) -> None:
        """Scatter one word per active lane."""
        if not mask.any():
            return
        active_addrs = addresses[mask].astype(np.int64)
        active_vals = values[mask].astype(np.uint32)
        if (active_addrs % 4).any():
            raise MemoryError_("misaligned global store")
        base, buf = self._locate(int(active_addrs.min()))
        if int(active_addrs.max()) < base + len(buf) * 4:
            buf[(active_addrs - base) >> 2] = active_vals
            return
        for addr, val in zip(active_addrs, active_vals):
            b, lane_buf = self._locate(int(addr))
            lane_buf[(int(addr) - b) >> 2] = val

    def snapshot(self) -> dict[str, np.ndarray]:
        """Copy of every buffer keyed by name — for bit-exact comparison.

        Buffer names repeat only if a caller allocated two buffers under
        the same explicit name; the key is then suffixed with the buffer
        ordinal so no state is silently dropped from the snapshot.
        """
        out: dict[str, np.ndarray] = {}
        for i, (name, buf) in enumerate(zip(self._names, self._buffers)):
            key = name if name not in out else f"{name}#{i}"
            out[key] = buf.copy()
        return out

    def read_array(self, base: int, words: int, dtype=np.uint32) -> np.ndarray:
        """Host-side read-back of a buffer region (for result checking)."""
        buf_base, buf = self._locate(base)
        start = (base - buf_base) >> 2
        region = buf[start : start + words]
        if len(region) != words:
            raise MemoryError_(f"read of {words} words exceeds buffer")
        if np.dtype(dtype).kind == "f":
            return region.view(np.uint32).view(np.float32).copy()
        return region.copy()


class SharedMemory:
    """Per-CTA scratchpad, addressed from zero, word granularity."""

    def __init__(self, nbytes: int):
        if nbytes % 4:
            raise ValueError(f"shared size must be word-aligned: {nbytes}")
        self._words = np.zeros(max(nbytes // 4, 1), dtype=np.uint32)
        self.nbytes = nbytes

    def load_warp(self, addresses: np.ndarray, mask: np.ndarray) -> np.ndarray:
        out = np.zeros(len(addresses), dtype=np.uint32)
        if not mask.any():
            return out
        offsets = addresses[mask].astype(np.int64)
        if (offsets % 4).any():
            raise MemoryError_("misaligned shared load")
        idx = offsets >> 2
        if idx.max() >= len(self._words) or idx.min() < 0:
            raise MemoryError_(
                f"shared load at byte {int(offsets.max())} exceeds "
                f"{self.nbytes}-byte CTA allocation"
            )
        out[mask] = self._words[idx]
        return out

    def store_warp(
        self, addresses: np.ndarray, values: np.ndarray, mask: np.ndarray
    ) -> None:
        if not mask.any():
            return
        offsets = addresses[mask].astype(np.int64)
        if (offsets % 4).any():
            raise MemoryError_("misaligned shared store")
        idx = offsets >> 2
        if idx.max() >= len(self._words) or idx.min() < 0:
            raise MemoryError_(
                f"shared store at byte {int(offsets.max())} exceeds "
                f"{self.nbytes}-byte CTA allocation"
            )
        self._words[idx] = values[mask].astype(np.uint32)

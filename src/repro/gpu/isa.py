"""The simulator's PTX-like instruction set.

Benchmark kernels are written (via :mod:`repro.gpu.builder`) in a small
RISC ISA that mirrors the subset of PTX/SASS the paper's workloads
exercise: 32-bit integer and IEEE-754 single arithmetic, predicate-setting
compares, select, special-register and kernel-parameter reads, global and
shared memory access, and SIMT control flow (predicated branches with
explicit reconvergence points, thread exit, CTA barriers).

Registers are 32-bit and warp-wide: one architectural register names 32
thread registers, exactly the unit the paper compresses.  Predicate
registers live in a separate (uncompressed) 1-bit file, as on real GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Op(Enum):
    """Opcodes, grouped by execution class."""

    # integer ALU
    IADD = "iadd"
    ISUB = "isub"
    IMUL = "imul"
    IMAD = "imad"  # dst = a * b + c
    IMIN = "imin"
    IMAX = "imax"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"  # logical
    SAR = "sar"  # arithmetic
    # float ALU
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FFMA = "ffma"  # dst = a * b + c
    FMIN = "fmin"
    FMAX = "fmax"
    FABS = "fabs"
    FNEG = "fneg"
    I2F = "i2f"
    F2I = "f2i"
    # special function unit
    FRCP = "frcp"
    FSQRT = "fsqrt"
    FEXP = "fexp"
    FLOG = "flog"
    FDIV = "fdiv"
    FSIN = "fsin"
    FCOS = "fcos"
    # data movement
    MOV = "mov"
    SEL = "sel"  # dst = pred ? a : b
    S2R = "s2r"  # special register read
    PARAM = "param"  # kernel parameter read
    # predicates
    ISETP = "isetp"
    FSETP = "fsetp"
    # memory
    LDG = "ldg"
    STG = "stg"
    LDS = "lds"
    STS = "sts"
    # control
    BRA = "bra"
    BAR = "bar"
    EXIT = "exit"
    NOP = "nop"


class OpClass(Enum):
    """Latency/resource class of an opcode."""

    ALU = "alu"
    SFU = "sfu"
    GLOBAL = "global"
    SHARED = "shared"
    CONTROL = "control"


_SFU_OPS = {Op.FRCP, Op.FSQRT, Op.FEXP, Op.FLOG, Op.FDIV, Op.FSIN, Op.FCOS}
_GLOBAL_OPS = {Op.LDG, Op.STG}
_SHARED_OPS = {Op.LDS, Op.STS}
_CONTROL_OPS = {Op.BRA, Op.BAR, Op.EXIT, Op.NOP}


def _classify(op: Op) -> OpClass:
    if op in _SFU_OPS:
        return OpClass.SFU
    if op in _GLOBAL_OPS:
        return OpClass.GLOBAL
    if op in _SHARED_OPS:
        return OpClass.SHARED
    if op in _CONTROL_OPS:
        return OpClass.CONTROL
    return OpClass.ALU


_OP_CLASS = {op: _classify(op) for op in Op}


def op_class(op: Op) -> OpClass:
    """Execution class used by the timing model to pick a latency."""
    return _OP_CLASS[op]


class Cmp(Enum):
    """Comparison operators for ISETP/FSETP."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"


class SReg(Enum):
    """Special registers readable with S2R."""

    TID_X = "tid.x"
    TID_Y = "tid.y"
    CTAID_X = "ctaid.x"
    CTAID_Y = "ctaid.y"
    NTID_X = "ntid.x"
    NTID_Y = "ntid.y"
    NCTAID_X = "nctaid.x"
    NCTAID_Y = "nctaid.y"
    LANEID = "laneid"


@dataclass(frozen=True)
class Reg:
    """A 32-bit warp-wide architectural register operand."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"register index must be non-negative: {self.index}")

    def __str__(self) -> str:
        return f"r{self.index}"


@dataclass(frozen=True)
class Imm:
    """A 32-bit immediate operand (int, or float stored as its bits)."""

    value: int

    def __post_init__(self) -> None:
        if not -(1 << 31) <= self.value < (1 << 32):
            raise ValueError(f"immediate out of 32-bit range: {self.value}")

    @property
    def u32(self) -> int:
        return self.value & 0xFFFFFFFF

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class Pred:
    """A predicate register operand, optionally negated."""

    index: int
    negated: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.index < 8:
            raise ValueError(f"predicate index must be in [0, 8): {self.index}")

    def __invert__(self) -> "Pred":
        return Pred(self.index, not self.negated)

    def __str__(self) -> str:
        return f"{'!' if self.negated else ''}p{self.index}"


Operand = Reg | Imm


@dataclass(frozen=True)
class Instruction:
    """One warp instruction.

    ``guard`` predicates the whole instruction (lanes with a false guard
    are masked off — a *partial write* in the paper's terms).  ``target``
    and ``reconv`` are instruction indices, filled in by the builder's
    label resolution, and only meaningful for BRA.
    """

    op: Op
    dst: Reg | None = None
    srcs: tuple[Operand, ...] = ()
    pred_dst: Pred | None = None
    pred_src: Pred | None = None
    guard: Pred | None = None
    cmp: Cmp | None = None
    sreg: SReg | None = None
    param_index: int | None = None
    offset: int = 0  # byte offset for memory ops
    target: int | None = None
    reconv: int | None = None
    label_target: str | None = field(default=None, compare=False)
    label_reconv: str | None = field(default=None, compare=False)

    def source_registers(self) -> tuple[int, ...]:
        """Indices of banked registers this instruction reads.

        Computed once per instruction: the scheduler asks on every issue
        attempt and instructions are immutable.
        """
        cached = self.__dict__.get("_source_registers")
        if cached is None:
            cached = tuple(s.index for s in self.srcs if isinstance(s, Reg))
            object.__setattr__(self, "_source_registers", cached)
        return cached

    def issue_operands(self) -> tuple:
        """``(srcs, read_preds, dst_index, pred_dst_index)`` — memoized.

        Everything the per-cycle scoreboard check needs, flattened to
        plain ints so the issue stage does no per-attempt tuple building.
        """
        cached = self.__dict__.get("_issue_operands")
        if cached is None:
            read_preds = tuple(
                p.index for p in (self.guard, self.pred_src) if p is not None
            )
            cached = (
                self.source_registers(),
                read_preds,
                self.dst.index if self.dst else None,
                self.pred_dst.index if self.pred_dst else None,
            )
            object.__setattr__(self, "_issue_operands", cached)
        return cached

    def writes_register(self) -> bool:
        return self.dst is not None

    def __str__(self) -> str:
        parts = [self.op.value]
        if self.cmp:
            parts.append(self.cmp.value)
        operands = []
        if self.pred_dst:
            operands.append(str(self.pred_dst))
        if self.dst:
            operands.append(str(self.dst))
        operands.extend(str(s) for s in self.srcs)
        if self.pred_src:
            operands.append(str(self.pred_src))
        if self.sreg:
            operands.append(self.sreg.value)
        if self.param_index is not None:
            operands.append(f"param[{self.param_index}]")
        if self.label_target:
            operands.append(f"-> {self.label_target}")
        text = " ".join(parts) + " " + ", ".join(operands)
        if self.guard:
            text = f"@{self.guard} {text}"
        return text.strip()

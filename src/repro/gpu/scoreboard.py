"""Per-warp register scoreboard.

Tracks registers (and predicate registers) with pending writes so the
schedulers never issue an instruction whose sources are not yet written
(RAW) or whose destination is still being written (WAW).  WAR hazards need
no protection: operands are captured into the collector at issue.
"""

from __future__ import annotations

from collections import defaultdict


class Scoreboard:
    """Pending-write sets keyed by warp slot."""

    def __init__(self) -> None:
        self._regs: dict[int, set[int]] = defaultdict(set)
        self._preds: dict[int, set[int]] = defaultdict(set)

    def reserve(
        self, warp_slot: int, reg: int | None, pred: int | None = None
    ) -> None:
        """Mark a destination register/predicate as pending."""
        if reg is not None:
            self._regs[warp_slot].add(reg)
        if pred is not None:
            self._preds[warp_slot].add(pred)

    def release(
        self, warp_slot: int, reg: int | None, pred: int | None = None
    ) -> None:
        """Clear a pending destination after writeback."""
        if reg is not None:
            self._regs[warp_slot].discard(reg)
        if pred is not None:
            self._preds[warp_slot].discard(pred)

    def blocked(
        self,
        warp_slot: int,
        read_regs: tuple[int, ...],
        write_reg: int | None,
        read_preds: tuple[int, ...] = (),
        write_pred: int | None = None,
    ) -> bool:
        """Whether an instruction with these operands must wait."""
        regs = self._regs[warp_slot]
        if write_reg is not None and write_reg in regs:
            return True
        if any(r in regs for r in read_regs):
            return True
        preds = self._preds[warp_slot]
        if write_pred is not None and write_pred in preds:
            return True
        return any(p in preds for p in read_preds)

    def clear_warp(self, warp_slot: int) -> None:
        """Drop all state for a retired warp."""
        self._regs.pop(warp_slot, None)
        self._preds.pop(warp_slot, None)

    def pending(self, warp_slot: int) -> int:
        """Number of outstanding writes for a warp (drain check)."""
        return len(self._regs[warp_slot]) + len(self._preds[warp_slot])

"""Per-warp register scoreboard.

Tracks registers (and predicate registers) with pending writes so the
schedulers never issue an instruction whose sources are not yet written
(RAW) or whose destination is still being written (WAW).  WAR hazards need
no protection: operands are captured into the collector at issue.
"""

from __future__ import annotations

from collections import defaultdict


class ScoreboardError(RuntimeError):
    """A reserve/release protocol violation caught in strict mode."""


class Scoreboard:
    """Pending-write sets keyed by warp slot.

    With ``strict=True`` (enabled by ``GPUConfig.verify_level >= 1``) the
    scoreboard enforces the exactly-once protocol: reserving an already
    pending destination or releasing one that is not pending raises
    :class:`ScoreboardError` instead of silently coalescing.  The pipeline
    never legitimately does either — in-order per-warp issue blocks on WAW
    before a duplicate reserve could happen, and each in-flight op releases
    its destinations exactly once (predicate at execute, register at
    commit).
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self._regs: dict[int, set[int]] = defaultdict(set)
        self._preds: dict[int, set[int]] = defaultdict(set)
        # Per-warp release generation.  While a warp is issue-blocked it
        # cannot reserve anything new, so its blocked() verdict can only
        # flip on a release — the issue stage memoizes "blocked on
        # scoreboard" keyed on this counter.
        self._epoch: dict[int, int] = defaultdict(int)
        #: Lifetime release count across all warps.  Lets the issue stage
        #: prove "no epoch changed anywhere" with one comparison.
        self.releases = 0

    def reserve(
        self, warp_slot: int, reg: int | None, pred: int | None = None
    ) -> None:
        """Mark a destination register/predicate as pending."""
        if reg is not None:
            if self.strict and reg in self._regs[warp_slot]:
                raise ScoreboardError(
                    f"warp {warp_slot}: double reserve of register r{reg}"
                )
            self._regs[warp_slot].add(reg)
        if pred is not None:
            if self.strict and pred in self._preds[warp_slot]:
                raise ScoreboardError(
                    f"warp {warp_slot}: double reserve of predicate p{pred}"
                )
            self._preds[warp_slot].add(pred)

    def release(
        self, warp_slot: int, reg: int | None, pred: int | None = None
    ) -> None:
        """Clear a pending destination after writeback."""
        if reg is not None:
            if self.strict and reg not in self._regs[warp_slot]:
                raise ScoreboardError(
                    f"warp {warp_slot}: release of register r{reg} "
                    "which is not pending"
                )
            self._regs[warp_slot].discard(reg)
        if pred is not None:
            if self.strict and pred not in self._preds[warp_slot]:
                raise ScoreboardError(
                    f"warp {warp_slot}: release of predicate p{pred} "
                    "which is not pending"
                )
            self._preds[warp_slot].discard(pred)
        self._epoch[warp_slot] += 1
        self.releases += 1

    def blocked(
        self,
        warp_slot: int,
        read_regs: tuple[int, ...],
        write_reg: int | None,
        read_preds: tuple[int, ...] = (),
        write_pred: int | None = None,
    ) -> bool:
        """Whether an instruction with these operands must wait."""
        regs = self._regs[warp_slot]
        if regs:
            if write_reg is not None and write_reg in regs:
                return True
            for r in read_regs:
                if r in regs:
                    return True
        preds = self._preds[warp_slot]
        if preds:
            if write_pred is not None and write_pred in preds:
                return True
            for p in read_preds:
                if p in preds:
                    return True
        return False

    def clear_warp(self, warp_slot: int) -> None:
        """Drop all state for a retired warp."""
        self._regs.pop(warp_slot, None)
        self._preds.pop(warp_slot, None)
        self._epoch.pop(warp_slot, None)

    def epoch(self, warp_slot: int) -> int:
        """Release generation for a warp (validity token for memoized
        issue-blocked verdicts)."""
        return self._epoch[warp_slot]

    def pending(self, warp_slot: int) -> int:
        """Number of outstanding writes for a warp (drain check)."""
        return len(self._regs[warp_slot]) + len(self._preds[warp_slot])

    def pending_regs(self, warp_slot: int) -> set[int]:
        """Registers with outstanding writes for a warp (live view).

        Predicates are excluded on purpose: predicate *values* are
        written at issue (only the scoreboard release is deferred), so a
        pending predicate is already architecturally current — the
        batched-gather eligibility check only cares about registers.
        """
        return self._regs[warp_slot]

    def is_pending(self, warp_slot: int, reg: int) -> bool:
        """Whether register ``reg`` has an outstanding write."""
        return reg in self._regs[warp_slot]

    def total_pending(self) -> int:
        """Outstanding writes across all warps (end-of-run drain check)."""
        return sum(len(s) for s in self._regs.values()) + sum(
            len(s) for s in self._preds.values()
        )

    def attach_metrics(self, registry) -> None:
        """Register the pending-write depth into a metric registry."""
        registry.probe("scoreboard.pending_writes", self.total_pending)

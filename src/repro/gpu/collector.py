"""Operand collectors.

An operand collector buffers one in-flight instruction while its source
operands are gathered from the register banks (Section 2.1).  Each source
operand is a :class:`OperandRead`: the set of banks still to be read plus,
for compressed registers, a decompression pass through a decompressor
unit (Section 5's added pipeline stage).

The pool is a fixed set of collector slots; instruction issue stalls when
none is free — one of the structural hazards the paper's dummy-MOV traffic
analysis (Section 5.2) models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.codec import CompressionMode
from repro.core.units import UnitPool


@dataclass(slots=True)
class OperandRead:
    """Progress of one source operand's register-file read."""

    warp_slot: int
    reg: int
    mode: CompressionMode
    pending_banks: set[int]
    banks_total: int
    #: cycle the decompressed value is available; None = not yet started
    ready_at: int | None = None
    decompression_needed: bool = False

    def banks_done(self) -> bool:
        return not self.pending_banks

    def ready(self, cycle: int) -> bool:
        return self.ready_at is not None and cycle >= self.ready_at

    def advance(self, cycle: int, decompressors: UnitPool | None) -> bool:
        """Try to finish this operand at ``cycle``; True when ready.

        Once all banks are read, an uncompressed operand is immediately
        ready; a compressed one must win a decompressor issue slot and
        wait out the decompression latency.
        """
        if self.ready_at is None:
            if not self.banks_done():
                return False
            if not self.decompression_needed:
                self.ready_at = cycle
            else:
                if decompressors is None:
                    raise RuntimeError(
                        "compressed operand but no decompressors configured"
                    )
                started = decompressors.try_start(cycle)
                if started is None:
                    return False  # structural hazard; retry next cycle
                self.ready_at = started
        return self.ready(cycle)


@dataclass
class CollectorPool:
    """Counting allocator for the SM's operand collector slots."""

    capacity: int
    in_use: int = field(default=0, init=False)
    #: Lifetime release count.  A collector-blocked warp stays blocked
    #: until some collector frees, so the issue stage uses this as the
    #: validity token for memoized "stalled on collector" verdicts.
    releases: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"collector capacity must be positive: {self.capacity}")

    @property
    def available(self) -> bool:
        return self.in_use < self.capacity

    def allocate(self) -> None:
        if not self.available:
            raise RuntimeError("no free operand collector")
        self.in_use += 1

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError("releasing an unallocated collector")
        self.in_use -= 1
        self.releases += 1

    def attach_metrics(self, registry) -> None:
        """Register collector occupancy into a metric registry."""
        registry.probe("collector.in_use", lambda: self.in_use)

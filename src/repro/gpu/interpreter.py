"""Functional warp-lockstep interpreter.

Executes one warp instruction at a time: reads source operands, computes
all 32 lanes under the current SIMT active mask, resolves branches against
the reconvergence stack, and *returns* register writes instead of applying
them.  This split lets the timing model (:mod:`repro.gpu.sm`) defer the
architectural write to the writeback stage — where compression happens —
while the functional runner applies results immediately.

Deferring writes is safe because the SM scoreboard blocks RAW/WAW hazards:
no instruction can issue and read (or rewrite) a register with a pending
write, so issue-time operand values are always final.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.isa import Cmp, Imm, Instruction, Op, OpClass, Reg, SReg, op_class
from repro.gpu.memory import GlobalMemory, SharedMemory
from repro.gpu.program import Kernel
from repro.gpu.simt import SimtStack


@dataclass
class WarpContext:
    """All architectural state of one resident warp."""

    warp_id: int
    kernel: Kernel
    stack: SimtStack
    registers: np.ndarray  #: (num_registers, warp_size) uint32
    preds: np.ndarray  #: (8, warp_size) bool
    sregs: dict[SReg, np.ndarray]  #: per-lane special-register values
    params: np.ndarray  #: (num_params,) uint32
    gmem: GlobalMemory
    shared: SharedMemory
    cta_id: int = 0
    at_barrier: bool = False

    @property
    def warp_size(self) -> int:
        return self.registers.shape[1]

    @property
    def done(self) -> bool:
        self.stack.settle()
        return self.stack.done


@dataclass(slots=True)
class ExecResult:
    """Outcome of executing one warp instruction."""

    instr: Instruction
    pc: int
    exec_mask: int  #: lanes that actually executed (guard applied)
    base_mask: int  #: SIMT active mask before the guard
    divergent: bool  #: fewer than warp_size lanes executed (guard included)
    op_class: OpClass
    #: SIMT-stack divergence only (paper Figure 3's notion): the active
    #: mask is partial.  A uniformly-executed guarded branch is *not*
    #: divergent by this measure even though its taken subset is.
    base_divergent: bool = False
    dst: int | None = None
    values: np.ndarray | None = None  #: merged 32-lane dst values
    src_regs: tuple[int, ...] = ()
    is_barrier: bool = False
    is_exit: bool = False


_LANES = np.arange(64, dtype=np.uint64)

#: Cached boolean arrays for the two masks that dominate divergence-free
#: kernels: all lanes active and no lanes active.  The arrays are frozen
#: (``writeable=False``) because callers only ever index with them.
_COMMON_MASKS: dict[tuple[int, int], np.ndarray] = {}

#: Frozen lane-broadcast arrays keyed ``(value, warp_size)``.  Immediate
#: operands and kernel params repeat endlessly across a launch; handlers
#: never mutate their operand arrays, so one shared read-only array per
#: distinct value is safe and saves an allocation per execute.
_BROADCAST_CACHE: dict[tuple[int, int], np.ndarray] = {}


def _mask_array(mask: int, warp_size: int) -> np.ndarray:
    """Expand an int bitmask into a per-lane boolean array."""
    full = (1 << warp_size) - 1
    if mask == full or mask == 0:
        key = (mask, warp_size)
        cached = _COMMON_MASKS.get(key)
        if cached is None:
            cached = np.full(warp_size, mask != 0, dtype=bool)
            cached.setflags(write=False)
            _COMMON_MASKS[key] = cached
        return cached
    return ((np.uint64(mask) >> _LANES[:warp_size]) & np.uint64(1)).astype(bool)


def _mask_int(arr: np.ndarray) -> int:
    """Pack a per-lane boolean array into an int bitmask."""
    count = int(arr.sum())
    if count == len(arr):
        return (1 << count) - 1
    if count == 0:
        return 0
    lanes = _LANES[: len(arr)]
    return int((arr.astype(np.uint64) << lanes).sum())


class Interpreter:
    """Stateless executor over :class:`WarpContext` objects."""

    def __init__(self, warp_size: int = 32):
        self.warp_size = warp_size
        self._full = (1 << warp_size) - 1
        # The all-lanes-active mask dominates execution; keep its array
        # form at hand instead of going through the _COMMON_MASKS dict.
        self._full_arr = _mask_array(self._full, warp_size)

    # ------------------------------------------------------------------
    # Fetch / peek
    # ------------------------------------------------------------------
    def peek(self, ctx: WarpContext) -> tuple[Instruction, int, int] | None:
        """Next instruction, its execution mask, and PC — without effects.

        Returns ``None`` when the warp has finished.  The SM uses this for
        scoreboard checks and dummy-MOV injection before committing to
        issue.
        """
        ctx.stack.settle()
        if ctx.stack.done:
            return None
        pc = ctx.stack.pc
        instr = ctx.kernel.instructions[pc]
        base_mask = ctx.stack.active_mask
        exec_mask = self._guard_mask(ctx, instr, base_mask)
        return instr, exec_mask, pc

    def _guard_mask(
        self, ctx: WarpContext, instr: Instruction, base_mask: int
    ) -> int:
        if instr.guard is None:
            return base_mask
        bits = ctx.preds[instr.guard.index]
        if instr.guard.negated:
            bits = ~bits
        return base_mask & _mask_int(bits)

    # ------------------------------------------------------------------
    # Execute
    # ------------------------------------------------------------------
    def execute(
        self,
        ctx: WarpContext,
        peeked: tuple[Instruction, int, int] | None = None,
    ) -> ExecResult | None:
        """Execute the next instruction of ``ctx``; ``None`` when done.

        Register writes are returned in the result, not applied; all other
        architectural effects (PC, SIMT stack, predicates, memory) are
        applied immediately.  ``peeked`` lets a caller that already called
        :meth:`peek` this cycle (and has not touched the warp since) pass
        the result through instead of paying for a second fetch.
        """
        if peeked is None:
            peeked = self.peek(ctx)
        else:
            ctx.stack.settle()
        if peeked is None:
            return None
        instr, exec_mask, pc = peeked
        base_mask = ctx.stack.active_mask
        # (op_class, source_registers) memoized per instruction object —
        # same idiom as Instruction.issue_operands.
        meta = instr.__dict__.get("_exec_meta")
        if meta is None:
            meta = (op_class(instr.op), instr.source_registers())
            object.__setattr__(instr, "_exec_meta", meta)
        full = self._full
        result = ExecResult(
            instr=instr,
            pc=pc,
            exec_mask=exec_mask,
            base_mask=base_mask,
            divergent=exec_mask != full,
            base_divergent=base_mask != full,
            op_class=meta[0],
            src_regs=meta[1],
        )

        if instr.op is Op.BRA:
            ctx.stack.branch(
                taken_mask=exec_mask, target=instr.target, reconv=instr.reconv
            )
            return result
        if instr.op is Op.EXIT:
            ctx.stack.advance()
            ctx.stack.exit_lanes(exec_mask)
            result.is_exit = True
            return result
        if instr.op is Op.BAR:
            ctx.stack.advance()
            result.is_barrier = True
            return result
        if instr.op is Op.NOP:
            ctx.stack.advance()
            return result

        if exec_mask == full:
            mask_arr = self._full_arr
        else:
            mask_arr = _mask_array(exec_mask, self.warp_size)
        if instr.op in (Op.ISETP, Op.FSETP):
            self._setp(ctx, instr, mask_arr)
            ctx.stack.advance()
            return result
        if instr.op in (Op.STG, Op.STS):
            self._store(ctx, instr, mask_arr)
            ctx.stack.advance()
            return result

        computed = self._compute(ctx, instr, mask_arr)
        dst = instr.dst.index
        if exec_mask == self._full:
            # Full-warp writeback: every handler returns a freshly
            # allocated array, so the computed vector *is* the merged
            # destination image — no copy-and-scatter needed.
            merged = computed
        else:
            # Masked writeback: inactive lanes keep their old values.
            merged = np.where(mask_arr, computed, ctx.registers[dst])
        result.dst = dst
        result.values = merged
        ctx.stack.advance()
        return result

    def apply(self, ctx: WarpContext, result: ExecResult) -> None:
        """Apply a deferred register write (functional mode/writeback)."""
        if result.dst is not None:
            ctx.registers[result.dst] = result.values

    # ------------------------------------------------------------------
    # Operand access
    # ------------------------------------------------------------------
    def _read(self, ctx: WarpContext, operand) -> np.ndarray:
        if isinstance(operand, Reg):
            return ctx.registers[operand.index]
        if isinstance(operand, Imm):
            return self._broadcast(ctx, operand.u32)
        raise TypeError(f"unreadable operand {operand!r}")

    def _broadcast(self, ctx: WarpContext, value: int) -> np.ndarray:
        # Immediates and kernel params recur constantly; a cached frozen
        # array per value beats an np.full allocation on every execute.
        # Frozen (writeable=False) so any handler bug that tried to write
        # through a broadcast raises instead of corrupting the cache.
        key = (value & 0xFFFFFFFF, self.warp_size)
        arr = _BROADCAST_CACHE.get(key)
        if arr is None:
            arr = np.full(self.warp_size, key[0], dtype=np.uint32)
            arr.setflags(write=False)
            _BROADCAST_CACHE[key] = arr
        return arr

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def _compute(
        self, ctx: WarpContext, instr: Instruction, mask_arr: np.ndarray
    ) -> np.ndarray:
        handler = _COMPUTE_DISPATCH.get(instr.op)
        if handler is None:
            raise NotImplementedError(f"no semantics for {instr.op}")
        return handler(self, ctx, instr, mask_arr)

    def _setp(
        self, ctx: WarpContext, instr: Instruction, mask_arr: np.ndarray
    ) -> None:
        a = self._read(ctx, instr.srcs[0])
        b = self._read(ctx, instr.srcs[1])
        if instr.op is Op.ISETP:
            a, b = a.view(np.int32), b.view(np.int32)
        else:
            a, b = a.view(np.float32), b.view(np.float32)
        outcome = _CMP_FNS[instr.cmp](a, b)
        pred = ctx.preds[instr.pred_dst.index]
        pred[mask_arr] = outcome[mask_arr]

    def _store(
        self, ctx: WarpContext, instr: Instruction, mask_arr: np.ndarray
    ) -> None:
        addrs = (
            self._read(ctx, instr.srcs[0]).astype(np.int64) + instr.offset
        ).astype(np.uint32)
        values = self._read(ctx, instr.srcs[1])
        space = ctx.gmem if instr.op is Op.STG else ctx.shared
        space.store_warp(addrs, values, mask_arr)


def _shift_amount(b: np.ndarray) -> np.ndarray:
    return (b & 31).astype(np.uint32)


_INT_BINOPS = {
    Op.IADD: lambda a, b: a + b,
    Op.ISUB: lambda a, b: a - b,
    Op.IMUL: lambda a, b: (a.astype(np.uint64) * b).astype(np.uint32),
    Op.IMIN: lambda a, b: np.minimum(a.view(np.int32), b.view(np.int32)).view(
        np.uint32
    ),
    Op.IMAX: lambda a, b: np.maximum(a.view(np.int32), b.view(np.int32)).view(
        np.uint32
    ),
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHL: lambda a, b: a << _shift_amount(b),
    Op.SHR: lambda a, b: a >> _shift_amount(b),
    Op.SAR: lambda a, b: (a.view(np.int32) >> _shift_amount(b).view(np.int32)).view(
        np.uint32
    ),
}

_FLOAT_BINOPS = {
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
    Op.FMIN: np.minimum,
    Op.FMAX: np.maximum,
    Op.FDIV: lambda a, b: a / b,
}

_FLOAT_UNOPS = {
    Op.FABS: np.abs,
    Op.FNEG: lambda a: -a,
    Op.FRCP: lambda a: 1.0 / a,
    Op.FSQRT: np.sqrt,
    Op.FEXP: np.exp,
    Op.FLOG: np.log,
    Op.FSIN: np.sin,
    Op.FCOS: np.cos,
}

_CMP_FNS = {
    Cmp.EQ: lambda a, b: a == b,
    Cmp.NE: lambda a, b: a != b,
    Cmp.LT: lambda a, b: a < b,
    Cmp.LE: lambda a, b: a <= b,
    Cmp.GT: lambda a, b: a > b,
    Cmp.GE: lambda a, b: a >= b,
}


# ----------------------------------------------------------------------
# Opcode dispatch table for :meth:`Interpreter._compute`.  Handlers take
# ``(interp, ctx, instr, mask_arr)``; the table replaces a long if-chain
# so every opcode resolves with one dict lookup on the hot path.
#
# Float handlers deliberately carry no ``np.errstate`` guard — entering
# an errstate costs about as much as the arithmetic itself on 32-lane
# arrays.  The simulation drivers (:meth:`GPU.run`, the functional
# runner) hold one ``errstate(all="ignore")`` around their whole run
# loop instead; a handler invoked outside such a scope computes the
# same values but may emit RuntimeWarnings on inf/nan edge cases.
# ----------------------------------------------------------------------
def _h_mov(interp, ctx, instr, mask_arr):
    return interp._read(ctx, instr.srcs[0]).copy()


def _h_s2r(interp, ctx, instr, mask_arr):
    return ctx.sregs[instr.sreg].copy()


def _h_param(interp, ctx, instr, mask_arr):
    return interp._broadcast(ctx, int(ctx.params[instr.param_index]))


def _h_sel(interp, ctx, instr, mask_arr):
    pbits = ctx.preds[instr.pred_src.index]
    if instr.pred_src.negated:
        pbits = ~pbits
    a = interp._read(ctx, instr.srcs[0])
    b = interp._read(ctx, instr.srcs[1])
    return np.where(pbits, a, b).astype(np.uint32)


def _h_load(interp, ctx, instr, mask_arr):
    addrs = (
        interp._read(ctx, instr.srcs[0]).astype(np.int64) + instr.offset
    ).astype(np.uint32)
    space = ctx.gmem if instr.op is Op.LDG else ctx.shared
    return space.load_warp(addrs, mask_arr)


def _h_imad(interp, ctx, instr, mask_arr):
    a = interp._read(ctx, instr.srcs[0])
    b = interp._read(ctx, instr.srcs[1])
    c = interp._read(ctx, instr.srcs[2])
    return (a.astype(np.uint64) * b + c).astype(np.uint32)


def _h_ffma(interp, ctx, instr, mask_arr):
    a = interp._read(ctx, instr.srcs[0]).view(np.float32)
    b = interp._read(ctx, instr.srcs[1]).view(np.float32)
    c = interp._read(ctx, instr.srcs[2]).view(np.float32)
    return (a * b + c).astype(np.float32).view(np.uint32)


def _h_not(interp, ctx, instr, mask_arr):
    return ~interp._read(ctx, instr.srcs[0])


def _h_i2f(interp, ctx, instr, mask_arr):
    return (
        interp._read(ctx, instr.srcs[0])
        .view(np.int32)
        .astype(np.float32)
        .view(np.uint32)
    )


def _h_f2i(interp, ctx, instr, mask_arr):
    vals = np.trunc(interp._read(ctx, instr.srcs[0]).view(np.float32))
    vals = np.nan_to_num(vals, nan=0.0, posinf=2**31 - 1, neginf=-(2**31))
    return np.clip(vals, -(2**31), 2**31 - 1).astype(np.int32).view(np.uint32)


def _int_binop_handler(fn):
    def handler(interp, ctx, instr, mask_arr):
        a = interp._read(ctx, instr.srcs[0])
        b = interp._read(ctx, instr.srcs[1])
        return fn(a, b)

    return handler


def _float_binop_handler(fn):
    def handler(interp, ctx, instr, mask_arr):
        a = interp._read(ctx, instr.srcs[0]).view(np.float32)
        b = interp._read(ctx, instr.srcs[1]).view(np.float32)
        return fn(a, b).astype(np.float32).view(np.uint32)

    return handler


def _float_unop_handler(fn):
    def handler(interp, ctx, instr, mask_arr):
        a = interp._read(ctx, instr.srcs[0]).view(np.float32)
        return fn(a).astype(np.float32).view(np.uint32)

    return handler


_COMPUTE_DISPATCH = {
    Op.MOV: _h_mov,
    Op.S2R: _h_s2r,
    Op.PARAM: _h_param,
    Op.SEL: _h_sel,
    Op.LDG: _h_load,
    Op.LDS: _h_load,
    Op.IMAD: _h_imad,
    Op.FFMA: _h_ffma,
    Op.NOT: _h_not,
    Op.I2F: _h_i2f,
    Op.F2I: _h_f2i,
}
_COMPUTE_DISPATCH.update(
    {op: _int_binop_handler(fn) for op, fn in _INT_BINOPS.items()}
)
_COMPUTE_DISPATCH.update(
    {op: _float_binop_handler(fn) for op, fn in _FLOAT_BINOPS.items()}
)
_COMPUTE_DISPATCH.update(
    {op: _float_unop_handler(fn) for op, fn in _FLOAT_UNOPS.items()}
)


# ----------------------------------------------------------------------
# Public array-kernel entry points.  These expose the per-op vector
# semantics on bare uint32 arrays — no WarpContext needed — so the
# parity suite can drive each kernel against the scalar reference in
# :mod:`repro.gpu.scalar`, and so other layers can batch arithmetic
# over whole warp vectors.
# ----------------------------------------------------------------------
def compute_vector(op: Op, *operands: np.ndarray) -> np.ndarray:
    """Apply one pure-arithmetic opcode to whole-warp lane vectors.

    ``operands`` are uint32 bit-pattern arrays (float ops reinterpret
    them as float32, exactly as :meth:`Interpreter._compute` does).
    Returns a freshly allocated uint32 array.  Opcodes that need a
    :class:`WarpContext` (moves, loads, predicates, control flow) are
    rejected — their semantics live in the dispatch handlers above.
    """
    srcs = tuple(np.asarray(o, dtype=np.uint32) for o in operands)
    fn = _INT_BINOPS.get(op)
    if fn is not None:
        return np.asarray(fn(*srcs), dtype=np.uint32)
    fn = _FLOAT_BINOPS.get(op)
    if fn is not None:
        with np.errstate(all="ignore"):
            return (
                fn(*(s.view(np.float32) for s in srcs))
                .astype(np.float32)
                .view(np.uint32)
            )
    fn = _FLOAT_UNOPS.get(op)
    if fn is not None:
        with np.errstate(all="ignore"):
            return fn(srcs[0].view(np.float32)).astype(np.float32).view(np.uint32)
    if op is Op.IMAD:
        a, b, c = srcs
        return (a.astype(np.uint64) * b + c).astype(np.uint32)
    if op is Op.FFMA:
        a, b, c = (s.view(np.float32) for s in srcs)
        with np.errstate(all="ignore"):
            return (a * b + c).astype(np.float32).view(np.uint32)
    if op is Op.NOT:
        return ~srcs[0]
    if op is Op.I2F:
        return srcs[0].view(np.int32).astype(np.float32).view(np.uint32)
    if op is Op.F2I:
        with np.errstate(all="ignore"):
            vals = np.trunc(srcs[0].view(np.float32))
            vals = np.nan_to_num(
                vals, nan=0.0, posinf=2**31 - 1, neginf=-(2**31)
            )
        return (
            np.clip(vals, -(2**31), 2**31 - 1).astype(np.int32).view(np.uint32)
        )
    raise ValueError(f"{op} is not a pure-arithmetic opcode")


def compare_vector(
    cmp: Cmp, a: np.ndarray, b: np.ndarray, *, as_float: bool = False
) -> np.ndarray:
    """Apply one ISETP/FSETP comparator to whole-warp lane vectors."""
    a = np.asarray(a, dtype=np.uint32)
    b = np.asarray(b, dtype=np.uint32)
    if as_float:
        a, b = a.view(np.float32), b.view(np.float32)
    else:
        a, b = a.view(np.int32), b.view(np.int32)
    with np.errstate(all="ignore"):
        return np.asarray(_CMP_FNS[cmp](a, b), dtype=bool)


def compute_vector_batch(op: Op, *operands: np.ndarray) -> np.ndarray:
    """Apply one pure-arithmetic opcode to a stacked warp group.

    ``operands`` are ``(n_warps, warp_size)`` uint32 bit-pattern arrays —
    one row per warp in a same-opcode group.  Every opcode's semantics
    are elementwise across lanes, so a single numpy dispatch over the
    stacked rows computes all warps at once and is bit-identical to
    ``n_warps`` separate :func:`compute_vector` calls (the parity suite
    in ``tests/test_batch_parity.py`` pins this row-for-row).
    """
    srcs = tuple(np.asarray(o, dtype=np.uint32) for o in operands)
    for s in srcs:
        if s.ndim != 2:
            raise ValueError(
                f"batched operands must be stacked (n_warps, warp_size) "
                f"arrays, got shape {s.shape}"
            )
    return compute_vector(op, *srcs)


def compare_vector_batch(
    cmp: Cmp, a: np.ndarray, b: np.ndarray, *, as_float: bool = False
) -> np.ndarray:
    """Apply one comparator to a stacked ``(n_warps, warp_size)`` group."""
    a = np.asarray(a, dtype=np.uint32)
    b = np.asarray(b, dtype=np.uint32)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(
            f"batched operands must be stacked (n_warps, warp_size) "
            f"arrays, got shapes {a.shape} and {b.shape}"
        )
    return compare_vector(cmp, a, b, as_float=as_float)


def make_warp_context(
    kernel: Kernel,
    warp_id: int,
    cta_id: int,
    cta_dim: tuple[int, int],
    grid_dim: tuple[int, int],
    warp_in_cta: int,
    params: np.ndarray,
    gmem: GlobalMemory,
    shared: SharedMemory,
    warp_size: int = 32,
) -> WarpContext:
    """Create the architectural state for one warp of a CTA.

    ``cta_dim``/``grid_dim`` are (x, y) shapes; threads are linearised
    x-major within the CTA, 32 consecutive threads per warp.  Lanes beyond
    the CTA's thread count start exited.
    """
    ctas_x, _ = grid_dim
    cta_threads = cta_dim[0] * cta_dim[1]
    lane = np.arange(warp_size)
    linear_tid = warp_in_cta * warp_size + lane
    valid = linear_tid < cta_threads
    tid_x = (linear_tid % cta_dim[0]).astype(np.uint32)
    tid_y = (linear_tid // cta_dim[0]).astype(np.uint32)
    sregs = {
        SReg.TID_X: tid_x,
        SReg.TID_Y: tid_y,
        SReg.CTAID_X: np.full(warp_size, cta_id % ctas_x, dtype=np.uint32),
        SReg.CTAID_Y: np.full(warp_size, cta_id // ctas_x, dtype=np.uint32),
        SReg.NTID_X: np.full(warp_size, cta_dim[0], dtype=np.uint32),
        SReg.NTID_Y: np.full(warp_size, cta_dim[1], dtype=np.uint32),
        SReg.NCTAID_X: np.full(warp_size, grid_dim[0], dtype=np.uint32),
        SReg.NCTAID_Y: np.full(warp_size, grid_dim[1], dtype=np.uint32),
        SReg.LANEID: lane.astype(np.uint32),
    }
    initial_mask = _mask_int(valid)
    if initial_mask == 0:
        raise ValueError("warp has no valid threads")
    return WarpContext(
        warp_id=warp_id,
        kernel=kernel,
        stack=SimtStack(warp_size, start_pc=0, mask=initial_mask),
        registers=np.zeros((kernel.num_registers, warp_size), dtype=np.uint32),
        preds=np.zeros((8, warp_size), dtype=bool),
        sregs=sregs,
        params=np.asarray(params, dtype=np.uint32),
        gmem=gmem,
        shared=shared,
        cta_id=cta_id,
    )
